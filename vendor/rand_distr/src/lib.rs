//! Offline stand-in for `rand_distr`: the three continuous distributions the
//! workload generators use (exponential, log-normal, Pareto), implemented by
//! inverse-transform / Box–Muller sampling over the vendored [`rand`] core.

use rand::RngCore;

/// Parameter validation error for any of the distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistError(&'static str);

impl core::fmt::Display for DistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for DistError {}

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform in the open interval (0, 1); never returns 0 so logs are finite.
#[inline]
fn open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// A standard normal draw via Box–Muller.
#[inline]
fn std_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = open01(rng);
    let u2 = open01(rng);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// The exponential distribution `Exp(lambda)`.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// A new exponential distribution with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Exp, DistError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(DistError("Exp rate must be finite and positive"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -open01(rng).ln() / self.lambda
    }
}

/// The log-normal distribution `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// A new log-normal with the given parameters of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, DistError> {
        if mu.is_finite() && sigma.is_finite() && sigma >= 0.0 {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(DistError("LogNormal parameters must be finite, sigma >= 0"))
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * std_normal(rng)).exp()
    }
}

/// The Pareto distribution with scale `x_m` and shape `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    scale: f64,
    inv_neg_alpha: f64,
}

impl Pareto {
    /// A new Pareto distribution; both parameters must be positive.
    pub fn new(scale: f64, alpha: f64) -> Result<Pareto, DistError> {
        if scale > 0.0 && alpha > 0.0 && scale.is_finite() && alpha.is_finite() {
            Ok(Pareto {
                scale,
                inv_neg_alpha: -1.0 / alpha,
            })
        } else {
            Err(DistError("Pareto scale and shape must be positive"))
        }
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * open01(rng).powf(self.inv_neg_alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_matches_rate() {
        let mut r = StdRng::seed_from_u64(1);
        let d = Exp::new(4.0).unwrap();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut r = StdRng::seed_from_u64(2);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        assert!((median - 1.0f64.exp()).abs() / 1.0f64.exp() < 0.05, "median {median}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = StdRng::seed_from_u64(3);
        let d = Pareto::new(2.0, 1.5).unwrap();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 2.0);
        }
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(Exp::new(0.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(Pareto::new(-1.0, 1.0).is_err());
    }
}
