//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no network access, so the
//! real `rand` cannot be fetched. This vendored crate implements the small
//! API surface the workspace uses — `rngs::StdRng`, [`Rng`] and
//! [`SeedableRng`] — on top of a deterministic xoshiro256++ core seeded via
//! SplitMix64. Streams are **not** bit-compatible with upstream `rand`, but
//! they are deterministic, well distributed and fully reproducible, which is
//! what the simulation kernel requires.

/// Low-level entropy source: a generator of raw 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from a uniform "standard" distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on an empty range");
                let span = (self.end - self.start) as u64;
                // Lemire multiply-shift; bias is negligible for span << 2^64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange for core::ops::Range<i64> {
    type Output = i64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "gen_range on an empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start.wrapping_add(hi as i64)
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on an empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard uniform distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(5usize..12);
            assert!((5..12).contains(&x));
            let y = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&y));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
