//! Offline stand-in for `criterion`: a self-calibrating micro-benchmark
//! harness behind criterion's `bench_function`/`iter`/`criterion_group!`
//! surface. Each benchmark is timed over `sample_size` samples after a short
//! warm-up, and median/mean ns-per-iteration are printed to stdout.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median ns/iter of the last `iter` call, for programmatic readers.
    pub last_median_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly: calibrates an iteration count targeting ~5 ms per
    /// sample, then records `self.samples` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: grow the batch until one batch takes >=1 ms,
        // then scale to the 5 ms target.
        let mut batch: u64 = 1;
        let per_iter_ns = loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 30 {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch *= 4;
        };
        let target_ns = 5_000_000.0;
        let iters = ((target_ns / per_iter_ns.max(0.01)) as u64).clamp(1, 1 << 32);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.last_median_ns = median;
        println!(
            "    time: median {} / mean {}  ({iters} iters x {} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            self.samples
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Benchmark registry/configuration, mirroring criterion's builder API.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        println!("benchmarking {name}");
        let mut b = Bencher {
            samples: self.sample_size.max(1),
            last_median_ns: 0.0,
        };
        f(&mut b);
        self
    }
}

/// Declares a benchmark group function, in either criterion form:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group!(name = n; config = expr; targets = t, ...)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_median() {
        let mut c = Criterion::default().sample_size(5);
        let mut median = 0.0;
        c.bench_function("noop_add", |b| {
            b.iter(|| black_box(1u64) + black_box(2u64));
            median = b.last_median_ns;
        });
        assert!(median > 0.0);
    }

    criterion_group!(simple_form, noop_target);

    fn noop_target(c: &mut Criterion) {
        c.bench_function("macro_form", |b| b.iter(|| black_box(3u32)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        simple_form();
    }
}
