//! Offline stand-in for `serde_json`: an owned [`Value`] tree, a compact and
//! a pretty writer, a recursive-descent parser, and the [`json!`] macro —
//! all routed through the vendored serde [`Content`](serde::Content) tree.

use serde::{Content, Deserialize, Serialize};

/// A JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A string-keyed JSON object preserving insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing any previous entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(v) => Value::U64(*v),
            Content::I64(v) => Value::I64(*v),
            Content::F64(v) => Value::F64(*v),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(m) => {
                let mut map = Map::new();
                for (k, v) in m {
                    map.insert(k.clone(), Value::from_content(v));
                }
                Value::Object(map)
            }
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::U64(v) => Content::U64(*v),
            Value::I64(v) => Content::I64(*v),
            Value::F64(v) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(|v| v.to_content()).collect()),
            Value::Object(m) => Content::Map(
                m.iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, serde::DeError> {
        Ok(Value::from_content(content))
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    Value::from_content(&value.to_content())
}

// ----- Writing -------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Infinity; degrade to null like lossy encoders do.
        out.push_str("null");
    }
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(n + 1));
                }
                write_content(out, item, indent.map(|n| n + 1));
            }
            if let Some(n) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(n));
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(n + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent.map(|n| n + 1));
            }
            if let Some(n) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(n));
            }
            out.push('}');
        }
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(0));
    Ok(out)
}

// ----- Parsing -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => {
                if self.eat_lit("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("bad literal"))
                }
            }
            b't' => {
                if self.eat_lit("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.err("bad literal"))
                }
            }
            b'f' => {
                if self.eat_lit("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("bad literal"))
                }
            }
            b'"' => self.parse_string().map(Content::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Continue a UTF-8 multibyte sequence untouched.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected a number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_content(&content).map_err(|e| Error(e.0))
}

/// Builds a [`Value`] from an object/array literal or any serializable
/// expression, mirroring the subset of `serde_json::json!` this repo uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $( map.insert($k.to_string(), $crate::json!($v)); )*
        $crate::Value::Object(map)
    }};
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let mut inner = Map::new();
        inner.insert("inner".into(), json!("text \"quoted\""));
        let v = json!({
            "a": 1u32,
            "b": [1.5f64, 2.5f64],
            "c": Value::Object(inner),
            "d": json!(null),
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_round_trip_exactly() {
        let v = json!(u64::MAX - 3);
        let s = to_string(&v).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, u64::MAX - 3);
    }

    #[test]
    fn pretty_output_is_indented() {
        let s = to_string_pretty(&json!({ "k": [1u32] })).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn serializes_tuples_and_vecs() {
        let series: Vec<(String, Vec<(f64, f64)>)> =
            vec![("a".into(), vec![(1.0, 0.5)])];
        let s = to_string(&json!(series)).unwrap();
        assert_eq!(s, "[[\"a\",[[1,0.5]]]]");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: String = from_str("\"a\\n\\u0041é\"").unwrap();
        assert_eq!(v, "a\nAé");
    }
}
