//! Offline stand-in for `proptest`: random-input property testing with the
//! same macro surface this workspace uses (`proptest!`, `prop_oneof!`,
//! `prop::collection::vec`, ranges, tuples, `prop_map`, `prop_assert!`).
//!
//! Compared to upstream proptest there is no shrinking: a failing case
//! prints its inputs (seed-stable per test name) and panics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic per-test RNG: the stream depends only on the test name,
    /// so failures reproduce run-to-run.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable, well-spread seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    fn u64(&mut self) -> u64 {
        self.inner.gen()
    }

    fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    fn f64(&mut self) -> f64 {
        self.inner.gen()
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty : $via:ident),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.u64() % span) as $t
            }
        }
        #[allow(unused)]
        fn $via() {}
    )*};
}
int_range_strategy!(u32: _r_u32, u64: _r_u64, usize: _r_usize);

impl Strategy for core::ops::Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.u64() % span) as i64)
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Uniform choice among alternative strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; each draw picks one uniformly.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "empty Union strategy");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].sample(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s of a given length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors whose length is drawn from `len` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Runs `body` against `cases` random inputs drawn by `draw`, printing the
/// failing input before propagating any panic.
pub fn run_cases<V>(
    test_name: &str,
    cases: u32,
    draw: impl Fn(&mut TestRng) -> V,
    body: impl Fn(&V) + std::panic::RefUnwindSafe,
) where
    V: core::fmt::Debug + std::panic::RefUnwindSafe,
{
    let mut rng = TestRng::for_test(test_name);
    for case in 0..cases {
        let input = draw(&mut rng);
        let result = std::panic::catch_unwind(|| body(&input));
        if let Err(payload) = result {
            eprintln!(
                "proptest failure in `{test_name}` (case {case}/{cases}) with input:\n  \
                 {input:#?}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { ... }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let strategies = ( $($strat,)+ );
                $crate::run_cases(
                    stringify!($name),
                    cfg.cases,
                    |rng| $crate::Strategy::sample(&strategies, rng),
                    |input| {
                        let ( $($arg,)+ ) = input.clone();
                        $body
                    },
                );
            }
        )*
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

/// Property assertion (no shrinking, so plain assert semantics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, ProptestConfig,
        Strategy, TestRng, Union,
    };

    /// Namespace mirror of upstream's `prop::` module paths.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::for_test("vec_len");
        let strat = collection::vec(0u64..10, 1..5);
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let s = 0u64..1_000_000;
        for _ in 0..10 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn macro_generates_tests(x in 1u32..100, ys in collection::vec(0u64..9, 1..4)) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(ys.iter().filter(|&&y| y < 9).count(), ys.len());
        }
    }

    proptest! {
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..10).prop_map(|x| x * 2),
            (100u32..110).prop_map(|x| x + 1),
        ]) {
            prop_assert!(v < 20 || (101..111).contains(&v));
        }
    }
}
