//! Offline stand-in for `serde`.
//!
//! Instead of upstream serde's visitor architecture, this vendored crate
//! routes (de)serialization through a small owned [`Content`] tree — enough
//! for the JSON round-trips this workspace performs, while keeping the
//! familiar `#[derive(Serialize, Deserialize)]` surface (re-exported from
//! the vendored `serde_derive` proc-macro crate).

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree, the interchange format between
/// `Serialize`/`Deserialize` impls and data formats such as `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A string-keyed map in insertion order.
    Map(Vec<(String, Content)>),
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion of a value into a [`Content`] tree.
pub trait Serialize {
    /// Renders `self` as a content tree.
    fn to_content(&self) -> Content;
}

/// Reconstruction of a value from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parses `content` into a value.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ----- Serialize impls for primitives and std containers -------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ----- Deserialize impls ---------------------------------------------------

fn num_err(found: &Content, want: &str) -> DeError {
    DeError(format!("expected {want}, found {found:?}"))
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match *content {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 => v as u64,
                    ref c => return Err(num_err(c, "unsigned integer")),
                };
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match *content {
                    Content::I64(v) => v,
                    Content::U64(v) if v <= i64::MAX as u64 => v as i64,
                    Content::F64(v) if v.fract() == 0.0 => v as i64,
                    ref c => return Err(num_err(c, "integer")),
                };
                <$t>::try_from(v).map_err(|_| DeError(format!(
                    "{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match *content {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            ref c => Err(num_err(c, "number")),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            c => Err(num_err(c, "bool")),
        }
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            c => Err(num_err(c, "string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            c => T::from_content(c).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            c => Err(num_err(c, "sequence")),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal : $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_content(&items[$n])?,)+))
                    }
                    c => Err(num_err(c, concat!("sequence of length ", $len))),
                }
            }
        }
    )*};
}
de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}

/// Looks up `key` in a derive-generated map body (helper for derived code).
#[doc(hidden)]
pub fn __map_get<'c>(map: &'c [(String, Content)], key: &str) -> Result<&'c Content, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(f64::from_content(&1.5f64.to_content()), Ok(1.5));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u64>::from_content(&vec![1u64, 2, 3].to_content()),
            Ok(vec![1, 2, 3])
        );
        let pair = (2u32, 0.5f64);
        assert_eq!(<(u32, f64)>::from_content(&pair.to_content()), Ok(pair));
    }

    #[test]
    fn option_maps_to_null() {
        assert_eq!(Option::<u32>::from_content(&Content::Null), Ok(None));
        assert_eq!(None::<u32>.to_content(), Content::Null);
    }

    #[test]
    fn wrong_shape_errors() {
        assert!(u32::from_content(&Content::Str("x".into())).is_err());
        assert!(String::from_content(&Content::U64(3)).is_err());
    }
}
