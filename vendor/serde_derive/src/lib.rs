//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stand-in. Without network access there is no `syn`/`quote`, so the item
//! is parsed directly from `proc_macro` tokens. Supported shapes — which
//! cover every derive in this workspace — are:
//!
//! * structs with named fields (serialized as a string-keyed map),
//! * tuple structs (newtypes serialize transparently, larger ones as a seq),
//! * enums with unit variants only (serialized as the variant name).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What kind of item the derive is attached to.
enum Item {
    /// Named-field struct: name + field identifiers.
    Struct(String, Vec<String>),
    /// Tuple struct: name + field count.
    Tuple(String, usize),
    /// Unit-variant enum: name + variant identifiers.
    Enum(String, Vec<String>),
}

/// Consumes leading attributes (`#[...]`) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a field/variant body on top-level commas (ignoring commas nested in
/// `<...>` or in groups, which arrive pre-balanced as `TokenTree::Group`s).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                let mut fields = Vec::new();
                for seg in split_top_level(&body) {
                    let j = skip_vis(&seg, skip_attrs(&seg, 0));
                    match seg.get(j) {
                        Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                        other => return Err(format!("expected field name, found {other:?}")),
                    }
                }
                Ok(Item::Struct(name, fields))
            } else {
                let mut variants = Vec::new();
                for seg in split_top_level(&body) {
                    let j = skip_attrs(&seg, 0);
                    match seg.get(j) {
                        Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
                        other => return Err(format!("expected variant, found {other:?}")),
                    }
                    if seg.len() > j + 1 {
                        return Err(format!(
                            "vendored serde_derive supports only unit enum variants \
                             (variant `{}` of `{name}` carries data)",
                            variants.last().expect("just pushed")
                        ));
                    }
                }
                Ok(Item::Enum(name, variants))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::Tuple(name, split_top_level(&body).len()))
        }
        other => Err(format!(
            "vendored serde_derive cannot handle item `{name}` (generics/unions \
             unsupported), found {other:?}"
        )),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("literal")
}

/// Derives the content-tree `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let src = match item {
        Item::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Tuple(name, 1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                     ::serde::Serialize::to_content(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Tuple(name, n) => {
            let entries: String = (0..n)
                .map(|k| format!("::serde::Serialize::to_content(&self.{k}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Seq(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => \
                         ::serde::Content::Str(::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated impl parses")
}

/// Derives the content-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let src = match item {
        Item::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::__map_get(m, {f:?})?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match content {{\n\
                             ::serde::Content::Map(m) => Ok({name} {{ {inits} }}),\n\
                             c => Err(::serde::DeError(format!(\n\
                                 \"expected map for struct {name}, found {{c:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Tuple(name, 1) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_content(content)?))\n\
                 }}\n\
             }}"
        ),
        Item::Tuple(name, n) => {
            let inits: String = (0..n)
                .map(|k| format!("::serde::Deserialize::from_content(&items[{k}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match content {{\n\
                             ::serde::Content::Seq(items) if items.len() == {n} => \
                                 Ok({name}({inits})),\n\
                             c => Err(::serde::DeError(format!(\n\
                                 \"expected seq of {n} for {name}, found {{c:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match content {{\n\
                             ::serde::Content::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::DeError(format!(\n\
                                     \"unknown variant {{other}} of {name}\"))),\n\
                             }},\n\
                             c => Err(::serde::DeError(format!(\n\
                                 \"expected string for enum {name}, found {{c:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    src.parse().expect("generated impl parses")
}
