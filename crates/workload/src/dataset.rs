//! Request length distributions.
//!
//! The paper samples prompts from ShareGPT and derives two variants by
//! doubling input (`ShareGPT-ix2`) or output (`ShareGPT-ox2`) lengths
//! (§7.1). We model the length marginals with log-normal distributions
//! calibrated to published ShareGPT statistics (mean prompt ≈ 330 tokens,
//! mean output ≈ 250 tokens, heavy right tails); content is irrelevant to
//! scheduling.

use aegaeon_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A log-normal input/output token length distribution.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LengthDist {
    /// Mean prompt length (tokens).
    pub input_mean: f64,
    /// Sigma of the underlying normal for inputs.
    pub input_sigma: f64,
    /// Mean output length (tokens).
    pub output_mean: f64,
    /// Sigma of the underlying normal for outputs.
    pub output_sigma: f64,
    /// Clamp for inputs.
    pub max_input: u32,
    /// Clamp for outputs.
    pub max_output: u32,
}

impl LengthDist {
    /// ShareGPT-like lengths.
    pub fn sharegpt() -> LengthDist {
        LengthDist {
            input_mean: 330.0,
            input_sigma: 1.0,
            output_mean: 250.0,
            output_sigma: 0.85,
            max_input: 8192,
            max_output: 4096,
        }
    }

    /// ShareGPT with input lengths scaled 2× (`ShareGPT-ix2`).
    pub fn sharegpt_ix2() -> LengthDist {
        let mut d = Self::sharegpt();
        d.input_mean *= 2.0;
        d
    }

    /// ShareGPT with output lengths scaled 2× (`ShareGPT-ox2`).
    pub fn sharegpt_ox2() -> LengthDist {
        let mut d = Self::sharegpt();
        d.output_mean *= 2.0;
        d
    }

    /// Samples `(input_tokens, output_tokens)`.
    pub fn sample(&self, rng: &mut SimRng) -> (u32, u32) {
        let i = self.input_mean_sample(rng);
        let o = rng
            .lognormal_mean(self.output_mean, self.output_sigma)
            .round()
            .clamp(1.0, self.max_output as f64) as u32;
        (i, o)
    }

    fn input_mean_sample(&self, rng: &mut SimRng) -> u32 {
        rng.lognormal_mean(self.input_mean, self.input_sigma)
            .round()
            .clamp(4.0, self.max_input as f64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_means(d: &LengthDist, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut si = 0.0;
        let mut so = 0.0;
        for _ in 0..n {
            let (i, o) = d.sample(&mut rng);
            si += i as f64;
            so += o as f64;
        }
        (si / n as f64, so / n as f64)
    }

    #[test]
    fn sharegpt_means_are_calibrated() {
        let (mi, mo) = empirical_means(&LengthDist::sharegpt(), 50_000, 1);
        // Clamping shaves a little off the heavy tail; allow 10%.
        assert!((mi - 330.0).abs() / 330.0 < 0.10, "input mean {mi}");
        assert!((mo - 250.0).abs() / 250.0 < 0.10, "output mean {mo}");
    }

    #[test]
    fn variants_scale_the_right_marginal() {
        let (mi, mo) = empirical_means(&LengthDist::sharegpt(), 30_000, 2);
        let (mi2, mo2) = empirical_means(&LengthDist::sharegpt_ix2(), 30_000, 2);
        let (mi3, mo3) = empirical_means(&LengthDist::sharegpt_ox2(), 30_000, 2);
        assert!((mi2 / mi - 2.0).abs() < 0.15, "ix2 input ratio {}", mi2 / mi);
        assert!((mo2 / mo - 1.0).abs() < 0.05);
        assert!((mi3 / mi - 1.0).abs() < 0.05);
        assert!((mo3 / mo - 2.0).abs() < 0.15, "ox2 output ratio {}", mo3 / mo);
    }

    #[test]
    fn samples_respect_clamps() {
        let d = LengthDist {
            input_mean: 10_000.0,
            input_sigma: 1.5,
            output_mean: 10_000.0,
            output_sigma: 1.5,
            max_input: 512,
            max_output: 256,
        };
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let (i, o) = d.sample(&mut rng);
            assert!((4..=512).contains(&i));
            assert!((1..=256).contains(&o));
        }
    }
}
