//! Diurnal (time-varying) arrival processes.
//!
//! Production traffic follows day/night cycles on top of the Poisson noise
//! (the 70-hour utilization timeline of Figure 18 shows the pattern). This
//! models a non-homogeneous Poisson process with a sinusoidal rate,
//! sampled by thinning.

use aegaeon_sim::{SimRng, SimTime};

/// A sinusoidally modulated Poisson process.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalProcess {
    /// Mean rate, req/s.
    pub mean_rate: f64,
    /// Relative amplitude in `[0, 1)`: rate swings between
    /// `mean·(1−amp)` and `mean·(1+amp)`.
    pub amplitude: f64,
    /// Cycle period, seconds (86_400 for a day).
    pub period_secs: f64,
    /// Phase offset in `[0, 1)` of a period (staggers models' peaks).
    pub phase: f64,
}

impl DiurnalProcess {
    /// Instantaneous rate at time `t` (seconds).
    pub fn rate_at(&self, t: f64) -> f64 {
        let theta = std::f64::consts::TAU * (t / self.period_secs + self.phase);
        (self.mean_rate * (1.0 + self.amplitude * theta.sin())).max(0.0)
    }

    /// Samples arrivals over `[0, horizon)` by thinning a homogeneous
    /// process at the peak rate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ amplitude < 1` and the rate/period are positive.
    pub fn arrivals(&self, rng: &mut SimRng, horizon: SimTime) -> Vec<SimTime> {
        assert!(
            (0.0..1.0).contains(&self.amplitude),
            "amplitude must be in [0, 1)"
        );
        assert!(self.period_secs > 0.0, "period must be positive");
        let mut out = Vec::new();
        if self.mean_rate <= 0.0 {
            return out;
        }
        let peak = self.mean_rate * (1.0 + self.amplitude);
        let end = horizon.as_secs_f64();
        let mut t = 0.0;
        loop {
            t += rng.exp(peak);
            if t >= end {
                return out;
            }
            // Thinning: accept with probability rate(t)/peak.
            if rng.f64() * peak <= self.rate_at(t) {
                out.push(SimTime::from_secs_f64(t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rate_is_preserved() {
        let p = DiurnalProcess {
            mean_rate: 0.5,
            amplitude: 0.6,
            period_secs: 1000.0,
            phase: 0.0,
        };
        let mut rng = SimRng::seed_from_u64(1);
        let horizon = SimTime::from_secs_f64(50_000.0); // 50 full cycles
        let arr = p.arrivals(&mut rng, horizon);
        let rate = arr.len() as f64 / 50_000.0;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn peaks_and_troughs_differ() {
        let p = DiurnalProcess {
            mean_rate: 1.0,
            amplitude: 0.8,
            period_secs: 2000.0,
            phase: 0.0,
        };
        let mut rng = SimRng::seed_from_u64(2);
        let arr = p.arrivals(&mut rng, SimTime::from_secs_f64(20_000.0));
        // First quarter-cycle (rising, near peak) vs third quarter (trough).
        let count_in = |lo: f64, hi: f64| {
            arr.iter()
                .filter(|t| {
                    let s = t.as_secs_f64() % 2000.0;
                    s >= lo && s < hi
                })
                .count() as f64
        };
        let peak_window = count_in(250.0, 750.0); // sin ≈ +1 around t=500
        let trough_window = count_in(1250.0, 1750.0); // sin ≈ −1 around t=1500
        assert!(
            peak_window > trough_window * 3.0,
            "peak {peak_window} vs trough {trough_window}"
        );
    }

    #[test]
    fn phase_staggers_the_peak() {
        let a = DiurnalProcess {
            mean_rate: 1.0,
            amplitude: 0.9,
            period_secs: 100.0,
            phase: 0.0,
        };
        let b = DiurnalProcess { phase: 0.5, ..a };
        assert!(a.rate_at(25.0) > 1.5);
        assert!(b.rate_at(25.0) < 0.5);
    }

    #[test]
    fn zero_rate_is_empty() {
        let p = DiurnalProcess {
            mean_rate: 0.0,
            amplitude: 0.5,
            period_secs: 100.0,
            phase: 0.0,
        };
        let mut rng = SimRng::seed_from_u64(3);
        assert!(p.arrivals(&mut rng, SimTime::from_secs_f64(100.0)).is_empty());
    }
}
