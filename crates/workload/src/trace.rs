//! Trace synthesis: turning arrival processes, popularity and length
//! distributions into a concrete request stream.

use aegaeon_model::ModelId;
use aegaeon_sim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::dataset::LengthDist;
use crate::process::{poisson_arrivals, BurstProcess};
use crate::request::{Request, RequestId};

/// A time-sorted request stream plus its horizon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Requests sorted by arrival time.
    pub requests: Vec<Request>,
    /// End of the generation window.
    pub horizon: SimTime,
}

impl Trace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Aggregate arrival rate (req/s).
    pub fn aggregate_rate(&self) -> f64 {
        self.requests.len() as f64 / self.horizon.as_secs_f64()
    }

    /// Requests per model.
    pub fn per_model_counts(&self, n_models: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_models];
        for r in &self.requests {
            counts[r.model.0 as usize] += 1;
        }
        counts
    }

    /// Serializes the trace to JSON (replayable across runs and tools).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("traces are plain data")
    }

    /// Parses a trace previously produced by [`Self::to_json`].
    pub fn from_json(s: &str) -> Result<Trace, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The same request stream compressed (`factor > 1`) or stretched
    /// (`factor < 1`) in time: every arrival and the horizon are divided by
    /// `factor`. Lengths, models and relative order are untouched. Load
    /// harnesses use this to replay a recorded trace faster or slower than
    /// it was generated.
    pub fn time_scaled(&self, factor: f64) -> Trace {
        assert!(factor.is_finite() && factor > 0.0, "bad time-scale factor {factor}");
        let requests = self
            .requests
            .iter()
            .map(|r| Request {
                arrival_ns: (r.arrival_ns as f64 / factor).round() as u64,
                ..*r
            })
            .collect();
        Trace {
            requests,
            horizon: SimTime::from_nanos((self.horizon.as_nanos() as f64 / factor).round() as u64),
        }
    }
}

/// Builder assembling a [`Trace`] from per-model arrival processes.
#[derive(Debug)]
pub struct TraceBuilder {
    horizon: SimTime,
    dataset: LengthDist,
    arrivals: Vec<(ModelId, Vec<SimTime>)>,
}

impl TraceBuilder {
    /// Starts a trace over `[0, horizon)` with the given length distribution.
    pub fn new(horizon: SimTime, dataset: LengthDist) -> Self {
        TraceBuilder {
            horizon,
            dataset,
            arrivals: Vec::new(),
        }
    }

    /// Adds a Poisson-arrival model at `rate` req/s (the §7.2 setup where
    /// every model gets the same per-model RPS).
    pub fn poisson_model(mut self, rng: &mut SimRng, model: ModelId, rate: f64) -> Self {
        let a = poisson_arrivals(rng, rate, self.horizon);
        self.arrivals.push((model, a));
        self
    }

    /// Adds `n` models with identical Poisson rate (convenience).
    pub fn uniform_models(mut self, rng: &mut SimRng, n: u32, rate: f64) -> Self {
        for m in 0..n {
            self = self.poisson_model(rng, ModelId(m), rate);
        }
        self
    }

    /// Adds models with rates proportional to `weights`, with aggregate rate
    /// `total_rate` (the skewed market mix of Figure 1a / Figure 18).
    pub fn weighted_models(mut self, rng: &mut SimRng, weights: &[f64], total_rate: f64) -> Self {
        let wsum: f64 = weights.iter().sum();
        for (m, w) in weights.iter().enumerate() {
            let rate = total_rate * w / wsum;
            self = self.poisson_model(rng, ModelId(m as u32), rate);
        }
        self
    }

    /// Adds a bursty (hot) model.
    pub fn bursty_model(mut self, rng: &mut SimRng, model: ModelId, p: BurstProcess) -> Self {
        let a = p.arrivals(rng, self.horizon);
        self.arrivals.push((model, a));
        self
    }

    /// Adds explicit arrival instants for a model (replay of external traces).
    pub fn explicit_model(mut self, model: ModelId, arrivals: Vec<SimTime>) -> Self {
        self.arrivals.push((model, arrivals));
        self
    }

    /// Samples lengths, merges all models and sorts by time.
    pub fn build(self, rng: &mut SimRng) -> Trace {
        let mut requests = Vec::new();
        for (model, arrivals) in self.arrivals {
            for t in arrivals {
                let (input_tokens, output_tokens) = self.dataset.sample(rng);
                // Id 0 is a placeholder; ids are assigned after sorting.
                requests.push(Request::single(
                    RequestId(0),
                    model,
                    t.as_nanos(),
                    input_tokens,
                    output_tokens,
                ));
            }
        }
        requests.sort_by_key(|r| (r.arrival_ns, r.model));
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = RequestId(i as u64);
        }
        Trace {
            requests,
            horizon: self.horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_trace_has_expected_volume_and_order() {
        let mut rng = SimRng::seed_from_u64(5);
        let horizon = SimTime::from_secs_f64(1000.0);
        let t = TraceBuilder::new(horizon, LengthDist::sharegpt())
            .uniform_models(&mut rng, 10, 0.1)
            .build(&mut rng);
        // 10 models × 0.1 rps × 1000 s = 1000 expected.
        assert!((t.len() as f64 - 1000.0).abs() < 120.0, "n={}", t.len());
        assert!(t
            .requests
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        let ids: Vec<u64> = t.requests.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, (0..t.len() as u64).collect::<Vec<_>>());
        assert!((t.aggregate_rate() - 1.0).abs() < 0.15);
    }

    #[test]
    fn weighted_trace_respects_skew() {
        let mut rng = SimRng::seed_from_u64(6);
        let horizon = SimTime::from_secs_f64(5000.0);
        let w = vec![0.8, 0.15, 0.05];
        let t = TraceBuilder::new(horizon, LengthDist::sharegpt())
            .weighted_models(&mut rng, &w, 1.0)
            .build(&mut rng);
        let counts = t.per_model_counts(3);
        let total: usize = counts.iter().sum();
        let share0 = counts[0] as f64 / total as f64;
        assert!((share0 - 0.8).abs() < 0.05, "share0={share0}");
    }

    #[test]
    fn json_round_trip_preserves_the_trace() {
        let mut rng = SimRng::seed_from_u64(8);
        let t = TraceBuilder::new(SimTime::from_secs_f64(100.0), LengthDist::sharegpt())
            .uniform_models(&mut rng, 3, 0.2)
            .build(&mut rng);
        let back = Trace::from_json(&t.to_json()).expect("valid JSON");
        assert_eq!(back.requests, t.requests);
        assert_eq!(back.horizon, t.horizon);
    }

    #[test]
    fn time_scaled_compresses_arrivals_preserving_order() {
        let mut rng = SimRng::seed_from_u64(9);
        let t = TraceBuilder::new(SimTime::from_secs_f64(200.0), LengthDist::sharegpt())
            .uniform_models(&mut rng, 2, 0.3)
            .build(&mut rng);
        let fast = t.time_scaled(4.0);
        assert_eq!(fast.len(), t.len());
        assert_eq!(fast.horizon.as_secs_f64(), 50.0);
        for (a, b) in t.requests.iter().zip(&fast.requests) {
            assert_eq!(b.arrival_ns, ((a.arrival_ns as f64) / 4.0).round() as u64);
            assert_eq!((b.id, b.model, b.input_tokens, b.output_tokens),
                       (a.id, a.model, a.input_tokens, a.output_tokens));
        }
        assert!(fast
            .requests
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        let slow = t.time_scaled(0.5);
        assert_eq!(slow.horizon.as_secs_f64(), 400.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let build = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            TraceBuilder::new(SimTime::from_secs_f64(500.0), LengthDist::sharegpt())
                .uniform_models(&mut rng, 5, 0.2)
                .build(&mut rng)
        };
        let a = build(42);
        let b = build(42);
        assert_eq!(a.requests, b.requests);
    }
}
