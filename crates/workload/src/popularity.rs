//! Model popularity skew (Figure 1a).
//!
//! The production workload is heavily skewed: 94.1% of the 779 models
//! receive only 1.35% of the 167.6M requests. A Zipf-like power law with a
//! suitable exponent reproduces that head/tail split; [`head_share`]
//! measures it so the Figure 1a harness can report the same statistic.

/// Zipf weights `w_i ∝ (i+1)^-s` for `n` items, normalized to sum to 1.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one model");
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-s)).collect();
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

/// Fraction of total weight held by the top `frac` of items (weights must be
/// sorted descending, as [`zipf_weights`] returns them).
pub fn head_share(weights: &[f64], frac: f64) -> f64 {
    let k = ((weights.len() as f64 * frac).round() as usize).clamp(0, weights.len());
    let head: f64 = weights[..k].iter().sum();
    let total: f64 = weights.iter().sum();
    if total == 0.0 {
        0.0
    } else {
        head / total
    }
}

/// The exponent calibrated so that 779 models reproduce the paper's split
/// (top 5.9% of models ≈ 98.65% of requests).
pub const MARKET_ZIPF_EXPONENT: f64 = 2.05;

/// The CDF of request share versus model rank (both normalized to `[0,1]`),
/// evaluated at `points` evenly spaced ranks — the Figure 1a curve.
pub fn request_cdf(weights: &[f64], points: usize) -> Vec<(f64, f64)> {
    let n = weights.len();
    let total: f64 = weights.iter().sum();
    let mut out = Vec::with_capacity(points);
    let mut acc = 0.0;
    let mut next_idx = 0usize;
    for p in 1..=points {
        let upto = (n * p) / points;
        while next_idx < upto {
            acc += weights[next_idx];
            next_idx += 1;
        }
        out.push((upto as f64 / n as f64, acc / total));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_normalized_and_descending() {
        let w = zipf_weights(100, 1.5);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn market_exponent_reproduces_figure_1a_split() {
        // Paper: 94.1% of 779 models receive 1.35% of requests, i.e. the
        // head 5.9% receives 98.65%.
        let w = zipf_weights(779, MARKET_ZIPF_EXPONENT);
        let head = head_share(&w, 0.059);
        assert!(
            (head - 0.9865).abs() < 0.015,
            "head share {head}, want ≈ 0.9865"
        );
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let w = zipf_weights(779, MARKET_ZIPF_EXPONENT);
        let cdf = request_cdf(&w, 50);
        assert!(cdf.windows(2).all(|p| p[0].1 <= p[1].1));
        let last = cdf.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_weights_have_linear_head_share() {
        let w = vec![0.25; 4];
        assert!((head_share(&w, 0.5) - 0.5).abs() < 1e-9);
    }
}
