//! Arrival processes: Poisson and two-state burst (MMPP).

use aegaeon_sim::{SimRng, SimTime};

/// Arrival instants of a Poisson process with rate `rate` (req/s) over
/// `[0, horizon)`.
pub fn poisson_arrivals(rng: &mut SimRng, rate: f64, horizon: SimTime) -> Vec<SimTime> {
    let mut out = Vec::new();
    if rate <= 0.0 {
        return out;
    }
    let mut t = 0.0;
    let end = horizon.as_secs_f64();
    loop {
        t += rng.exp(rate);
        if t >= end {
            return out;
        }
        out.push(SimTime::from_secs_f64(t));
    }
}

/// A Markov-modulated Poisson process alternating between a base rate and a
/// burst rate, reproducing the short-term bursts on hot models (Figure 1b).
#[derive(Debug, Clone, Copy)]
pub struct BurstProcess {
    /// Rate outside bursts (req/s).
    pub base_rate: f64,
    /// Rate during bursts (req/s).
    pub burst_rate: f64,
    /// Mean duration of quiet periods (s).
    pub mean_quiet: f64,
    /// Mean duration of bursts (s).
    pub mean_burst: f64,
}

impl BurstProcess {
    /// Generates arrivals over `[0, horizon)`.
    pub fn arrivals(&self, rng: &mut SimRng, horizon: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        let end = horizon.as_secs_f64();
        let mut t = 0.0;
        let mut bursting = false;
        while t < end {
            let sojourn = if bursting {
                rng.exp(1.0 / self.mean_burst)
            } else {
                rng.exp(1.0 / self.mean_quiet)
            };
            let rate = if bursting { self.burst_rate } else { self.base_rate };
            let phase_end = (t + sojourn).min(end);
            if rate > 0.0 {
                let mut a = t;
                loop {
                    a += rng.exp(rate);
                    if a >= phase_end {
                        break;
                    }
                    out.push(SimTime::from_secs_f64(a));
                }
            }
            t = phase_end;
            bursting = !bursting;
        }
        out
    }

    /// Long-run average rate.
    pub fn mean_rate(&self) -> f64 {
        (self.base_rate * self.mean_quiet + self.burst_rate * self.mean_burst)
            / (self.mean_quiet + self.mean_burst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let mut rng = SimRng::seed_from_u64(1);
        let horizon = SimTime::from_secs_f64(10_000.0);
        let arr = poisson_arrivals(&mut rng, 0.5, horizon);
        let rate = arr.len() as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
        assert!(arr.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(arr.iter().all(|&t| t < horizon));
    }

    #[test]
    fn zero_rate_yields_nothing() {
        let mut rng = SimRng::seed_from_u64(1);
        assert!(poisson_arrivals(&mut rng, 0.0, SimTime::from_secs_f64(100.0)).is_empty());
    }

    #[test]
    fn burst_process_mean_rate() {
        let p = BurstProcess {
            base_rate: 1.0,
            burst_rate: 10.0,
            mean_quiet: 90.0,
            mean_burst: 10.0,
        };
        assert!((p.mean_rate() - 1.9).abs() < 1e-9);
        let mut rng = SimRng::seed_from_u64(7);
        let horizon = SimTime::from_secs_f64(50_000.0);
        let arr = p.arrivals(&mut rng, horizon);
        let rate = arr.len() as f64 / 50_000.0;
        assert!((rate - 1.9).abs() < 0.15, "rate {rate}");
    }

    #[test]
    fn bursts_create_rate_spikes() {
        let p = BurstProcess {
            base_rate: 1.0,
            burst_rate: 50.0,
            mean_quiet: 60.0,
            mean_burst: 20.0,
        };
        let mut rng = SimRng::seed_from_u64(11);
        let arr = p.arrivals(&mut rng, SimTime::from_secs_f64(2_000.0));
        // Bucket into 10 s windows; the max window must far exceed the base.
        let mut buckets = vec![0u32; 200];
        for t in &arr {
            buckets[(t.as_secs_f64() / 10.0) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap() as f64 / 10.0;
        let min = *buckets.iter().min().unwrap() as f64 / 10.0;
        assert!(max > 20.0, "max windowed rate {max}");
        assert!(min < 5.0, "min windowed rate {min}");
    }
}
