//! Agentic multi-turn session workloads.
//!
//! Models the traffic class Scepsy and AGENTSERVESIM describe: a session is
//! a sequence of turns against one model where turn *k*'s prompt is the
//! shared prefix (every prior prompt + output token) plus a fresh user
//! delta, with seeded "think gaps" (tool-call latency) between turns, and
//! optional DAG fan-out where a turn's completion spawns fresh requests to
//! other models. Sessions lower deterministically into the existing
//! [`Trace`] / [`Request`] stream via the `session` / `turn_index` /
//! `prefix_tokens` fields, so every downstream consumer (baselines, shards,
//! gateway injection, replay fingerprints) keeps working unchanged.
//!
//! Lowering rules (also documented in DESIGN.md):
//!
//! * `prefix(0) = 0`, `input(k) = prefix(k) + delta(k)`,
//!   `prefix(k+1) = input(k) + output(k)` — the next turn's prompt replays
//!   the whole conversation so far.
//! * `arrival(k+1) = arrival(k) + est_service(k) + think_gap(k+1)` where
//!   the service estimate is a client-side guess (`ServiceEstimate`); the
//!   generator cannot know actual completion times, so a turn may arrive
//!   while its predecessor is still running — the scheduler degrades that
//!   to a prefix miss.
//! * A DAG child spawned after turn *k* is a fresh, prefix-free request to
//!   a different model arriving at `arrival(k) + est_service(k) + ε`.
//!
//! All randomness is consumed in [`SessionBuilder::generate`]; lowering
//! itself is pure flattening + the same sort / id-assignment rule as
//! [`crate::trace::TraceBuilder::build`], hence bit-deterministic.

use aegaeon_model::ModelId;
use aegaeon_sim::{SimDur, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::dataset::LengthDist;
use crate::process::poisson_arrivals;
use crate::request::{Request, RequestId, SessionId};
use crate::trace::Trace;

/// Client-side estimate of how long a turn takes to serve, used to place
/// the next turn's arrival. Deliberately *not* the engine's real latency
/// model: agents time their follow-ups off perceived service speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceEstimate {
    /// Estimated time to first token (seconds).
    pub ttft_secs: f64,
    /// Estimated time between tokens (seconds).
    pub tbt_secs: f64,
}

impl ServiceEstimate {
    /// A paper-SLO-shaped guess: 2 s to first token, 100 ms/token after.
    pub fn paper_slo() -> ServiceEstimate {
        ServiceEstimate {
            ttft_secs: 2.0,
            tbt_secs: 0.1,
        }
    }

    /// Estimated wall time to serve a turn emitting `output_tokens`.
    pub fn service_secs(&self, output_tokens: u32) -> f64 {
        self.ttft_secs + self.tbt_secs * f64::from(output_tokens.saturating_sub(1))
    }
}

/// One resolved turn of an agent session (arrival already planned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionTurn {
    /// Planned arrival instant.
    pub arrival: SimTime,
    /// Tokens shared with prior turns (prompt + output history).
    pub prefix_tokens: u32,
    /// Fresh user-delta tokens in this turn's prompt.
    pub delta_tokens: u32,
    /// Output length of this turn.
    pub output_tokens: u32,
}

impl SessionTurn {
    /// Full prompt length: shared prefix + fresh delta.
    pub fn input_tokens(&self) -> u32 {
        self.prefix_tokens + self.delta_tokens
    }
}

/// A DAG fan-out child: a fresh request to another model triggered by the
/// estimated completion of one of the parent session's turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FanOutChild {
    /// 0-based index of the parent turn whose completion triggers this.
    pub after_turn: u32,
    /// Planned arrival (parent turn's estimated last token + dispatch ε).
    pub arrival: SimTime,
    /// Target model (never the parent session's model).
    pub model: ModelId,
    /// Prompt length (no shared prefix — fresh pipeline stage).
    pub input_tokens: u32,
    /// Output length.
    pub output_tokens: u32,
}

/// A fully-resolved multi-turn agent session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentSession {
    /// Session identity carried into every lowered turn.
    pub id: SessionId,
    /// The one model every turn targets.
    pub model: ModelId,
    /// Turns in order; arrivals strictly increase.
    pub turns: Vec<SessionTurn>,
    /// DAG fan-out children (may be empty).
    pub children: Vec<FanOutChild>,
}

impl AgentSession {
    /// Estimated completion instant of turn `k` under `est`.
    pub fn est_completion(&self, k: usize, est: &ServiceEstimate) -> SimTime {
        let t = &self.turns[k];
        t.arrival + SimDur::from_secs_f64(est.service_secs(t.output_tokens))
    }
}

/// A batch of agent sessions plus the generation window, ready to lower.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionWorkload {
    /// All sessions, in generation order (model-major, then start time).
    pub sessions: Vec<AgentSession>,
    /// Generation window end (the lowered horizon covers stragglers too).
    pub horizon: SimTime,
    /// The estimate used to plan arrivals (kept for audit/tests).
    pub est: ServiceEstimate,
}

impl SessionWorkload {
    /// Total turns across all sessions.
    pub fn total_turns(&self) -> usize {
        self.sessions.iter().map(|s| s.turns.len()).sum()
    }

    /// Total DAG children across all sessions.
    pub fn total_children(&self) -> usize {
        self.sessions.iter().map(|s| s.children.len()).sum()
    }

    /// Lowers sessions into a time-sorted [`Trace`]: every turn becomes a
    /// [`Request`] carrying its session id / turn index / shared prefix;
    /// every DAG child becomes a fresh single-shot request. Sorting and id
    /// assignment mirror [`crate::trace::TraceBuilder::build`], so the
    /// result is indistinguishable from any other trace downstream.
    pub fn lower(&self) -> Trace {
        let mut requests = Vec::with_capacity(self.total_turns() + self.total_children());
        let mut latest = SimTime::ZERO;
        for s in &self.sessions {
            for (k, t) in s.turns.iter().enumerate() {
                requests.push(Request {
                    id: RequestId(0), // assigned after sorting
                    model: s.model,
                    arrival_ns: t.arrival.as_nanos(),
                    input_tokens: t.input_tokens().max(1),
                    output_tokens: t.output_tokens.max(1),
                    session: s.id,
                    turn_index: k as u32,
                    prefix_tokens: t.prefix_tokens,
                });
                latest = latest.max(t.arrival);
            }
            for c in &s.children {
                requests.push(Request::single(
                    RequestId(0),
                    c.model,
                    c.arrival.as_nanos(),
                    c.input_tokens.max(1),
                    c.output_tokens.max(1),
                ));
                latest = latest.max(c.arrival);
            }
        }
        requests.sort_by_key(|r| (r.arrival_ns, r.model));
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = RequestId(i as u64);
        }
        Trace {
            requests,
            horizon: self.horizon.max(latest + SimDur::from_secs(1)),
        }
    }
}

/// Builder synthesizing a [`SessionWorkload`] from seeded distributions.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    horizon: SimTime,
    n_models: u32,
    session_rate: f64,
    turns_min: u32,
    turns_max: u32,
    dataset: LengthDist,
    think_gap_secs: f64,
    think_gap_sigma: f64,
    fanout_prob: f64,
    fanout_max: u32,
    est: ServiceEstimate,
}

impl SessionBuilder {
    /// Session starts per model follow a Poisson process at `session_rate`
    /// sessions/s over `[0, horizon)`; per-turn delta/output lengths come
    /// from a ShareGPT-like distribution; think gaps default to a 10 s
    /// lognormal (tool calls dominated by a heavy tail); no fan-out.
    pub fn new(horizon: SimTime, n_models: u32, session_rate: f64) -> SessionBuilder {
        SessionBuilder {
            horizon,
            n_models: n_models.max(1),
            session_rate,
            turns_min: 2,
            turns_max: 6,
            dataset: LengthDist::sharegpt(),
            think_gap_secs: 10.0,
            think_gap_sigma: 0.8,
            fanout_prob: 0.0,
            fanout_max: 2,
            est: ServiceEstimate::paper_slo(),
        }
    }

    /// Uniform session depth range (inclusive).
    pub fn depth(mut self, min: u32, max: u32) -> SessionBuilder {
        self.turns_min = min.max(1);
        self.turns_max = max.max(self.turns_min);
        self
    }

    /// Per-turn length distribution (delta prompt / output).
    pub fn lengths(mut self, d: LengthDist) -> SessionBuilder {
        self.dataset = d;
        self
    }

    /// Mean think-gap seconds between turns and lognormal sigma.
    pub fn think_gap(mut self, mean_secs: f64, sigma: f64) -> SessionBuilder {
        self.think_gap_secs = mean_secs.max(0.0);
        self.think_gap_sigma = sigma.max(0.0);
        self
    }

    /// Probability a turn spawns DAG children, and the max breadth.
    pub fn fanout(mut self, prob: f64, max_children: u32) -> SessionBuilder {
        self.fanout_prob = prob.clamp(0.0, 1.0);
        self.fanout_max = max_children.max(1);
        self
    }

    /// Client-side service estimate used to plan follow-up arrivals.
    pub fn estimate(mut self, est: ServiceEstimate) -> SessionBuilder {
        self.est = est;
        self
    }

    /// Draws every session, turn, gap and fan-out decision from `rng`.
    /// All randomness is consumed here; the result lowers deterministically.
    pub fn generate(&self, rng: &mut SimRng) -> SessionWorkload {
        let mut sessions = Vec::new();
        let mut next_id = 0u64;
        for m in 0..self.n_models {
            let starts = poisson_arrivals(rng, self.session_rate, self.horizon);
            for start in starts {
                let depth = self.turns_min
                    + rng.below((self.turns_max - self.turns_min + 1) as usize) as u32;
                let mut turns = Vec::with_capacity(depth as usize);
                let mut children = Vec::new();
                let mut arrival = start;
                let mut prefix = 0u32;
                for k in 0..depth {
                    let (delta, output) = self.dataset.sample(rng);
                    let turn = SessionTurn {
                        arrival,
                        prefix_tokens: prefix,
                        delta_tokens: delta.max(1),
                        output_tokens: output.max(1),
                    };
                    let est_done = arrival
                        + SimDur::from_secs_f64(self.est.service_secs(turn.output_tokens));
                    if self.n_models > 1 && rng.f64() < self.fanout_prob {
                        let breadth = 1 + rng.below(self.fanout_max as usize) as u32;
                        for j in 0..breadth {
                            // Deterministic spread over the other models.
                            let target = (m + 1 + (j % (self.n_models - 1))) % self.n_models;
                            let (ci, co) = self.dataset.sample(rng);
                            children.push(FanOutChild {
                                after_turn: k,
                                arrival: est_done + SimDur::from_millis(1) * u64::from(j + 1),
                                model: ModelId(target),
                                input_tokens: ci.max(1),
                                output_tokens: co.max(1),
                            });
                        }
                    }
                    prefix = turn.input_tokens() + turn.output_tokens;
                    let gap = if self.think_gap_secs > 0.0 {
                        rng.lognormal_mean(self.think_gap_secs, self.think_gap_sigma)
                            .clamp(0.001, 3600.0)
                    } else {
                        0.001
                    };
                    arrival = est_done + SimDur::from_secs_f64(gap);
                    turns.push(turn);
                }
                sessions.push(AgentSession {
                    id: SessionId(next_id),
                    model: ModelId(m),
                    turns,
                    children,
                });
                next_id += 1;
            }
        }
        SessionWorkload {
            sessions,
            horizon: self.horizon,
            est: self.est,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(seed: u64) -> SessionWorkload {
        let mut rng = SimRng::seed_from_u64(seed);
        SessionBuilder::new(SimTime::from_secs_f64(600.0), 4, 0.02)
            .depth(2, 5)
            .think_gap(5.0, 0.6)
            .fanout(0.3, 2)
            .generate(&mut rng)
    }

    #[test]
    fn generation_and_lowering_are_deterministic() {
        let a = workload(11);
        let b = workload(11);
        assert_eq!(a, b);
        assert_eq!(a.lower().requests, b.lower().requests);
        assert!(a.total_turns() > 0, "seed produced no sessions");
    }

    #[test]
    fn prefix_chain_is_well_formed() {
        let w = workload(12);
        for s in &w.sessions {
            assert_eq!(s.turns[0].prefix_tokens, 0);
            for k in 1..s.turns.len() {
                let prev = &s.turns[k - 1];
                assert_eq!(
                    s.turns[k].prefix_tokens,
                    prev.input_tokens() + prev.output_tokens,
                    "turn {k} prefix must replay the whole conversation"
                );
                assert!(s.turns[k].arrival > prev.arrival);
            }
        }
    }

    #[test]
    fn lowered_trace_is_sorted_with_dense_ids_and_session_meta() {
        let w = workload(13);
        let t = w.lower();
        assert!(t
            .requests
            .windows(2)
            .all(|p| p[0].arrival_ns <= p[1].arrival_ns));
        for (i, r) in t.requests.iter().enumerate() {
            assert_eq!(r.id.0, i as u64);
            if r.session.is_some() {
                assert!(r.input_tokens > r.prefix_tokens);
            } else {
                assert_eq!((r.turn_index, r.prefix_tokens), (0, 0));
            }
        }
        let n_turns: usize = t.requests.iter().filter(|r| r.session.is_some()).count();
        assert_eq!(n_turns, w.total_turns());
        assert_eq!(t.requests.len(), w.total_turns() + w.total_children());
    }

    #[test]
    fn children_arrive_after_parent_estimated_completion() {
        let w = workload(14);
        let mut saw = 0;
        for s in &w.sessions {
            for c in &s.children {
                assert_ne!(c.model, s.model);
                assert!(c.arrival > s.est_completion(c.after_turn as usize, &w.est));
                saw += 1;
            }
        }
        assert!(saw > 0, "fanout prob 0.3 produced no children");
    }
}
