//! Active-model-count analysis (Theorem 3.1 and Figure 4).
//!
//! A model is *active* when it has at least one request in service. With
//! Poisson arrivals at rate λ per model and mean service time T, the
//! expected number of active models out of M is `M·(1 − e^{−λT})`
//! (Theorem 3.1) — the quantity that bounds request-level auto-scaling and
//! motivates Aegaeon's token-level design.

use aegaeon_sim::{SimDur, SimTime};

use crate::trace::Trace;

/// Theorem 3.1: `E[m] = M · (1 − e^{−λT})`.
pub fn expected_active(m_models: u32, lambda: f64, service_secs: f64) -> f64 {
    m_models as f64 * (1.0 - (-lambda * service_secs).exp())
}

/// Simulated active-model count over time for a trace where every request
/// occupies its model for `service` seconds. Returns `(time, count)`
/// samples on a regular `step` grid.
pub fn active_count_series(trace: &Trace, service: SimDur, step: SimDur) -> Vec<(SimTime, u32)> {
    // Sweep: +1 at arrival, -1 at departure, per model; a model is active
    // while its in-service counter is > 0.
    #[derive(Debug)]
    struct Ev {
        t: u64,
        model: u32,
        delta: i32,
    }
    let mut evs: Vec<Ev> = Vec::with_capacity(trace.requests.len() * 2);
    let mut max_model = 0u32;
    for r in &trace.requests {
        max_model = max_model.max(r.model.0);
        evs.push(Ev {
            t: r.arrival_ns,
            model: r.model.0,
            delta: 1,
        });
        evs.push(Ev {
            t: (r.arrival() + service).as_nanos(),
            model: r.model.0,
            delta: -1,
        });
    }
    evs.sort_by_key(|e| (e.t, e.delta));
    let mut in_service = vec![0i32; max_model as usize + 1];
    let mut active = 0u32;
    let mut out = Vec::new();
    let mut next_sample = SimTime::ZERO;
    let end = trace.horizon;
    let mut i = 0usize;
    while next_sample <= end {
        let ns = next_sample.as_nanos();
        while i < evs.len() && evs[i].t <= ns {
            let e = &evs[i];
            let c = &mut in_service[e.model as usize];
            let before = *c;
            *c += e.delta;
            if before == 0 && *c > 0 {
                active += 1;
            } else if before > 0 && *c == 0 {
                active -= 1;
            }
            i += 1;
        }
        out.push((next_sample, active));
        next_sample += step;
    }
    out
}

/// Time-averaged active count from a series.
pub fn mean_active(series: &[(SimTime, u32)]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|&(_, c)| c as f64).sum::<f64>() / series.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LengthDist;
    use crate::trace::TraceBuilder;
    use aegaeon_sim::SimRng;

    #[test]
    fn theorem_matches_paper_example() {
        // §3.1: M = 100, λ = 0.037, T = 16.79 s. The formula yields 46.27;
        // the paper prints E[m] = 46.55 (λT rounded differently), a 0.6%
        // difference.
        let e = expected_active(100, 0.037, 16.79);
        assert!((e - 46.27).abs() < 0.05, "E[m] = {e}");
    }

    #[test]
    fn simulation_fluctuates_around_expectation() {
        // The Figure 4 experiment.
        let mut rng = SimRng::seed_from_u64(4);
        let trace = TraceBuilder::new(SimTime::from_secs_f64(2000.0), LengthDist::sharegpt())
            .uniform_models(&mut rng, 100, 0.037)
            .build(&mut rng);
        let series = active_count_series(
            &trace,
            SimDur::from_secs_f64(16.79),
            SimDur::from_secs_f64(1.0),
        );
        // Skip the warm-up ramp.
        let steady = &series[100..];
        let mean = mean_active(steady);
        assert!((mean - 46.3).abs() < 3.0, "mean active {mean}");
        let max = steady.iter().map(|&(_, c)| c).max().unwrap();
        assert!(max < 80, "max {max}");
    }

    #[test]
    fn empty_trace_has_zero_active() {
        let trace = Trace {
            requests: vec![],
            horizon: SimTime::from_secs_f64(10.0),
        };
        let s = active_count_series(&trace, SimDur::from_secs(1), SimDur::from_secs(1));
        assert!(s.iter().all(|&(_, c)| c == 0));
        assert_eq!(mean_active(&s), 0.0);
    }

    #[test]
    fn single_model_is_active_exactly_while_serving() {
        use crate::request::{Request, RequestId};
        use aegaeon_model::ModelId;
        let trace = Trace {
            requests: vec![Request::single(
                RequestId(0),
                ModelId(0),
                1_000_000_000,
                10,
                10,
            )],
            horizon: SimTime::from_secs_f64(10.0),
        };
        let s = active_count_series(&trace, SimDur::from_secs(3), SimDur::from_secs(1));
        let counts: Vec<u32> = s.iter().map(|&(_, c)| c).collect();
        // Active in [1, 4): samples at t=1,2,3 inclusive-exclusive semantics.
        assert_eq!(counts, vec![0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0]);
    }
}
