//! Requests and service-level objectives.

use aegaeon_model::ModelId;
use aegaeon_sim::{SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies a request within a trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a multi-turn agent session. Single-shot requests carry
/// [`SessionId::NONE`]; turns of the same conversation share an id so the
/// scheduler can route them to the instance still holding their KV prefix.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct SessionId(pub u64);

impl SessionId {
    /// Sentinel for requests that belong to no session.
    pub const NONE: SessionId = SessionId(u64::MAX);

    /// True for real sessions (anything but the sentinel).
    pub fn is_some(&self) -> bool {
        *self != SessionId::NONE
    }

    /// True for the no-session sentinel.
    pub fn is_none(&self) -> bool {
        !self.is_some()
    }
}

impl Default for SessionId {
    fn default() -> Self {
        SessionId::NONE
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_some() {
            write!(f, "s{}", self.0)
        } else {
            write!(f, "s-")
        }
    }
}

/// One inference request.
///
/// `output_tokens` is the *oracle* output length: the simulation uses it to
/// know when generation ends, and the ServerlessLLM+ baseline is explicitly
/// granted access to it for Shortest-Job-First scheduling (§7.1). Aegaeon
/// itself never reads it when making decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Trace-unique id.
    pub id: RequestId,
    /// Target model.
    pub model: ModelId,
    /// Arrival time.
    pub arrival_ns: u64,
    /// Prompt length in tokens.
    pub input_tokens: u32,
    /// Total output length in tokens (≥ 1; the prefill produces the first).
    pub output_tokens: u32,
    /// Owning session, or [`SessionId::NONE`] for single-shot requests.
    pub session: SessionId,
    /// 0-based turn number within the session (0 for single-shot).
    pub turn_index: u32,
    /// Leading tokens of `input_tokens` shared with the session's prior
    /// turns (prompt + output history). A scheduler holding the session's
    /// KV can skip prefilling these; 0 for single-shot requests.
    pub prefix_tokens: u32,
}

impl Request {
    /// A single-shot (non-session) request.
    pub fn single(
        id: RequestId,
        model: ModelId,
        arrival_ns: u64,
        input_tokens: u32,
        output_tokens: u32,
    ) -> Request {
        Request {
            id,
            model,
            arrival_ns,
            input_tokens,
            output_tokens,
            session: SessionId::NONE,
            turn_index: 0,
            prefix_tokens: 0,
        }
    }

    /// Arrival instant.
    pub fn arrival(&self) -> SimTime {
        SimTime::from_nanos(self.arrival_ns)
    }

    /// Tokens generated after the first one (decode steps to run).
    pub fn decode_tokens(&self) -> u32 {
        self.output_tokens.saturating_sub(1)
    }

    /// Prompt tokens beyond the shared session prefix (the fresh user delta
    /// a prefix-cache hit still has to prefill).
    pub fn delta_tokens(&self) -> u32 {
        self.input_tokens.saturating_sub(self.prefix_tokens)
    }
}

/// Per-token service-level objectives (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Time-To-First-Token target.
    pub ttft: SimDur,
    /// Time-Between-Tokens target.
    pub tbt: SimDur,
}

impl SloSpec {
    /// The paper's production SLO (§7.1): TTFT 10 s, TBT 100 ms.
    pub fn paper_default() -> SloSpec {
        SloSpec {
            ttft: SimDur::from_secs(10),
            tbt: SimDur::from_millis(100),
        }
    }

    /// Uniformly scales both targets (Figure 13 uses 0.5×, 0.3×, 0.2×).
    pub fn scaled(&self, f: f64) -> SloSpec {
        SloSpec {
            ttft: self.ttft * f,
            tbt: self.tbt * f,
        }
    }

    /// Scales only the TBT target (Figure 17 left, Strict/Loose).
    pub fn with_tbt_scaled(&self, f: f64) -> SloSpec {
        SloSpec {
            ttft: self.ttft,
            tbt: self.tbt * f,
        }
    }

    /// Scales only the TTFT target (Figure 17 right, Strict/Loose).
    pub fn with_ttft_scaled(&self, f: f64) -> SloSpec {
        SloSpec {
            ttft: self.ttft * f,
            tbt: self.tbt,
        }
    }

    /// The deadline for the `i`-th output token (0-based) of a request that
    /// arrived at `arrival` (Figure 3): the first token is due at
    /// `arrival + ttft`; token `i` at `arrival + ttft + i·tbt`.
    pub fn token_deadline(&self, arrival: SimTime, i: u32) -> SimTime {
        arrival + self.ttft + self.tbt * i as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_are_linear_in_token_index() {
        let slo = SloSpec::paper_default();
        let t0 = SimTime::from_secs_f64(5.0);
        assert_eq!(slo.token_deadline(t0, 0), SimTime::from_secs_f64(15.0));
        assert_eq!(slo.token_deadline(t0, 10), SimTime::from_secs_f64(16.0));
    }

    #[test]
    fn scaling_variants() {
        let slo = SloSpec::paper_default().scaled(0.2);
        assert_eq!(slo.ttft, SimDur::from_secs(2));
        assert_eq!(slo.tbt, SimDur::from_millis(20));
        let strict_tbt = SloSpec::paper_default().with_tbt_scaled(0.5);
        assert_eq!(strict_tbt.ttft, SimDur::from_secs(10));
        assert_eq!(strict_tbt.tbt, SimDur::from_millis(50));
        let loose_ttft = SloSpec::paper_default().with_ttft_scaled(2.0);
        assert_eq!(loose_ttft.ttft, SimDur::from_secs(20));
    }

    #[test]
    fn decode_tokens_excludes_the_first() {
        let r = Request::single(RequestId(0), ModelId(0), 0, 100, 1);
        assert_eq!(r.decode_tokens(), 0);
    }

    #[test]
    fn session_sentinel_and_delta() {
        let r = Request::single(RequestId(0), ModelId(0), 0, 100, 4);
        assert!(!r.session.is_some());
        assert_eq!(r.delta_tokens(), 100);
        let turn = Request {
            session: SessionId(7),
            turn_index: 2,
            prefix_tokens: 60,
            ..r
        };
        assert!(turn.session.is_some());
        assert_eq!(turn.delta_tokens(), 40);
        assert_eq!(format!("{}", turn.session), "s7");
        assert_eq!(format!("{}", SessionId::NONE), "s-");
    }
}
