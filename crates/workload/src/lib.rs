//! Workload generation for concurrent multi-model LLM serving.
//!
//! Reproduces the paper's workload methodology (§7.1): request lengths are
//! sampled from ShareGPT-like distributions (plus the `ix2`/`ox2` variants
//! that double input/output lengths), arrivals follow scaled Poisson
//! processes per model, and §2.2's market phenomena are modeled explicitly —
//! power-law model popularity (Figure 1a) and short-term bursts on hot
//! models (Figure 1b). The active-model-count analysis of Theorem 3.1 and
//! Figure 4 lives in [`active`].

pub mod active;
pub mod dataset;
pub mod diurnal;
pub mod popularity;
pub mod process;
pub mod request;
pub mod session;
pub mod trace;

pub use active::{active_count_series, expected_active};
pub use dataset::LengthDist;
pub use diurnal::DiurnalProcess;
pub use popularity::{head_share, zipf_weights};
pub use process::{poisson_arrivals, BurstProcess};
pub use request::{Request, RequestId, SessionId, SloSpec};
pub use session::{AgentSession, FanOutChild, ServiceEstimate, SessionBuilder, SessionTurn, SessionWorkload};
pub use trace::{Trace, TraceBuilder};
