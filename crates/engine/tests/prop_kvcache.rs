//! Property tests for the paged KV cache over slab allocation.

use proptest::prelude::*;

use aegaeon_engine::{KvCache, KvCacheConfig};
use aegaeon_model::{ModelId, Zoo};
use aegaeon_workload::RequestId;

fn cache() -> (KvCache, Vec<ModelId>) {
    let zoo = Zoo::standard();
    let mut c = KvCache::new(KvCacheConfig {
        capacity_bytes: 4 << 30,
        slab_bytes: 64 << 20,
        block_tokens: 16,
    });
    let names = ["Qwen-7B", "InternLM2.5-7B", "LLaMA-13B", "Yi-6B"];
    let ids: Vec<ModelId> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let id = ModelId(i as u32);
            c.register_model(id, zoo.get(n).expect("zoo"));
            id
        })
        .collect();
    (c, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random alloc/extend/free/take sequences keep accounting exact:
    /// bytes held equal blocks × block size, and full release restores the
    /// initial capacity for every model.
    #[test]
    fn kv_cache_accounting_is_exact(
        ops in prop::collection::vec((0usize..4, 0u64..40, 1u32..2000), 1..100)
    ) {
        let (mut c, ids) = cache();
        let baseline: Vec<u64> = ids.iter().map(|&m| c.token_capacity(m)).collect();
        let mut live: Vec<(RequestId, ModelId)> = Vec::new();
        let mut taken: Vec<(aegaeon_mem::ShapeKey, Vec<aegaeon_mem::BlockRef>)> = Vec::new();
        let mut next_req = 0u64;
        for (mi, action, tokens) in ops {
            let model = ids[mi];
            match action % 4 {
                0 => {
                    // Allocate a new request.
                    let req = RequestId(next_req);
                    next_req += 1;
                    if c.alloc(req, model, tokens).is_ok() {
                        live.push((req, model));
                        prop_assert!(c.holds(req));
                        prop_assert_eq!(c.tokens_of(req), tokens);
                    }
                }
                1 => {
                    // Extend the oldest live request.
                    if let Some(&(req, _)) = live.first() {
                        let cur = c.tokens_of(req);
                        let _ = c.extend(req, cur + tokens);
                        prop_assert!(c.tokens_of(req) >= cur);
                    }
                }
                2 => {
                    // Free the oldest live request.
                    if !live.is_empty() {
                        let (req, _) = live.remove(0);
                        c.free(req);
                        prop_assert!(!c.holds(req));
                        prop_assert_eq!(c.bytes_of(req), 0);
                    }
                }
                _ => {
                    // Take (park) then later free via free_blocks.
                    if !live.is_empty() {
                        let (req, _) = live.remove(0);
                        taken.push(c.take(req));
                    }
                }
            }
        }
        // Release everything.
        for (req, _) in live {
            c.free(req);
        }
        for (shape, blocks) in taken {
            c.free_blocks(shape, &blocks);
        }
        for (&m, &cap0) in ids.iter().zip(&baseline) {
            prop_assert_eq!(c.token_capacity(m), cap0, "capacity restored for {:?}", m);
        }
        // No residual fragmentation: all slabs returned.
        for u in c.usage() {
            prop_assert_eq!(u.used_bytes, 0);
            prop_assert_eq!(u.allocated_bytes, 0);
        }
    }

    /// `max_batch` is consistent with what can actually be allocated.
    #[test]
    fn max_batch_is_achievable(ctx in 16u32..1024) {
        let (mut c, ids) = cache();
        let m = ids[0];
        let cap = c.max_batch(m, ctx);
        prop_assert!(cap >= 1);
        // Allocate cap requests of ctx tokens; all must fit.
        for k in 0..cap {
            let r = RequestId(k as u64);
            prop_assert!(c.alloc(r, m, ctx).is_ok(), "request {k}/{cap} must fit");
        }
    }
}
