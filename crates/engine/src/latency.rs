//! Ground-truth token-generation latency.
//!
//! The simulation needs a "physics" for how long prefill and decode steps
//! take. We derive it from hardware roofline parameters — the same
//! functional form the paper's Appendix A.2 fits empirically:
//!
//! * **Prefill** is compute-bound: GEMM FLOPs scale with the token count
//!   `t`, attention FLOPs with the squared lengths `t2`.
//! * **Decode** is bandwidth-bound: every step streams the weights plus the
//!   batch's accumulated KV cache from HBM.
//! * **Tensor parallelism** divides both terms across shards and adds a
//!   per-layer collective (all-reduce) latency.
//!
//! Calls that execute jobs apply multiplicative log-normal noise; the
//! schedulers' *estimates* come from [`crate::analytical`] instead.

use aegaeon_gpu::GpuSpec;
use aegaeon_model::ModelSpec;
use aegaeon_sim::{SimDur, SimRng};

/// Per-(GPU, model) ground-truth latency model.
#[derive(Debug, Clone)]
pub struct PerfModel {
    /// Linear FLOPs per prefilled token (≈ 2·params).
    flops_per_token: f64,
    /// Quadratic attention FLOPs coefficient (≈ 4·layers·hidden).
    attn_coeff: f64,
    /// Effective FLOP/s across all TP shards.
    eff_flops_total: f64,
    /// Weight bytes resident per GPU shard.
    weight_bytes_per_gpu: f64,
    /// KV bytes per token per GPU shard.
    kv_bytes_per_token_per_gpu: f64,
    /// Effective HBM bytes/s per GPU.
    eff_bw: f64,
    /// Per-step collective overhead for TP > 1 (seconds).
    collective: f64,
    /// Fixed prefill overhead (launch, sampling), seconds.
    prefill_const: f64,
    /// Fixed decode-step overhead, seconds.
    decode_const: f64,
    /// Relative noise sigma.
    noise_sigma: f64,
}

/// Latency of an all-reduce-style collective per layer per step, seconds.
const COLLECTIVE_PER_LAYER: f64 = 25e-6;

impl PerfModel {
    /// Builds the model for `model` served on `gpu` with the spec's TP
    /// degree.
    pub fn new(gpu: &GpuSpec, model: &ModelSpec) -> PerfModel {
        let tp = model.tp.max(1) as f64;
        let collective = if model.tp > 1 {
            // Two all-reduces per layer (attention + FFN).
            2.0 * model.layers as f64 * COLLECTIVE_PER_LAYER
        } else {
            0.0
        };
        PerfModel {
            flops_per_token: 2.0 * model.params as f64,
            attn_coeff: 4.0 * model.layers as f64 * model.hidden as f64,
            eff_flops_total: gpu.effective_flops() * tp,
            weight_bytes_per_gpu: model.weight_bytes_per_gpu() as f64,
            kv_bytes_per_token_per_gpu: model.kv_bytes_per_token_per_gpu() as f64,
            eff_bw: gpu.effective_hbm_bw(),
            collective,
            // Fixed per-step engine overheads (kernel launches, sampling,
            // scheduler). Calibrated so a 7B decode step at small batch is
            // ~12 ms on an H800 — the regime in which ~6-7 concurrently
            // active models per decoding GPU can still sustain the 100 ms
            // TBT pace, which is the paper's reported pooling frontier.
            prefill_const: 20e-3,
            decode_const: 5e-3,
            noise_sigma: 0.03,
        }
    }

    /// Mean prefill time for a batch with the given input lengths.
    pub fn prefill_mean_secs(&self, lens: &[u32]) -> f64 {
        let t: f64 = lens.iter().map(|&l| l as f64).sum();
        let t2: f64 = lens.iter().map(|&l| (l as f64) * (l as f64)).sum();
        (self.flops_per_token * t + self.attn_coeff * t2) / self.eff_flops_total
            + self.collective
            + self.prefill_const
    }

    /// Mean decode-step time for `batch` requests whose context lengths sum
    /// to `ctx_total` tokens.
    pub fn decode_mean_secs(&self, batch: usize, ctx_total: u64) -> f64 {
        debug_assert!(batch > 0, "decode step needs a non-empty batch");
        (self.weight_bytes_per_gpu + ctx_total as f64 * self.kv_bytes_per_token_per_gpu)
            / self.eff_bw
            + self.collective
            + self.decode_const
    }

    /// Samples an actual prefill duration (noise applied).
    pub fn prefill_secs(&self, lens: &[u32], rng: &mut SimRng) -> SimDur {
        SimDur::from_secs_f64(self.prefill_mean_secs(lens) * rng.noise(self.noise_sigma))
    }

    /// Samples an actual decode-step duration (noise applied).
    pub fn decode_secs(&self, batch: usize, ctx_total: u64, rng: &mut SimRng) -> SimDur {
        SimDur::from_secs_f64(self.decode_mean_secs(batch, ctx_total) * rng.noise(self.noise_sigma))
    }

    /// Steady-state decode token rate at a given batch size and mean
    /// context (tokens/s across the batch); used for capacity planning.
    pub fn decode_token_rate(&self, batch: usize, mean_ctx: u64) -> f64 {
        batch as f64 / self.decode_mean_secs(batch, mean_ctx * batch as u64)
    }

    /// Disables noise (deterministic microbenchmarks).
    pub fn without_noise(mut self) -> PerfModel {
        self.noise_sigma = 0.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_model::Zoo;

    fn qwen7() -> ModelSpec {
        Zoo::standard().get("Qwen-7B").unwrap().clone()
    }

    #[test]
    fn prefill_is_subsecond_on_h800() {
        // §4.2: "the time for a prefill batch regularly falls below one
        // second on contemporary GPUs".
        let pm = PerfModel::new(&GpuSpec::h800(), &qwen7());
        let t = pm.prefill_mean_secs(&[330]);
        assert!(t > 0.005 && t < 0.2, "prefill {t}s");
        let t8k = pm.prefill_mean_secs(&[8192]);
        assert!(t8k < 1.0, "8k prefill {t8k}s");
    }

    #[test]
    fn decode_step_is_tens_of_ms() {
        // §4.3: "t is typically small (e.g., tens of milliseconds)".
        let pm = PerfModel::new(&GpuSpec::h800(), &qwen7());
        let t = pm.decode_mean_secs(8, 8 * 500);
        assert!(t > 0.004 && t < 0.05, "decode {t}s");
    }

    #[test]
    fn single_model_gpu_sustains_several_rps() {
        // §2.2: single-model serving achieves up to several requests per
        // second per GPU. At batch 32, mean output 250 tokens:
        let pm = PerfModel::new(&GpuSpec::h800(), &qwen7());
        let rate = pm.decode_token_rate(32, 600);
        let rps = rate / 250.0;
        assert!(rps > 2.0, "rps {rps}");
    }

    #[test]
    fn tp_divides_work_but_adds_collectives() {
        let zoo = Zoo::standard();
        let m72 = zoo.get("Qwen-72B").unwrap().with_tp(4);
        let pm = PerfModel::new(&GpuSpec::h800(), &m72);
        let t = pm.decode_mean_secs(4, 4 * 500);
        // 36 GB per shard over 2.5 TB/s ≈ 14 ms + 4 ms collectives.
        assert!(t > 0.01 && t < 0.04, "72B TP4 decode {t}s");
        let pm1 = PerfModel::new(&GpuSpec::h800(), zoo.get("Qwen-72B").unwrap());
        assert!(
            pm1.decode_mean_secs(4, 2000) > t,
            "TP must shorten the step"
        );
    }

    #[test]
    fn longer_context_costs_more() {
        let pm = PerfModel::new(&GpuSpec::h800(), &qwen7());
        assert!(pm.decode_mean_secs(8, 16_000) > pm.decode_mean_secs(8, 1_000));
        assert!(pm.prefill_mean_secs(&[2000]) > pm.prefill_mean_secs(&[100]));
    }

    #[test]
    fn noise_is_small_and_centered() {
        let pm = PerfModel::new(&GpuSpec::h800(), &qwen7());
        let mut rng = SimRng::seed_from_u64(1);
        let mean = pm.decode_mean_secs(4, 1000);
        let n = 2000;
        let avg: f64 = (0..n)
            .map(|_| pm.decode_secs(4, 1000, &mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((avg - mean).abs() / mean < 0.02, "avg {avg} vs {mean}");
    }

    #[test]
    fn without_noise_is_deterministic() {
        let pm = PerfModel::new(&GpuSpec::h800(), &qwen7()).without_noise();
        let mut rng = SimRng::seed_from_u64(1);
        let a = pm.decode_secs(4, 1000, &mut rng);
        let b = pm.decode_secs(4, 1000, &mut rng);
        assert_eq!(a, b);
    }
}
