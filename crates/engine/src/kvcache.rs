//! Paged KV cache over the slab-allocated unified cache.
//!
//! Both the per-GPU unified KV cache and the node-wide unified CPU cache
//! (Figure 9) are instances of [`KvCache`]: a [`aegaeon_mem::SlabPool`]
//! whose shape classes are KV-cache block shapes, plus per-request block
//! lists. Models sharing a KV shape share slab pools, which is what keeps
//! fragmentation proportional (Figure 16).

use std::collections::HashMap;

use aegaeon_mem::{BlockRef, ShapeKey, SlabPool, SlabPoolConfig};
use aegaeon_mem::slab::{ShapeUsage, SlabExhausted};
use aegaeon_model::{ModelId, ModelSpec};
use aegaeon_workload::RequestId;

/// Geometry of a KV cache region.
#[derive(Debug, Clone, Copy)]
pub struct KvCacheConfig {
    /// Total bytes of the region.
    pub capacity_bytes: u64,
    /// Slab size (the §5.2 management/fragmentation knob).
    pub slab_bytes: u64,
    /// Tokens per block (PagedAttention-style paging).
    pub block_tokens: u32,
}

impl KvCacheConfig {
    /// Production-like defaults: 256 MB slabs, 16-token blocks.
    pub fn with_capacity(capacity_bytes: u64) -> KvCacheConfig {
        KvCacheConfig {
            capacity_bytes,
            slab_bytes: 256 << 20,
            block_tokens: 16,
        }
    }
}

#[derive(Debug, Clone)]
struct ReqKv {
    shape: ShapeKey,
    blocks: Vec<BlockRef>,
    tokens: u32,
}

/// A multi-model paged KV cache.
#[derive(Debug)]
pub struct KvCache {
    pool: SlabPool,
    block_tokens: u32,
    /// Shape key per distinct block byte size.
    by_block_bytes: HashMap<u64, ShapeKey>,
    /// Registered models → (shape, bytes per token per shard).
    models: HashMap<ModelId, (ShapeKey, u64)>,
    requests: HashMap<RequestId, ReqKv>,
}

impl KvCache {
    /// Creates a cache with the given geometry.
    pub fn new(cfg: KvCacheConfig) -> KvCache {
        KvCache {
            pool: SlabPool::new(SlabPoolConfig {
                capacity_bytes: cfg.capacity_bytes,
                slab_bytes: cfg.slab_bytes,
            }),
            block_tokens: cfg.block_tokens,
            by_block_bytes: HashMap::new(),
            models: HashMap::new(),
            requests: HashMap::new(),
        }
    }

    /// Registers a model; its KV shape becomes allocatable. Models with
    /// identical per-token byte sizes share a shape class.
    pub fn register_model(&mut self, id: ModelId, spec: &ModelSpec) {
        let per_token = spec.kv_bytes_per_token_per_gpu();
        let block_bytes = per_token * self.block_tokens as u64;
        let pool = &mut self.pool;
        let key = *self.by_block_bytes.entry(block_bytes).or_insert_with(|| {
            pool.register_shape(spec.kv_shape().to_string(), block_bytes)
        });
        self.models.insert(id, (key, per_token));
    }

    fn blocks_for(&self, tokens: u32) -> usize {
        tokens.div_ceil(self.block_tokens) as usize
    }

    /// Allocates KV space for `tokens` tokens of a request.
    ///
    /// # Panics
    ///
    /// Panics if the model is unregistered or the request already has KV.
    pub fn alloc(
        &mut self,
        req: RequestId,
        model: ModelId,
        tokens: u32,
    ) -> Result<(), SlabExhausted> {
        assert!(
            !self.requests.contains_key(&req),
            "request {req:?} already holds KV"
        );
        let (shape, _) = *self.models.get(&model).expect("model registered");
        let blocks = self.pool.alloc(shape, self.blocks_for(tokens))?;
        self.requests.insert(
            req,
            ReqKv {
                shape,
                blocks,
                tokens,
            },
        );
        Ok(())
    }

    /// Grows a request's KV to `new_tokens` total, allocating blocks as
    /// needed. Returns the number of fresh blocks.
    ///
    /// # Panics
    ///
    /// Panics if the request holds no KV or shrinks.
    pub fn extend(&mut self, req: RequestId, new_tokens: u32) -> Result<usize, SlabExhausted> {
        let r = self.requests.get(&req).expect("request holds KV");
        assert!(new_tokens >= r.tokens, "KV cannot shrink");
        let need = self.blocks_for(new_tokens);
        let have = r.blocks.len();
        let grow = need.saturating_sub(have);
        if grow > 0 {
            let shape = r.shape;
            let fresh = self.pool.alloc(shape, grow)?;
            let r = self.requests.get_mut(&req).expect("still present");
            r.blocks.extend(fresh);
            r.tokens = new_tokens;
        } else {
            self.requests.get_mut(&req).expect("still present").tokens = new_tokens;
        }
        Ok(grow)
    }

    /// Frees a request's KV back to the pool immediately.
    ///
    /// # Panics
    ///
    /// Panics if the request holds no KV.
    pub fn free(&mut self, req: RequestId) {
        let r = self.requests.remove(&req).expect("request holds KV");
        self.pool.free(r.shape, &r.blocks);
    }

    /// Re-labels a request's KV under a new key without touching the pool
    /// (no bytes move; ownership transfers). Used to retain a finished
    /// turn's KV under its session's reserved handle for prefix reuse.
    ///
    /// # Panics
    ///
    /// Panics if `old` holds no KV or `new` already does.
    pub fn rekey(&mut self, old: RequestId, new: RequestId) {
        assert!(
            !self.requests.contains_key(&new),
            "rekey target {new:?} already holds KV"
        );
        let r = self.requests.remove(&old).expect("rekey source holds KV");
        self.requests.insert(new, r);
    }

    /// Merges `src`'s blocks into `dst` (both must hold KV of the same
    /// shape): `dst` ends up owning both block lists and the summed token
    /// count; `src` disappears. Used when a turn's fresh-delta KV joins the
    /// session's cached prefix into one per-request entry.
    ///
    /// # Panics
    ///
    /// Panics if either request holds no KV or the shapes differ.
    pub fn absorb(&mut self, dst: RequestId, src: RequestId) {
        let s = self.requests.remove(&src).expect("absorb source holds KV");
        let d = self.requests.get_mut(&dst).expect("absorb target holds KV");
        assert_eq!(d.shape, s.shape, "absorb across KV shapes");
        d.blocks.extend(s.blocks);
        d.tokens += s.tokens;
    }

    /// Removes a request's KV *without* freeing the blocks — the caller
    /// parks them in a move list (§5.3 rule ❸) and frees them later via
    /// [`Self::free_blocks`].
    pub fn take(&mut self, req: RequestId) -> (ShapeKey, Vec<BlockRef>) {
        let r = self.requests.remove(&req).expect("request holds KV");
        (r.shape, r.blocks)
    }

    /// Frees blocks previously returned by [`Self::take`].
    pub fn free_blocks(&mut self, shape: ShapeKey, blocks: &[BlockRef]) {
        self.pool.free(shape, blocks);
    }

    /// KV bytes a request currently occupies.
    pub fn bytes_of(&self, req: RequestId) -> u64 {
        self.requests
            .get(&req)
            .map(|r| r.blocks.len() as u64 * self.pool.block_bytes(r.shape))
            .unwrap_or(0)
    }

    /// True if the request holds KV here.
    pub fn holds(&self, req: RequestId) -> bool {
        self.requests.contains_key(&req)
    }

    /// Tokens currently stored for a request (0 if absent).
    pub fn tokens_of(&self, req: RequestId) -> u32 {
        self.requests.get(&req).map(|r| r.tokens).unwrap_or(0)
    }

    /// Every key currently holding KV, in unspecified order (audit use;
    /// callers wanting determinism must sort).
    pub fn request_ids(&self) -> impl Iterator<Item = RequestId> + '_ {
        self.requests.keys().copied()
    }

    /// Tokens' worth of KV still allocatable for `model` right now.
    pub fn token_capacity(&self, model: ModelId) -> u64 {
        let (shape, _) = *self.models.get(&model).expect("model registered");
        self.pool.available_blocks(shape) as u64 * self.block_tokens as u64
    }

    /// Maximum decode batch size for `model` given per-request context
    /// `ctx_tokens` (the Algorithm 2 line-2 derivation).
    pub fn max_batch(&self, model: ModelId, ctx_tokens: u32) -> usize {
        let per_req = self.blocks_for(ctx_tokens).max(1);
        let (shape, _) = *self.models.get(&model).expect("model registered");
        // Include blocks already used here: capacity is a static property.
        let total = self.pool.available_blocks(shape) + self.pool.used_blocks(shape) as usize;
        total / per_req
    }

    /// Per-shape usage snapshot (feeds [`aegaeon_mem::FragSampler`]).
    pub fn usage(&self) -> Vec<ShapeUsage> {
        self.pool.usage()
    }

    /// Bytes of KV currently in use across every shape; allocation-free,
    /// for per-interval telemetry gauges.
    pub fn used_bytes(&self) -> u64 {
        self.pool.total_used_bytes()
    }

    /// Slabs currently assigned to any shape in the backing pool.
    pub fn slabs_in_use(&self) -> usize {
        self.pool.slabs_in_use()
    }

    /// Bytes per token per shard for a registered model.
    pub fn bytes_per_token(&self, model: ModelId) -> u64 {
        self.models.get(&model).expect("model registered").1
    }

    /// Checks the cache's bookkeeping against the underlying slab pool;
    /// returns the first inconsistency, or `None` when the books balance.
    ///
    /// Beyond the pool's own [`SlabPool::audit`], verifies that per-request
    /// block holdings are duplicate-free and — together with any blocks the
    /// caller has [`Self::take`]n out into move lists (`parked` per shape) —
    /// sum to the pool's used-block counts.
    pub fn audit(&self, parked: &HashMap<ShapeKey, u64>) -> Option<String> {
        if let Some(err) = self.pool.audit() {
            return Some(err);
        }
        let mut held: HashMap<ShapeKey, u64> = HashMap::new();
        let mut seen: std::collections::HashSet<BlockRef> = std::collections::HashSet::new();
        for (req, r) in &self.requests {
            for b in &r.blocks {
                if !seen.insert(*b) {
                    return Some(format!("block {b:?} held by two requests (one: {req:?})"));
                }
            }
            *held.entry(r.shape).or_insert(0) += r.blocks.len() as u64;
        }
        for (&shape, &n) in parked {
            *held.entry(shape).or_insert(0) += n;
        }
        for (&shape, &n) in &held {
            let used = self.pool.used_blocks(shape);
            if n != used {
                return Some(format!(
                    "shape {shape:?}: requests+parked hold {n} blocks but pool says {used} used"
                ));
            }
        }
        // Shapes with pool usage but no holder at all.
        for &shape in self.by_block_bytes.values() {
            if !held.contains_key(&shape) && self.pool.used_blocks(shape) != 0 {
                return Some(format!(
                    "shape {shape:?}: pool reports {} used blocks but nothing holds them",
                    self.pool.used_blocks(shape)
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_model::Zoo;

    fn cache_with(models: &[(&str, u32)]) -> (KvCache, Vec<ModelId>) {
        let zoo = Zoo::standard();
        let mut c = KvCache::new(KvCacheConfig {
            capacity_bytes: 8 << 30,
            slab_bytes: 256 << 20,
            block_tokens: 16,
        });
        let mut ids = Vec::new();
        for (i, (name, tp)) in models.iter().enumerate() {
            let spec = zoo.get(name).unwrap().with_tp(*tp);
            let id = ModelId(i as u32);
            c.register_model(id, &spec);
            ids.push(id);
        }
        (c, ids)
    }

    #[test]
    fn alloc_rounds_to_blocks() {
        let (mut c, ids) = cache_with(&[("Qwen-7B", 1)]);
        c.alloc(RequestId(1), ids[0], 33).unwrap();
        // 33 tokens → 3 blocks × 16 tokens × 512 KB.
        assert_eq!(c.bytes_of(RequestId(1)), 3 * 16 * 512 * 1024);
        assert_eq!(c.tokens_of(RequestId(1)), 33);
    }

    #[test]
    fn extend_allocates_only_on_block_boundaries() {
        let (mut c, ids) = cache_with(&[("Qwen-7B", 1)]);
        c.alloc(RequestId(1), ids[0], 16).unwrap();
        assert_eq!(c.extend(RequestId(1), 17).unwrap(), 1);
        for t in 18..=32 {
            assert_eq!(c.extend(RequestId(1), t).unwrap(), 0);
        }
        assert_eq!(c.extend(RequestId(1), 33).unwrap(), 1);
    }

    #[test]
    fn models_with_same_shape_share_pools() {
        // Qwen-7B and Llama-2-7B share (32, 2, 32, 128).
        let (mut c, ids) = cache_with(&[("Qwen-7B", 1), ("Llama-2-7B", 1)]);
        c.alloc(RequestId(1), ids[0], 1600).unwrap();
        let usage = c.usage();
        assert_eq!(usage.len(), 1, "one shared shape class");
        c.alloc(RequestId(2), ids[1], 1600).unwrap();
        assert_eq!(c.usage().len(), 1);
    }

    #[test]
    fn take_then_free_blocks_round_trips() {
        let (mut c, ids) = cache_with(&[("LLaMA-13B", 1)]);
        c.alloc(RequestId(1), ids[0], 160).unwrap();
        let before = c.token_capacity(ids[0]);
        let (shape, blocks) = c.take(RequestId(1));
        assert!(!c.holds(RequestId(1)));
        // Capacity unchanged while blocks are parked.
        assert_eq!(c.token_capacity(ids[0]), before);
        c.free_blocks(shape, &blocks);
        assert!(c.token_capacity(ids[0]) > before);
    }

    #[test]
    fn max_batch_derives_from_capacity() {
        let (c, ids) = cache_with(&[("Qwen-7B", 1)]);
        // 8 GiB at 512 KB/token = 16384 tokens; ctx 512 → 32 requests.
        let mb = c.max_batch(ids[0], 512);
        assert_eq!(mb, 32);
    }

    #[test]
    fn exhaustion_is_reported() {
        let (mut c, ids) = cache_with(&[("Qwen-72B", 1)]);
        // 2560 KB/token: 8 GiB ≈ 3276 tokens.
        let err = c.alloc(RequestId(1), ids[0], 10_000).unwrap_err();
        assert!(err.requested > err.available);
        assert!(!c.holds(RequestId(1)));
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn double_alloc_panics() {
        let (mut c, ids) = cache_with(&[("Qwen-7B", 1)]);
        c.alloc(RequestId(1), ids[0], 16).unwrap();
        let _ = c.alloc(RequestId(1), ids[0], 16);
    }

    #[test]
    fn rekey_transfers_ownership_without_pool_traffic() {
        let (mut c, ids) = cache_with(&[("Qwen-7B", 1)]);
        c.alloc(RequestId(1), ids[0], 160).unwrap();
        let bytes = c.bytes_of(RequestId(1));
        let cap = c.token_capacity(ids[0]);
        let handle = RequestId(1 << 63 | 7);
        c.rekey(RequestId(1), handle);
        assert!(!c.holds(RequestId(1)));
        assert!(c.holds(handle));
        assert_eq!(c.bytes_of(handle), bytes);
        assert_eq!(c.tokens_of(handle), 160);
        assert_eq!(c.token_capacity(ids[0]), cap);
        assert!(c.audit(&HashMap::new()).is_none());
        c.free(handle);
    }

    #[test]
    fn absorb_merges_blocks_and_tokens() {
        let (mut c, ids) = cache_with(&[("Qwen-7B", 1)]);
        c.alloc(RequestId(1), ids[0], 33).unwrap(); // 3 blocks
        c.alloc(RequestId(2), ids[0], 10).unwrap(); // 1 block
        let total = c.bytes_of(RequestId(1)) + c.bytes_of(RequestId(2));
        c.absorb(RequestId(1), RequestId(2));
        assert!(!c.holds(RequestId(2)));
        assert_eq!(c.tokens_of(RequestId(1)), 43);
        assert_eq!(c.bytes_of(RequestId(1)), total);
        assert!(c.audit(&HashMap::new()).is_none());
        // Growth still works from the merged entry.
        c.extend(RequestId(1), 100).unwrap();
        assert!(c.audit(&HashMap::new()).is_none());
        c.free(RequestId(1));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "rekey target")]
    fn rekey_onto_held_key_panics() {
        let (mut c, ids) = cache_with(&[("Qwen-7B", 1)]);
        c.alloc(RequestId(1), ids[0], 16).unwrap();
        c.alloc(RequestId(2), ids[0], 16).unwrap();
        c.rekey(RequestId(1), RequestId(2));
    }
}
