//! Engine (re)initialization stages and the auto-scaling optimization flags.
//!
//! Figure 7 decomposes preemptive auto-scaling into stages: after the last
//! inference step the old instance saves its KV cache (`KVout`), VRAM is
//! garbage-collected, the engine is reinitialized (distributed executor,
//! model weights, profiling, KV-cache pinning, misc), and the new jobs' KV
//! cache is brought back (`KVin`). §5's optimizations remove or shrink
//! stages:
//!
//! * **T0** — everything, ≈ 26.9 s of initialization for a 13B model plus
//!   GC and KV transfers;
//! * **T1** — component reuse (§5.1) drops executor init, profiling,
//!   KV pinning and misc: only the (naive) model load remains;
//! * **T2** — explicit memory management (§5.2) eliminates GC (bump-pointer
//!   reset) and loads weights through pinned stage buffers at near-PCIe
//!   speed, optionally promoting a prefetched model with a cheap on-device
//!   copy;
//! * **T3** — fine-grained KV synchronization (§5.3) overlaps the KV
//!   stages; that part is orchestrated by the serving system, not the plan.

use aegaeon_sim::SimDur;

/// A stage of the preemptive auto-scaling sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// Offloading the old model's KV cache (sized at runtime).
    KvSwapOut,
    /// VRAM garbage collection (`gc.collect()` + `empty_cache()`).
    GarbageCollect,
    /// Distributed executor (Ray/NCCL) initialization.
    DistExecInit,
    /// Fetching weights from the remote registry into host DRAM.
    RemoteFetch,
    /// Loading model weights onto the GPU.
    ModelLoad,
    /// Profiling and optimization passes.
    ProfileOpt,
    /// KV-cache allocation / host-memory pinning.
    KvInit,
    /// Tokenizer, scheduler, logging, … .
    MiscInit,
    /// Swapping the new jobs' KV cache back in (sized at runtime).
    KvSwapIn,
}

impl StageKind {
    /// Display label used by the Figure 7 harness.
    pub fn label(&self) -> &'static str {
        match self {
            StageKind::KvSwapOut => "KVout",
            StageKind::GarbageCollect => "gc",
            StageKind::DistExecInit => "DistExec init",
            StageKind::RemoteFetch => "Remote fetch",
            StageKind::ModelLoad => "Model in",
            StageKind::ProfileOpt => "Profile",
            StageKind::KvInit => "KV init",
            StageKind::MiscInit => "Misc",
            StageKind::KvSwapIn => "KVin",
        }
    }
}

/// Fixed component-initialization costs (Figure 7's breakdown).
#[derive(Debug, Clone, Copy)]
pub struct InitCosts {
    /// Distributed executor startup ("tens of seconds" territory).
    pub dist_exec: SimDur,
    /// Profiling and optimization ("several seconds").
    pub profile: SimDur,
    /// Pinning host memory for the KV cache ("several seconds").
    pub kv_pin: SimDur,
    /// Other components (scheduler, tokenizer, logging).
    pub misc: SimDur,
    /// VRAM garbage-collection pass ("several seconds").
    pub gc: SimDur,
}

impl InitCosts {
    /// Defaults calibrated so an unoptimized 13B (TP=2) initialization
    /// totals the paper's 26.9 s (§5.1).
    pub fn paper_default() -> InitCosts {
        InitCosts {
            dist_exec: SimDur::from_millis(12_500),
            profile: SimDur::from_millis(3_500),
            kv_pin: SimDur::from_millis(4_000),
            misc: SimDur::from_millis(2_300),
            gc: SimDur::from_millis(2_500),
        }
    }
}

/// Host→device load efficiency of the unoptimized path (Figure 7: a
/// LLaMA-13B shard loads at 2.83 GB/s over a 32 GB/s PCIe 4.0 link).
pub const NAIVE_LOAD_EFFICIENCY: f64 = 2.83 / 32.0;

/// Load efficiency of the §5.2 multi-threaded, chunked, pipelined path.
pub const PIPELINED_LOAD_EFFICIENCY: f64 = 0.80;

/// Which §5 optimizations are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscaleOpts {
    /// §5.1 component reuse.
    pub component_reuse: bool,
    /// §5.2 explicit memory management (no GC, fast loading).
    pub explicit_memory: bool,
    /// §5.2 model prefetching on a separate stream.
    pub prefetch: bool,
    /// §5.3 fine-grained KV-cache synchronization.
    pub fine_sync: bool,
}

impl AutoscaleOpts {
    /// T0: no optimizations (the default vLLM-style teardown/reinit).
    pub fn t0() -> Self {
        AutoscaleOpts {
            component_reuse: false,
            explicit_memory: false,
            prefetch: false,
            fine_sync: false,
        }
    }

    /// T1: component reuse only.
    pub fn t1() -> Self {
        AutoscaleOpts {
            component_reuse: true,
            ..Self::t0()
        }
    }

    /// T2: component reuse + explicit memory management + prefetching.
    pub fn t2() -> Self {
        AutoscaleOpts {
            explicit_memory: true,
            prefetch: true,
            ..Self::t1()
        }
    }

    /// T3: everything (the full Aegaeon configuration).
    pub fn t3() -> Self {
        AutoscaleOpts {
            fine_sync: true,
            ..Self::t2()
        }
    }

    /// Display name (`"T0"`…`"T3"` or `"custom"`).
    pub fn name(&self) -> &'static str {
        if *self == Self::t0() {
            "T0"
        } else if *self == Self::t1() {
            "T1"
        } else if *self == Self::t2() {
            "T2"
        } else if *self == Self::t3() {
            "T3"
        } else {
            "custom"
        }
    }
}

/// The cost of one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleCost {
    /// A fixed duration.
    Fixed(SimDur),
    /// A host→device transfer of `bytes` achieving `efficiency` of link
    /// bandwidth (executed as a link flow; contention applies on top).
    HostLoad {
        /// Bytes to move per GPU.
        bytes: u64,
        /// Achieved fraction of nominal link bandwidth.
        efficiency: f64,
    },
    /// An on-device promotion copy of `bytes` (prefetched weights moving to
    /// the head of the self-managed buffer).
    DeviceCopy {
        /// Bytes to move.
        bytes: u64,
    },
}

/// One stage with its cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleStage {
    /// What the stage is.
    pub kind: StageKind,
    /// What it costs.
    pub cost: ScaleCost,
}

/// An ordered sequence of scale-up stages.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScalePlan {
    /// Stages in execution order.
    pub stages: Vec<ScaleStage>,
}

impl ScalePlan {
    /// Estimated duration assuming exclusive use of a `pcie_bw` link and a
    /// `dev_copy_bw` on-device copy engine.
    pub fn estimate_secs(&self, pcie_bw: f64, dev_copy_bw: f64) -> f64 {
        self.stages
            .iter()
            .map(|s| match s.cost {
                ScaleCost::Fixed(d) => d.as_secs_f64(),
                ScaleCost::HostLoad { bytes, efficiency } => {
                    bytes as f64 / (pcie_bw * efficiency)
                }
                ScaleCost::DeviceCopy { bytes } => bytes as f64 / dev_copy_bw,
            })
            .sum()
    }
}

/// Builds the scale-up plan for loading a model whose per-GPU weight shard
/// is `bytes_per_gpu`.
///
/// * `prefetched` — the weights already sit in the VRAM prefetch region;
/// * `dram_cached` — the checkpoint is resident in the host Model Cache
///   (otherwise a remote-registry fetch at `remote_bw` precedes the load).
pub fn scale_up_plan(
    opts: &AutoscaleOpts,
    costs: &InitCosts,
    bytes_per_gpu: u64,
    prefetched: bool,
    dram_cached: bool,
    remote_bw: f64,
) -> ScalePlan {
    let mut stages = Vec::new();
    if !opts.explicit_memory {
        stages.push(ScaleStage {
            kind: StageKind::GarbageCollect,
            cost: ScaleCost::Fixed(costs.gc),
        });
    }
    if !opts.component_reuse {
        stages.push(ScaleStage {
            kind: StageKind::DistExecInit,
            cost: ScaleCost::Fixed(costs.dist_exec),
        });
    }
    if !dram_cached {
        stages.push(ScaleStage {
            kind: StageKind::RemoteFetch,
            cost: ScaleCost::Fixed(SimDur::from_secs_f64(bytes_per_gpu as f64 / remote_bw)),
        });
    }
    if prefetched && opts.explicit_memory {
        stages.push(ScaleStage {
            kind: StageKind::ModelLoad,
            cost: ScaleCost::DeviceCopy { bytes: bytes_per_gpu },
        });
    } else {
        stages.push(ScaleStage {
            kind: StageKind::ModelLoad,
            cost: ScaleCost::HostLoad {
                bytes: bytes_per_gpu,
                efficiency: if opts.explicit_memory {
                    PIPELINED_LOAD_EFFICIENCY
                } else {
                    NAIVE_LOAD_EFFICIENCY
                },
            },
        });
    }
    if !opts.component_reuse {
        stages.push(ScaleStage {
            kind: StageKind::ProfileOpt,
            cost: ScaleCost::Fixed(costs.profile),
        });
        stages.push(ScaleStage {
            kind: StageKind::KvInit,
            cost: ScaleCost::Fixed(costs.kv_pin),
        });
        stages.push(ScaleStage {
            kind: StageKind::MiscInit,
            cost: ScaleCost::Fixed(costs.misc),
        });
    }
    ScalePlan { stages }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB13_TP2: u64 = 13_000_000_000; // one TP=2 shard of a 13B model

    fn est(opts: AutoscaleOpts, prefetched: bool) -> f64 {
        let plan = scale_up_plan(
            &opts,
            &InitCosts::paper_default(),
            GB13_TP2,
            prefetched,
            true,
            5e9,
        );
        plan.estimate_secs(32e9, 1.6e12)
    }

    #[test]
    fn t0_matches_paper_26_9s() {
        // §5.1: "an unoptimized initialization process can take up to 26.9
        // seconds for a 13B model" (plus the GC pass on scale-down).
        let t = est(AutoscaleOpts::t0(), false);
        assert!((t - (26.9 + 2.5)).abs() < 0.6, "T0 = {t}s");
    }

    #[test]
    fn t1_removes_over_80_percent() {
        // §5.1: component reuse removes over 80% of the auto-scaling latency.
        let t0 = est(AutoscaleOpts::t0(), false);
        let t1 = est(AutoscaleOpts::t1(), false);
        assert!(t1 < t0 * 0.3, "T1 = {t1}, T0 = {t0}");
        // What remains is GC + the naive load.
        assert!((t1 - (2.5 + 4.59)).abs() < 0.2, "T1 = {t1}");
    }

    #[test]
    fn t2_loads_in_under_a_second() {
        // §5.2: loading times "under one second" when cached in host memory.
        let t2 = est(AutoscaleOpts::t2(), false);
        assert!(t2 < 1.0, "T2 = {t2}");
        // Prefetched: near-instant (on-device promotion copy).
        let t2p = est(AutoscaleOpts::t2(), true);
        assert!(t2p < 0.05, "T2+prefetch = {t2p}");
    }

    #[test]
    fn uncached_model_pays_remote_fetch() {
        let plan = scale_up_plan(
            &AutoscaleOpts::t3(),
            &InitCosts::paper_default(),
            GB13_TP2,
            false,
            false,
            5e9,
        );
        assert!(plan
            .stages
            .iter()
            .any(|s| s.kind == StageKind::RemoteFetch));
        let t = plan.estimate_secs(32e9, 1.6e12);
        assert!(t > 2.5, "remote fetch dominates: {t}");
    }

    #[test]
    fn preset_names() {
        assert_eq!(AutoscaleOpts::t0().name(), "T0");
        assert_eq!(AutoscaleOpts::t3().name(), "T3");
        let custom = AutoscaleOpts {
            prefetch: false,
            ..AutoscaleOpts::t2()
        };
        assert_eq!(custom.name(), "custom");
    }

    #[test]
    fn prefetch_without_explicit_memory_falls_back_to_host_load() {
        // Prefetching requires the self-managed buffer; without it the plan
        // must not emit a device copy.
        let opts = AutoscaleOpts {
            component_reuse: true,
            explicit_memory: false,
            prefetch: true,
            fine_sync: false,
        };
        let plan = scale_up_plan(&opts, &InitCosts::paper_default(), GB13_TP2, true, true, 5e9);
        assert!(plan
            .stages
            .iter()
            .all(|s| !matches!(s.cost, ScaleCost::DeviceCopy { .. })));
    }
}
