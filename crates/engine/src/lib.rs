//! Simulated LLM inference engine.
//!
//! Provides the three ingredients the serving systems consume:
//!
//! * [`latency`] — the ground-truth step-time model: roofline-derived
//!   (compute-bound prefill, bandwidth-bound decode, TP collective
//!   overhead) with multiplicative noise. This is what the simulation
//!   charges for each token-generation job.
//! * [`analytical`] — the Appendix A.2 *estimator*: Equations (5)/(6)
//!   fitted to profiled samples by linear least squares, plus the Eq. (4)
//!   switch-time estimate. Schedulers use the estimator, never the ground
//!   truth, so estimation error is part of the reproduction. The fit's R²
//!   is reported like the paper's (> 0.9).
//! * [`init`] — the engine (re)initialization stage machine of Figure 7,
//!   with the §5.1/§5.2 optimization flags that remove or shrink stages
//!   (component reuse, explicit memory management, prefetching).
//! * [`kvcache`] — a paged KV cache over the slab-allocated unified cache,
//!   tracking per-request block lists on GPU or in host DRAM.

pub mod analytical;
pub mod init;
pub mod kvcache;
pub mod latency;

pub use analytical::{fit_model, FittedModel};
pub use init::{scale_up_plan, AutoscaleOpts, InitCosts, ScaleCost, ScalePlan, ScaleStage, StageKind};
pub use kvcache::{KvCache, KvCacheConfig};
pub use latency::PerfModel;
