//! The Appendix A.2 analytical latency estimator.
//!
//! The paper predicts token-generation latency with
//!
//! ```text
//! T_prefill = C1·(4·t·h² + 2·t·h·m) + C2·(3·h·t2 / b) + C3        (Eq. 5)
//! T_decode  = C4·(4·h² + 2·h·m) + C5·3·h·t                        (Eq. 6)
//! T_switch  = ModelSize / PCIeBandwidth · β                        (Eq. 4)
//! ```
//!
//! with constants fitted from profiled data (reported R² > 0.9). We fit the
//! same equations by linear least squares against samples drawn from the
//! noisy ground-truth [`crate::PerfModel`]; the schedulers then use the
//! *fitted* estimator, so they operate under realistic estimation error.

use aegaeon_model::ModelSpec;
use aegaeon_sim::SimRng;

use crate::latency::PerfModel;

/// FlashAttention kernel block size `b` entering Eq. 5.
const FLASH_BLOCK: f64 = 128.0;

/// A fitted instance of Equations (5) and (6) for one (GPU, model) pair.
#[derive(Debug, Clone)]
pub struct FittedModel {
    /// `[C1, C2, C3]`.
    pub prefill_c: [f64; 3],
    /// `[C4, C5]`.
    pub decode_c: [f64; 2],
    /// Coefficient of determination of the prefill fit.
    pub r2_prefill: f64,
    /// Coefficient of determination of the decode fit.
    pub r2_decode: f64,
    h: f64,
    m: f64,
}

impl FittedModel {
    /// Estimated prefill time (seconds) for a batch of input lengths.
    pub fn estimate_prefill(&self, lens: &[u32]) -> f64 {
        let t: f64 = lens.iter().map(|&l| l as f64).sum();
        let t2: f64 = lens.iter().map(|&l| (l as f64) * (l as f64)).sum();
        let x1 = 4.0 * t * self.h * self.h + 2.0 * t * self.h * self.m;
        let x2 = 3.0 * self.h * t2 / FLASH_BLOCK;
        (self.prefill_c[0] * x1 + self.prefill_c[1] * x2 + self.prefill_c[2]).max(0.0)
    }

    /// Estimated decode-step time (seconds) for a batch whose context
    /// lengths sum to `ctx_total` tokens.
    pub fn estimate_decode(&self, ctx_total: u64) -> f64 {
        let x1 = 4.0 * self.h * self.h + 2.0 * self.h * self.m;
        let x2 = 3.0 * self.h * ctx_total as f64;
        (self.decode_c[0] * x1 + self.decode_c[1] * x2).max(1e-6)
    }
}

/// Solves the least-squares system `X·c ≈ y` for small `N` via normal
/// equations and Gaussian elimination with partial pivoting.
fn lstsq<const N: usize>(xs: &[[f64; N]], ys: &[f64]) -> [f64; N] {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= N, "need at least N samples");
    // Normal equations: A = XᵀX, b = Xᵀy.
    let mut a = [[0.0f64; N]; N];
    let mut b = [0.0f64; N];
    for (x, &y) in xs.iter().zip(ys) {
        for i in 0..N {
            b[i] += x[i] * y;
            for j in 0..N {
                a[i][j] += x[i] * x[j];
            }
        }
    }
    // Gaussian elimination with partial pivoting.
    let mut idx: [usize; N] = std::array::from_fn(|i| i);
    for col in 0..N {
        let piv = (col..N)
            .max_by(|&p, &q| {
                a[idx[p]][col]
                    .abs()
                    .partial_cmp(&a[idx[q]][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        idx.swap(col, piv);
        let p = idx[col];
        let d = a[p][col];
        assert!(d.abs() > 1e-300, "singular normal matrix");
        let prow = a[p];
        for &r_i in &idx[col + 1..] {
            let f = a[r_i][col] / d;
            for (av, &pv) in a[r_i].iter_mut().zip(prow.iter()).skip(col) {
                *av -= f * pv;
            }
            b[r_i] -= f * b[p];
        }
    }
    let mut out = [0.0f64; N];
    for col in (0..N).rev() {
        let p = idx[col];
        let mut acc = b[p];
        for c in col + 1..N {
            acc -= a[p][c] * out[c];
        }
        out[col] = acc / a[p][col];
    }
    out
}

fn r_squared(pred: &[f64], actual: &[f64]) -> f64 {
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|y| (y - mean) * (y - mean)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(actual)
        .map(|(p, y)| (y - p) * (y - p))
        .sum();
    if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Profiles `perf` with synthetic sweeps and fits Equations (5)/(6).
///
/// Mirrors the offline profiling pass Aegaeon runs before serving (§5.1
/// "performs relevant profiling … beforehand").
pub fn fit_model(perf: &PerfModel, model: &ModelSpec, rng: &mut SimRng) -> FittedModel {
    let h = model.hidden as f64;
    let m = model.ffn as f64;

    // Prefill sweep: single sequences and small batches of varying length.
    let mut pxs: Vec<[f64; 3]> = Vec::new();
    let mut pys: Vec<f64> = Vec::new();
    let lens: [u32; 12] = [16, 32, 64, 128, 256, 384, 512, 768, 1024, 2048, 4096, 8192];
    // Profilers average repeated measurements per point to suppress noise.
    const REPS: usize = 10;
    for &l in &lens {
        for batch in [1usize, 2, 4] {
            let ls: Vec<u32> = vec![l; batch];
            let t: f64 = ls.iter().map(|&x| x as f64).sum();
            let t2: f64 = ls.iter().map(|&x| (x as f64) * (x as f64)).sum();
            pxs.push([
                4.0 * t * h * h + 2.0 * t * h * m,
                3.0 * h * t2 / FLASH_BLOCK,
                1.0,
            ]);
            let y = (0..REPS)
                .map(|_| perf.prefill_secs(&ls, rng).as_secs_f64())
                .sum::<f64>()
                / REPS as f64;
            pys.push(y);
        }
    }
    let prefill_c = lstsq::<3>(&pxs, &pys);

    // Decode sweep: varying batch sizes and context lengths.
    let mut dxs: Vec<[f64; 2]> = Vec::new();
    let mut dys: Vec<f64> = Vec::new();
    for batch in [1usize, 2, 4, 8, 16, 32, 64] {
        for ctx in [64u64, 256, 512, 1024, 2048] {
            let total = ctx * batch as u64;
            dxs.push([4.0 * h * h + 2.0 * h * m, 3.0 * h * total as f64]);
            let y = (0..REPS)
                .map(|_| perf.decode_secs(batch, total, rng).as_secs_f64())
                .sum::<f64>()
                / REPS as f64;
            dys.push(y);
        }
    }
    let decode_c = lstsq::<2>(&dxs, &dys);

    let fitted = FittedModel {
        prefill_c,
        decode_c,
        r2_prefill: 0.0,
        r2_decode: 0.0,
        h,
        m,
    };
    let ppred: Vec<f64> = pxs
        .iter()
        .map(|x| fitted.prefill_c[0] * x[0] + fitted.prefill_c[1] * x[1] + fitted.prefill_c[2])
        .collect();
    let dpred: Vec<f64> = dxs
        .iter()
        .map(|x| fitted.decode_c[0] * x[0] + fitted.decode_c[1] * x[1])
        .collect();
    FittedModel {
        r2_prefill: r_squared(&ppred, &pys),
        r2_decode: r_squared(&dpred, &dys),
        ..fitted
    }
}

/// Eq. 4: estimated model-switch (load) time.
///
/// The paper corrects `size/bandwidth` with a profiled constant β to account
/// for PCIe inefficiencies; with our pipelined loader the effective factor
/// is `1/efficiency`.
pub fn estimate_switch_secs(bytes_per_gpu: u64, pcie_bw: f64, beta: f64) -> f64 {
    bytes_per_gpu as f64 / pcie_bw * beta
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_gpu::GpuSpec;
    use aegaeon_model::Zoo;

    #[test]
    fn lstsq_recovers_exact_coefficients() {
        let xs: Vec<[f64; 2]> = (1..20).map(|i| [i as f64, 1.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + 7.0).collect();
        let c = lstsq::<2>(&xs, &ys);
        assert!((c[0] - 3.0).abs() < 1e-9);
        assert!((c[1] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fit_reaches_paper_r2_threshold() {
        // Appendix A.2: "this modeling achieves an R-squared score of over
        // 0.9 across all models in our evaluation".
        let zoo = Zoo::standard();
        let mut rng = SimRng::seed_from_u64(9);
        for name in ["Qwen-7B", "InternLM2.5-7B", "LLaMA-13B", "Yi-6B", "Qwen-14B"] {
            let spec = zoo.get(name).unwrap();
            let perf = PerfModel::new(&GpuSpec::h800(), spec);
            let fit = fit_model(&perf, spec, &mut rng);
            assert!(fit.r2_prefill > 0.9, "{name} prefill R² {}", fit.r2_prefill);
            assert!(fit.r2_decode > 0.9, "{name} decode R² {}", fit.r2_decode);
        }
    }

    #[test]
    fn estimates_track_ground_truth() {
        let zoo = Zoo::standard();
        let spec = zoo.get("LLaMA-13B").unwrap();
        let perf = PerfModel::new(&GpuSpec::h800(), spec).without_noise();
        let mut rng = SimRng::seed_from_u64(3);
        let fit = fit_model(&perf, spec, &mut rng);
        // Points not in the training sweep.
        let est = fit.estimate_prefill(&[700]);
        let truth = perf.prefill_mean_secs(&[700]);
        assert!((est - truth).abs() / truth < 0.25, "est {est} truth {truth}");
        let est_d = fit.estimate_decode(6 * 300);
        let truth_d = perf.decode_mean_secs(6, 6 * 300);
        assert!(
            (est_d - truth_d).abs() / truth_d < 0.25,
            "est {est_d} truth {truth_d}"
        );
    }

    #[test]
    fn switch_estimate_matches_paper_example() {
        // §4.2: 13B FP16 via PCIe 4.0 takes at least 26GB/32GBps = 0.8125 s.
        let t = estimate_switch_secs(26_000_000_000, 32e9, 1.0);
        assert!((t - 0.8125).abs() < 1e-6);
        // With the pipeline-efficiency correction (β = 1/0.8):
        let t2 = estimate_switch_secs(26_000_000_000, 32e9, 1.25);
        assert!(t2 > t && t2 < 1.1);
    }
}
