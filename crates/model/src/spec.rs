//! Model hyper-parameters and derived sizes.

use serde::{Deserialize, Serialize};

use crate::kv::KvShape;

/// Identifies a model within a serving deployment (index into the catalog).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ModelId(pub u32);

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Parameter/KV element data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 16-bit floats (FP16/BF16), the paper's default.
    F16,
    /// 8-bit quantized weights.
    Int8,
    /// 32-bit floats.
    F32,
}

impl DType {
    /// Bytes per element.
    pub const fn bytes(self) -> u64 {
        match self {
            DType::F16 => 2,
            DType::Int8 => 1,
            DType::F32 => 4,
        }
    }
}

/// Architectural description of a transformer LLM.
///
/// Only the fields that affect serving behaviour are kept: weight volume,
/// KV-cache geometry and the dimensions entering the latency model
/// (Appendix A.2, Table 1 of the appendix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable name, e.g. `"Qwen-7B"`.
    pub name: String,
    /// Total parameter count.
    pub params: u64,
    /// Number of transformer layers.
    pub layers: u32,
    /// Hidden size `h`.
    pub hidden: u32,
    /// Attention heads.
    pub heads: u32,
    /// KV heads (< `heads` for GQA/MQA models).
    pub kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// FFN intermediate size `m`.
    pub ffn: u32,
    /// Weight/KV data type.
    pub dtype: DType,
    /// Tensor-parallel degree this deployment uses.
    pub tp: u32,
}

impl ModelSpec {
    /// Total weight bytes across all TP shards.
    pub fn weight_bytes(&self) -> u64 {
        self.params * self.dtype.bytes()
    }

    /// Weight bytes resident on each GPU (TP shard).
    pub fn weight_bytes_per_gpu(&self) -> u64 {
        self.weight_bytes() / self.tp as u64
    }

    /// The KV-cache shape `(layers, 2, kv_heads, head_dim)` as listed in
    /// Table 1 of the paper (per token, whole model, before TP sharding).
    pub fn kv_shape(&self) -> KvShape {
        KvShape {
            layers: self.layers,
            kv_heads: self.kv_heads,
            head_dim: self.head_dim,
            dtype_bytes: self.dtype.bytes() as u32,
        }
    }

    /// KV-cache bytes per token (whole model).
    pub fn kv_bytes_per_token(&self) -> u64 {
        self.kv_shape().bytes_per_token()
    }

    /// KV-cache bytes per token per GPU under TP sharding.
    pub fn kv_bytes_per_token_per_gpu(&self) -> u64 {
        self.kv_bytes_per_token() / self.tp as u64
    }

    /// Rough parameter count implied by the dimensions (embedding excluded);
    /// used to sanity-check catalog entries.
    pub fn params_from_dims(&self) -> u64 {
        let h = self.hidden as u64;
        let m = self.ffn as u64;
        let kvh = self.kv_heads as u64;
        let hd = self.head_dim as u64;
        let heads = self.heads as u64;
        // Attention: Q and O are h×(heads·hd); K and V are h×(kvh·hd).
        let attn = 2 * h * heads * hd + 2 * h * kvh * hd;
        // Gated FFN (LLaMA-style): three h×m matrices.
        let ffn = 3 * h * m;
        self.layers as u64 * (attn + ffn)
    }

    /// Returns a copy with a different TP degree.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero.
    pub fn with_tp(&self, tp: u32) -> ModelSpec {
        assert!(tp > 0, "TP degree must be positive");
        ModelSpec {
            tp,
            ..self.clone()
        }
    }

    /// Parameter count in billions (for display).
    pub fn params_b(&self) -> f64 {
        self.params as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qwen7b() -> ModelSpec {
        ModelSpec {
            name: "Qwen-7B".into(),
            params: 7_720_000_000,
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 32,
            head_dim: 128,
            ffn: 11008,
            dtype: DType::F16,
            tp: 1,
        }
    }

    #[test]
    fn weight_bytes_are_params_times_dtype() {
        let m = qwen7b();
        assert_eq!(m.weight_bytes(), 7_720_000_000 * 2);
        assert_eq!(m.with_tp(2).weight_bytes_per_gpu(), 7_720_000_000);
    }

    #[test]
    fn kv_bytes_match_table1_for_qwen7b() {
        // Table 1: Qwen-7B shape (32, 2, 32, 128), 512 KB per token.
        let m = qwen7b();
        assert_eq!(m.kv_bytes_per_token(), 512 * 1024);
    }

    #[test]
    fn dims_estimate_is_in_the_right_ballpark() {
        let m = qwen7b();
        let est = m.params_from_dims();
        let ratio = est as f64 / m.params as f64;
        assert!((0.5..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "TP degree")]
    fn zero_tp_panics() {
        let _ = qwen7b().with_tp(0);
    }
}
