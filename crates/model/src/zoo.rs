//! A catalog of market models with published hyper-parameters.
//!
//! Entries cover the families the paper evaluates (§7.1: Qwen, Llama,
//! InternLM, Yi), with the exact dimensions needed to reproduce Table 1. The
//! multi-model experiments instantiate tens of *distinct* serving targets by
//! replicating catalog architectures under unique names (mirroring the
//! market reality of many fine-tunes sharing a base architecture).

use crate::spec::{DType, ModelSpec};

/// A named catalog entry.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// The architecture.
    pub spec: ModelSpec,
}

/// The model catalog.
#[derive(Debug, Clone)]
pub struct Zoo {
    entries: Vec<ZooEntry>,
}

fn m(
    name: &str,
    params_b: f64,
    layers: u32,
    hidden: u32,
    heads: u32,
    kv_heads: u32,
    ffn: u32,
) -> ZooEntry {
    ZooEntry {
        spec: ModelSpec {
            name: name.to_string(),
            params: (params_b * 1e9) as u64,
            layers,
            hidden,
            heads,
            kv_heads,
            head_dim: 128,
            ffn,
            dtype: DType::F16,
            tp: 1,
        },
    }
}

impl Zoo {
    /// The standard catalog used throughout the evaluation.
    pub fn standard() -> Zoo {
        Zoo {
            entries: vec![
                m("Qwen-1.8B", 1.84, 24, 2048, 16, 16, 5504),
                m("Yi-6B", 6.06, 32, 4096, 32, 4, 11008),
                m("Llama-2-7B", 6.74, 32, 4096, 32, 32, 11008),
                m("Qwen-7B", 7.72, 32, 4096, 32, 32, 11008),
                m("InternLM2.5-7B", 7.74, 32, 4096, 32, 8, 14336),
                m("Yi-9B", 8.83, 48, 4096, 32, 4, 11008),
                m("LLaMA-13B", 13.02, 40, 5120, 40, 40, 13824),
                m("Qwen-14B", 14.17, 40, 5120, 40, 40, 13696),
                m("Yi-34B", 34.39, 60, 7168, 56, 8, 20480),
                m("Qwen-72B", 72.71, 80, 8192, 64, 64, 24576),
            ],
        }
    }

    /// All entries.
    pub fn entries(&self) -> &[ZooEntry] {
        &self.entries
    }

    /// Looks an architecture up by name.
    pub fn get(&self, name: &str) -> Option<&ModelSpec> {
        self.entries
            .iter()
            .find(|e| e.spec.name == name)
            .map(|e| &e.spec)
    }

    /// The "majority of models on the market" band the paper focuses on
    /// (§7.1: 6B–14B parameters).
    pub fn market_band(&self) -> Vec<&ModelSpec> {
        self.entries
            .iter()
            .map(|e| &e.spec)
            .filter(|s| (6e9..15e9).contains(&(s.params as f64)))
            .collect()
    }

    /// Builds `n` distinct serving targets by cycling through the given base
    /// architectures, renaming each instance uniquely (`"Qwen-7B/v3"`).
    ///
    /// # Panics
    ///
    /// Panics if `bases` is empty.
    pub fn replicate(bases: &[&ModelSpec], n: usize) -> Vec<ModelSpec> {
        assert!(!bases.is_empty(), "need at least one base architecture");
        (0..n)
            .map(|i| {
                let base = bases[i % bases.len()];
                let mut s = base.clone();
                s.name = format!("{}/v{}", base.name, i / bases.len());
                s
            })
            .collect()
    }

    /// The table-1 subset, in paper order, for the Table 1 regeneration.
    pub fn table1(&self) -> Vec<&ModelSpec> {
        ["Qwen-7B", "InternLM2.5-7B", "LLaMA-13B", "Qwen-72B"]
            .iter()
            .map(|n| self.get(n).expect("table-1 model missing from zoo"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_reproduce_exactly() {
        // (model name, KV shape tuple, KiB per token) — Table 1 rows.
        type Row = (&'static str, (u32, u32, u32, u32), u64);
        let zoo = Zoo::standard();
        let expected: [Row; 4] = [
            ("Qwen-7B", (32, 2, 32, 128), 512),
            ("InternLM2.5-7B", (32, 2, 8, 128), 128),
            ("LLaMA-13B", (40, 2, 40, 128), 800),
            ("Qwen-72B", (80, 2, 64, 128), 2560),
        ];
        for (name, shape, kb) in expected {
            let s = zoo.get(name).unwrap();
            assert_eq!(s.kv_shape().as_tuple(), shape, "{name}");
            assert_eq!(s.kv_bytes_per_token(), kb * 1024, "{name}");
        }
    }

    #[test]
    fn market_band_is_6_to_14b() {
        let zoo = Zoo::standard();
        let band = zoo.market_band();
        assert!(band.len() >= 5);
        for s in band {
            assert!(s.params >= 6_000_000_000 && s.params < 15_000_000_000, "{}", s.name);
        }
    }

    #[test]
    fn replicate_gives_unique_names_and_same_arch() {
        let zoo = Zoo::standard();
        let band = zoo.market_band();
        let many = Zoo::replicate(&band, 40);
        assert_eq!(many.len(), 40);
        let mut names: Vec<&str> = many.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 40, "names must be unique");
        assert_eq!(many[0].layers, band[0].layers);
    }

    #[test]
    fn params_roughly_match_dimensions() {
        for e in Zoo::standard().entries() {
            let est = e.spec.params_from_dims() as f64;
            let ratio = est / e.spec.params as f64;
            assert!(
                (0.45..1.25).contains(&ratio),
                "{}: dims imply {est:.2e}, catalog says {:.2e}",
                e.spec.name,
                e.spec.params as f64
            );
        }
    }

    #[test]
    fn weights_average_matches_paper_order_of_magnitude() {
        // §2.3: "model parameters in our workloads average 25.1 GB". Our zoo
        // spans 3.7–145 GB; the 6–14B band the e2e experiments use averages
        // 12–28 GB, same order.
        let zoo = Zoo::standard();
        for s in zoo.market_band() {
            let gb = s.weight_bytes() as f64 / 1e9;
            assert!((12.0..29.0).contains(&gb), "{}: {gb} GB", s.name);
        }
    }
}
