//! KV-cache geometry.
//!
//! The per-token KV cache of a transformer has shape
//! `(layers, 2, kv_heads, head_dim)` — the "2" covering keys and values —
//! and its byte size varies more than 20× across market models (Table 1).
//! The §5.2 unified KV cache keys its slab pools by this shape, so the shape
//! is a first-class, hashable type here.

use serde::{Deserialize, Serialize};

/// The per-token KV-cache shape of a model (whole model, before TP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KvShape {
    /// Transformer layers.
    pub layers: u32,
    /// KV heads.
    pub kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// Bytes per element (2 for FP16).
    pub dtype_bytes: u32,
}

impl KvShape {
    /// Bytes of KV cache per token: `layers · 2 · kv_heads · head_dim · dtype`.
    pub fn bytes_per_token(&self) -> u64 {
        self.layers as u64 * 2 * self.kv_heads as u64 * self.head_dim as u64 * self.dtype_bytes as u64
    }

    /// Bytes per token for one TP shard (`kv_heads` divided across GPUs).
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero.
    pub fn bytes_per_token_per_shard(&self, tp: u32) -> u64 {
        assert!(tp > 0, "TP degree must be positive");
        self.bytes_per_token() / tp as u64
    }

    /// Tuple rendering `(layers, 2, kv_heads, head_dim)` as printed in Table 1.
    pub fn as_tuple(&self) -> (u32, u32, u32, u32) {
        (self.layers, 2, self.kv_heads, self.head_dim)
    }
}

impl std::fmt::Display for KvShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, 2, {}, {})", self.layers, self.kv_heads, self.head_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes() {
        // The four rows of Table 1 of the paper, 16-bit precision.
        let rows = [
            // (shape, expected KB per token)
            (KvShape { layers: 32, kv_heads: 32, head_dim: 128, dtype_bytes: 2 }, 512),
            (KvShape { layers: 32, kv_heads: 8, head_dim: 128, dtype_bytes: 2 }, 128),
            (KvShape { layers: 40, kv_heads: 40, head_dim: 128, dtype_bytes: 2 }, 800),
            (KvShape { layers: 80, kv_heads: 64, head_dim: 128, dtype_bytes: 2 }, 2560),
        ];
        for (shape, kb) in rows {
            assert_eq!(shape.bytes_per_token(), kb * 1024, "shape {shape}");
        }
    }

    #[test]
    fn shard_division() {
        let s = KvShape {
            layers: 80,
            kv_heads: 64,
            head_dim: 128,
            dtype_bytes: 2,
        };
        assert_eq!(s.bytes_per_token_per_shard(4), s.bytes_per_token() / 4);
    }

    #[test]
    fn display_matches_table_format() {
        let s = KvShape {
            layers: 32,
            kv_heads: 8,
            head_dim: 128,
            dtype_bytes: 2,
        };
        assert_eq!(s.to_string(), "(32, 2, 8, 128)");
        assert_eq!(s.as_tuple(), (32, 2, 8, 128));
    }
}
