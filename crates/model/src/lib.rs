//! LLM model descriptions for the Aegaeon reproduction.
//!
//! This crate is the single source of truth for model hyper-parameters,
//! weight sizes and KV-cache geometry. The KV-cache shape and per-token size
//! computations reproduce Table 1 of the paper exactly (asserted by tests),
//! because the §5.2 unified KV cache design — slab allocation keyed by cache
//! *shape* — depends on those shapes differing across models.

pub mod kv;
pub mod spec;
pub mod zoo;

pub use kv::KvShape;
pub use spec::{DType, ModelId, ModelSpec};
pub use zoo::{Zoo, ZooEntry};
