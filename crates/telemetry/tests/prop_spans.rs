//! Property test: any span log produced through the public API with a
//! monotone clock — arbitrary interleavings of opening children, closing
//! spans, and instants, with end-of-run truncation — is structurally
//! well-formed per [`SpanLog::validate`]: child intervals nest inside their
//! parents, nothing stays open past end-of-run, and record order is
//! time-monotone.

use proptest::prelude::*;

use aegaeon_sim::SimTime;
use aegaeon_telemetry::{SpanId, SpanKind, SpanLog};

/// One scripted operation: `(kind % 4, pick, dt)`.
/// 0 → open a root span; 1 → open a child of a randomly picked open span;
/// 2 → close a randomly picked open span; 3 → record an instant.
/// Every op first advances the clock by `dt` ns.
type Op = (u32, u32, u64);

const KINDS: [SpanKind; 5] = [
    SpanKind::Request,
    SpanKind::QueueWait,
    SpanKind::Prefill,
    SpanKind::DecodeRound,
    SpanKind::KvTransfer,
];

fn run_script(ops: &[Op]) -> SpanLog {
    let mut log = SpanLog::enabled();
    let mut now = SimTime::ZERO;
    // Open spans, deepest last; children may only close before their
    // parents (the instrumented systems guarantee this by construction:
    // phase spans are force-closed before their request root).
    let mut open: Vec<SpanId> = Vec::new();
    for (i, &(kind, pick, dt)) in ops.iter().enumerate() {
        now += aegaeon_sim::SimDur::from_nanos(dt % 1_000_000);
        let span_kind = KINDS[i % KINDS.len()];
        match kind % 4 {
            0 => {
                let id = log.start(
                    || format!("track{}", pick % 4),
                    span_kind,
                    now,
                    SpanId::NONE,
                    SpanId::NONE,
                    || format!("s{i}"),
                );
                open.push(id);
            }
            1 => {
                let parent = if open.is_empty() {
                    SpanId::NONE
                } else {
                    open[pick as usize % open.len()]
                };
                let id = log.start(
                    || format!("track{}", pick % 4),
                    span_kind,
                    now,
                    parent,
                    SpanId::NONE,
                    || format!("s{i}"),
                );
                open.push(id);
            }
            2 => {
                if !open.is_empty() {
                    // Close the most recent open span: mirrors the LIFO
                    // discipline of the real begin/end phase helpers, and
                    // keeps children from outliving their parents.
                    let id = open.pop().unwrap();
                    log.end(id, now);
                }
            }
            _ => {
                log.instant(
                    || "decisions",
                    SpanKind::Decision,
                    now,
                    SpanId::NONE,
                    || format!("d{i}"),
                );
            }
        }
    }
    // End-of-run: close everything still open, children first.
    while let Some(id) = open.pop() {
        log.end(id, now);
    }
    log.close_open(now);
    log
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary API-driven scripts always validate.
    #[test]
    fn api_driven_logs_are_well_formed(
        ops in prop::collection::vec((0u32..4, 0u32..16, 0u64..1_000_000), 1..200)
    ) {
        let log = run_script(&ops);
        prop_assert!(log.validate().is_none(), "{:?}", log.validate());
    }

    /// Truncation alone (no explicit closes) also yields a valid log: no
    /// span is left open and every child still nests in its parent.
    #[test]
    fn close_open_always_repairs_open_trees(
        ops in prop::collection::vec((0u32..2, 0u32..16, 0u64..1_000_000), 1..100)
    ) {
        let mut log = SpanLog::enabled();
        let mut now = SimTime::ZERO;
        let mut last = SpanId::NONE;
        for (i, &(kind, pick, dt)) in ops.iter().enumerate() {
            now += aegaeon_sim::SimDur::from_nanos(dt % 1_000_000);
            let parent = if kind == 0 { SpanId::NONE } else { last };
            last = log.start(
                || format!("track{}", pick % 4),
                KINDS[i % KINDS.len()],
                now,
                parent,
                SpanId::NONE,
                || format!("s{i}"),
            );
        }
        log.close_open(now);
        prop_assert!(log.validate().is_none(), "{:?}", log.validate());
        prop_assert!(log.spans().iter().all(|s| !s.is_open()));
    }
}
