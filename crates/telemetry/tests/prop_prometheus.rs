//! Property tests for the Prometheus exposition path and the quantile
//! sketch: arbitrary observation streams must always yield cumulative
//! histogram buckets with a `+Inf` terminal equal to `_count`, label
//! values must round-trip the exposition escaping, and the sketch must
//! honor its relative-error contract — including after an exact merge.

use proptest::prelude::*;

use aegaeon_telemetry::{labeled, prometheus_text, MetricsRegistry, QuantileSketch};

/// Parses every `name_bucket{le="..."} v` line of `family` out of the
/// exposition text, in emission order, plus the `_sum` and `_count` lines.
fn parse_histogram(text: &str, family: &str) -> (Vec<(String, u64)>, f64, u64) {
    let bucket_prefix = format!("{family}_bucket{{le=\"");
    let mut buckets = Vec::new();
    let mut sum = f64::NAN;
    let mut count = 0u64;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(bucket_prefix.as_str()) {
            let (le, v) = rest.split_once("\"} ").expect("bucket line shape");
            buckets.push((le.to_string(), v.trim().parse().expect("bucket count")));
        } else if let Some(rest) = line.strip_prefix(&format!("{family}_sum ")) {
            sum = rest.trim().parse().expect("sum value");
        } else if let Some(rest) = line.strip_prefix(&format!("{family}_count ")) {
            count = rest.trim().parse().expect("count value");
        }
    }
    (buckets, sum, count)
}

/// The exact rank the sketch estimates: the value at index `⌊q·(n-1)⌋` of
/// the sorted stream.
fn exact_rank(sorted: &[f64], q: f64) -> f64 {
    sorted[(q * (sorted.len() - 1) as f64).floor() as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram exposition is internally consistent for any observation
    /// stream and bound set: bucket counts are monotone non-decreasing in
    /// emission order, the terminal bucket is `+Inf` and equals `_count`,
    /// and `_sum` matches the accumulated observations.
    #[test]
    fn histogram_buckets_are_cumulative_with_inf_terminal(
        mut bounds in prop::collection::vec(0.001f64..100.0, 1..8),
        obs in prop::collection::vec(0.0f64..200.0, 0..200),
    ) {
        bounds.sort_by(|a, b| a.total_cmp(b));
        bounds.dedup();
        let mut reg = MetricsRegistry::enabled();
        let h = reg.histogram("lat_secs", &bounds);
        for &v in &obs {
            reg.observe(h, v);
        }
        let text = prometheus_text(&reg);
        let (buckets, sum, count) = parse_histogram(&text, "lat_secs");
        prop_assert_eq!(buckets.len(), bounds.len() + 1);
        prop_assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1), "{buckets:?}");
        let (last_le, last_count) = buckets.last().unwrap();
        prop_assert_eq!(last_le.as_str(), "+Inf");
        prop_assert_eq!(*last_count, obs.len() as u64);
        prop_assert_eq!(count, obs.len() as u64);
        let expect: f64 = obs.iter().sum();
        prop_assert!((sum - expect).abs() <= 1e-6 * expect.abs().max(1.0));
        // Each finite bucket holds exactly the observations ≤ its bound.
        for (i, &b) in bounds.iter().enumerate() {
            let expect = obs.iter().filter(|&&v| v <= b).count() as u64;
            prop_assert_eq!(buckets[i].1, expect, "le={}", b);
        }
    }

    /// `labeled()` escapes exactly the three characters the exposition
    /// format requires, and unescaping its output recovers the input.
    /// The palette over-weights the specials (`"`, `\`, newline) so every
    /// case exercises the escaping path.
    #[test]
    fn label_values_round_trip_escaping(
        codes in prop::collection::vec(0u32..96, 0..40),
    ) {
        let value: String = codes
            .iter()
            .map(|&c| match c {
                0..=9 => '"',
                10..=19 => '\\',
                20..=29 => '\n',
                c => char::from_u32(c + 3).unwrap(),
            })
            .collect();
        let name = labeled("ttft_seconds", "model", &value);
        let inner = name
            .strip_prefix("ttft_seconds{model=\"")
            .and_then(|s| s.strip_suffix("\"}"))
            .expect("labeled() shape");
        // No raw specials survive: every `"` and `\n` is escaped, and every
        // backslash starts a valid escape.
        let mut chars = inner.chars();
        let mut unescaped = String::new();
        while let Some(c) = chars.next() {
            match c {
                '"' | '\n' => prop_assert!(false, "raw special in {inner:?}"),
                '\\' => match chars.next() {
                    Some('\\') => unescaped.push('\\'),
                    Some('"') => unescaped.push('"'),
                    Some('n') => unescaped.push('\n'),
                    other => prop_assert!(false, "dangling escape {other:?}"),
                },
                c => unescaped.push(c),
            }
        }
        prop_assert_eq!(unescaped, value);
    }

    /// Every reported quantile of an arbitrary positive stream is within
    /// the sketch's `alpha` relative-error bound of the exact rank value.
    #[test]
    fn sketch_respects_relative_error_bound(
        vals in prop::collection::vec(1e-6f64..1e6, 1..400),
        q in 0.0f64..1.0,
    ) {
        let alpha = 0.01;
        let mut s = QuantileSketch::new(alpha);
        for &v in &vals {
            s.insert(v);
        }
        let mut sorted = vals;
        sorted.sort_by(|a, b| a.total_cmp(b));
        let exact = exact_rank(&sorted, q);
        let approx = s.quantile(q);
        prop_assert!(
            (approx - exact).abs() <= alpha * 1.000001 * exact,
            "q={q}: {approx} vs exact {exact}"
        );
    }

    /// Merging two sketches is exact: the merged sketch answers every
    /// quantile with the same error contract as one sketch fed the
    /// concatenated stream — and bit-identically to that single sketch.
    #[test]
    fn merge_equals_single_stream(
        a in prop::collection::vec(1e-6f64..1e6, 0..200),
        b in prop::collection::vec(1e-6f64..1e6, 1..200),
    ) {
        let alpha = 0.02;
        let mut sa = QuantileSketch::new(alpha);
        let mut sb = QuantileSketch::new(alpha);
        let mut whole = QuantileSketch::new(alpha);
        for &v in &a {
            sa.insert(v);
            whole.insert(v);
        }
        for &v in &b {
            sb.insert(v);
            whole.insert(v);
        }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), whole.count());
        let mut combined = [a, b].concat();
        combined.sort_by(|a, b| a.total_cmp(b));
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let merged_q = sa.quantile(q);
            // Bit-identical to the single-stream sketch (bucket counts are
            // integers; merge is exact addition).
            prop_assert_eq!(merged_q.to_bits(), whole.quantile(q).to_bits(), "q={}", q);
            let exact = exact_rank(&combined, q);
            prop_assert!(
                (merged_q - exact).abs() <= alpha * 1.000001 * exact,
                "q={q}: merged {merged_q} vs exact {exact}"
            );
        }
    }
}
