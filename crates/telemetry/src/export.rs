//! Trace exporters: Chrome Trace Event Format and JSONL.
//!
//! [`chrome_trace`] emits a JSON document loadable in Perfetto or
//! `chrome://tracing`: schedule intervals and request spans become `X`
//! duration events, zero-length spans become `i` instants, and every
//! sampled metric series becomes a `C` counter track. [`jsonl`] emits the
//! same data as line-delimited JSON for scripting.
//!
//! Both emitters are hand-rolled and fully deterministic: timestamps are
//! integer nanoseconds formatted as exact microseconds (`ns/1000` plus a
//! three-digit fraction), never round-tripped through floats, so the same
//! run always produces byte-identical output (the golden test relies on
//! this).

use std::fmt::Write as _;

use aegaeon_sim::{TraceKind, TraceLog};

use crate::metrics::MetricsRegistry;
use crate::observatory::{AttributionLedger, SloObservatory};
use crate::span::{Span, SpanLog};

/// Quantiles every sketch exposes (as summaries, in reports, in JSONL).
pub const SUMMARY_QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")];

/// `pid` used for cluster-side tracks (GPU/link schedule lanes).
pub const PID_CLUSTER: u32 = 1;
/// `pid` used for per-request span tracks.
pub const PID_REQUESTS: u32 = 2;
/// `pid` used for sampled counter tracks.
pub const PID_METRICS: u32 = 3;

/// Appends `ns` nanoseconds as exact microseconds (`123.456`).
fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Appends a JSON string literal (with escaping) for `s`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite JSON number for `v` (non-finite values become `0`).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

fn trace_kind_name(kind: TraceKind) -> &'static str {
    match kind {
        TraceKind::Prefill => "prefill",
        TraceKind::Decode => "decode",
        TraceKind::Switch => "switch",
        TraceKind::KvTransfer => "kv-transfer",
        TraceKind::Wait => "queue-wait",
        TraceKind::Other => "other",
    }
}

fn push_meta(out: &mut String, pid: u32, tid: u32, what: &str, name: &str) {
    let _ = write!(out, "{{\"name\":\"{what}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":");
    push_json_str(out, name);
    out.push_str("}},\n");
}

fn push_span_event(out: &mut String, pid: u32, tid: u32, id: usize, s: &Span) {
    let name = if s.label.is_empty() { s.kind.name() } else { s.label.as_str() };
    out.push_str("{\"name\":");
    push_json_str(out, name);
    out.push_str(",\"cat\":\"");
    out.push_str(s.kind.name());
    if s.start == s.end {
        out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
        push_us(out, s.start.as_nanos());
    } else {
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        push_us(out, s.start.as_nanos());
        out.push_str(",\"dur\":");
        push_us(out, (s.end - s.start).as_nanos());
    }
    let _ = write!(out, ",\"pid\":{pid},\"tid\":{tid}");
    let _ = write!(out, ",\"args\":{{\"span\":{id}");
    if !s.parent.is_none() {
        let _ = write!(out, ",\"parent\":{}", s.parent.0);
    }
    if !s.cause.is_none() {
        let _ = write!(out, ",\"cause\":{}", s.cause.0);
    }
    out.push_str("}},\n");
}

/// Renders a full run as Chrome Trace Event Format JSON.
///
/// * `schedule` — the GPU-lane [`TraceLog`] (pid [`PID_CLUSTER`], one `tid`
///   per lane, intervals as `X` events).
/// * `spans` — the request-lifecycle [`SpanLog`] (pid [`PID_REQUESTS`], one
///   `tid` per track; zero-length spans export as `i` instants).
/// * `metrics` — sampled counter and gauge series (pid [`PID_METRICS`],
///   `C` events named after each instrument).
pub fn chrome_trace(schedule: &TraceLog, spans: &SpanLog, metrics: &MetricsRegistry) -> String {
    let mut out = String::with_capacity(
        1024 + 160 * (schedule.intervals().len() + spans.spans().len()),
    );
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");

    // Metadata: stable process/thread names for every track.
    push_meta(&mut out, PID_CLUSTER, 0, "process_name", "cluster");
    push_meta(&mut out, PID_REQUESTS, 0, "process_name", "requests");
    push_meta(&mut out, PID_METRICS, 0, "process_name", "metrics");
    for (tid, lane) in schedule.lanes().iter().enumerate() {
        push_meta(&mut out, PID_CLUSTER, tid as u32, "thread_name", lane);
    }
    for (tid, track) in spans.tracks().iter().enumerate() {
        push_meta(&mut out, PID_REQUESTS, tid as u32, "thread_name", track);
    }

    // Schedule lanes (Gantt intervals) as X events.
    for iv in schedule.intervals() {
        let tid = schedule
            .lanes()
            .iter()
            .position(|l| std::sync::Arc::ptr_eq(l, &iv.lane))
            .unwrap_or(0) as u32;
        out.push_str("{\"name\":");
        push_json_str(&mut out, &iv.label);
        out.push_str(",\"cat\":\"");
        out.push_str(trace_kind_name(iv.kind));
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        push_us(&mut out, iv.start.as_nanos());
        out.push_str(",\"dur\":");
        push_us(&mut out, (iv.end - iv.start).as_nanos());
        let _ = writeln!(out, ",\"pid\":{PID_CLUSTER},\"tid\":{tid}}},");
    }

    // Request-lifecycle spans.
    let tracks = spans.tracks();
    for (id, s) in spans.spans().iter().enumerate() {
        let tid = tracks
            .iter()
            .position(|t| std::sync::Arc::ptr_eq(t, &s.track))
            .unwrap_or(0) as u32;
        push_span_event(&mut out, PID_REQUESTS, tid, id, s);
    }

    // Counter tracks: counters and gauges, in registration order.
    for (tid, (name, samples)) in metrics.counter_series().chain(metrics.gauge_series()).enumerate()
    {
        for s in samples {
            out.push_str("{\"name\":");
            push_json_str(&mut out, name);
            out.push_str(",\"ph\":\"C\",\"ts\":");
            push_us(&mut out, s.at.as_nanos());
            let _ = write!(out, ",\"pid\":{PID_METRICS},\"tid\":{tid},\"args\":{{\"value\":");
            push_json_f64(&mut out, s.value);
            out.push_str("}},\n");
        }
    }

    // Close the list; the trailing comma convention of the Trace Event
    // Format tolerates none, so strip the last ",\n".
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Renders the same telemetry as line-delimited JSON: one object per span,
/// per sample, per histogram, and per run-level counter total.
pub fn jsonl(spans: &SpanLog, metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (id, s) in spans.spans().iter().enumerate() {
        let _ = write!(out, "{{\"type\":\"span\",\"id\":{id},\"track\":");
        push_json_str(&mut out, &s.track);
        out.push_str(",\"kind\":\"");
        out.push_str(s.kind.name());
        out.push_str("\",\"label\":");
        push_json_str(&mut out, &s.label);
        let _ = write!(
            out,
            ",\"start_ns\":{},\"end_ns\":{}",
            s.start.as_nanos(),
            s.end.as_nanos()
        );
        if !s.parent.is_none() {
            let _ = write!(out, ",\"parent\":{}", s.parent.0);
        }
        if !s.cause.is_none() {
            let _ = write!(out, ",\"cause\":{}", s.cause.0);
        }
        out.push_str("}\n");
    }
    for (class, series) in [
        ("counter", metrics.counter_series().collect::<Vec<_>>()),
        ("gauge", metrics.gauge_series().collect::<Vec<_>>()),
    ] {
        for (name, samples) in series {
            for s in samples {
                let _ = write!(out, "{{\"type\":\"sample\",\"class\":\"{class}\",\"metric\":");
                push_json_str(&mut out, name);
                let _ = write!(out, ",\"at_ns\":{},\"value\":", s.at.as_nanos());
                push_json_f64(&mut out, s.value);
                out.push_str("}\n");
            }
        }
    }
    for h in metrics.histograms() {
        out.push_str("{\"type\":\"histogram\",\"metric\":");
        push_json_str(&mut out, &h.name);
        out.push_str(",\"bounds\":[");
        for (i, b) in h.bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_f64(&mut out, *b);
        }
        out.push_str("],\"counts\":[");
        for (i, c) in h.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(out, "],\"sum\":");
        push_json_f64(&mut out, h.sum);
        let _ = writeln!(out, ",\"n\":{}}}", h.n);
    }
    for (name, sk) in metrics.sketches() {
        out.push_str("{\"type\":\"sketch\",\"metric\":");
        push_json_str(&mut out, name);
        let _ = write!(out, ",\"alpha\":{},\"count\":{},\"sum\":", sk.alpha(), sk.count());
        push_json_f64(&mut out, sk.sum());
        for (q, label) in SUMMARY_QUANTILES {
            let _ = write!(out, ",\"p{}\":", &label[2..]);
            push_json_f64(&mut out, sk.quantile(q));
        }
        out.push_str("}\n");
    }
    for (name, value) in metrics.counter_totals() {
        out.push_str("{\"type\":\"total\",\"metric\":");
        push_json_str(&mut out, name);
        out.push_str(",\"value\":");
        push_json_f64(&mut out, value);
        out.push_str("}\n");
    }
    out
}

/// Renders the SLO observatory and attribution ledger as line-delimited
/// JSON (`slo_point`, `slo_cum`, and `attrib` lines), appendable to
/// [`jsonl`] output. The analyzer consumes exactly these line types.
pub fn slo_jsonl(slo: &SloObservatory, attrib: &AttributionLedger) -> String {
    let mut out = String::new();
    for p in slo.points() {
        let _ = write!(
            out,
            "{{\"type\":\"slo_point\",\"window_end_ns\":{},\"model\":{},\"requests\":{},\"tokens\":{},\"tokens_met\":{}",
            p.window_end_ns, p.model, p.requests, p.tokens, p.tokens_met
        );
        for (key, v) in [
            ("ttft_p50", p.ttft_p50),
            ("ttft_p90", p.ttft_p90),
            ("ttft_p99", p.ttft_p99),
            ("tbt_p50", p.tbt_p50),
            ("tbt_p90", p.tbt_p90),
            ("tbt_p99", p.tbt_p99),
            ("attainment", p.attainment),
            ("goodput_tps", p.goodput_tps),
        ] {
            let _ = write!(out, ",\"{key}\":");
            push_json_f64(&mut out, v);
        }
        out.push_str("}\n");
    }
    for (m, c) in slo.cumulative().iter().enumerate() {
        let _ = write!(
            out,
            "{{\"type\":\"slo_cum\",\"model\":{m},\"requests\":{},\"tokens\":{},\"tokens_met\":{},\"attainment\":",
            c.requests, c.tokens, c.tokens_met
        );
        push_json_f64(&mut out, c.attainment());
        out.push_str("}\n");
    }
    for (m, t) in slo.turn_stats().iter().enumerate() {
        if t.turns == 0 {
            continue;
        }
        let _ = write!(
            out,
            "{{\"type\":\"session_turns\",\"model\":{m},\"turns\":{},\"prefix_hits\":{},\"max_depth\":{},\"prefix_hit_rate\":",
            t.turns, t.prefix_hits, t.max_depth
        );
        push_json_f64(&mut out, t.prefix_hit_rate());
        for (key, q) in [
            ("turn_latency_p50", 0.50),
            ("turn_latency_p90", 0.90),
            ("turn_latency_p99", 0.99),
        ] {
            let _ = write!(out, ",\"{key}\":");
            push_json_f64(&mut out, t.latency_quantile(q));
        }
        out.push_str("}\n");
    }
    for (inst, model, kind, secs) in attrib.rows() {
        out.push_str("{\"type\":\"attrib\",\"instance\":");
        push_json_str(&mut out, inst);
        let _ = write!(out, ",\"model\":{model},\"kind\":\"{}\",\"secs\":", kind.name());
        push_json_f64(&mut out, secs);
        out.push_str("}\n");
    }
    out
}

/// Renders the SLO observatory and attribution ledger as one JSON object —
/// the body of the gateway's `GET /v1/slo` and the analyzer's native
/// input. Deterministic for a given observatory state.
pub fn slo_json(slo: &SloObservatory, attrib: &AttributionLedger) -> String {
    let mut out = String::from("{\"models\":[");
    for (m, c) in slo.cumulative().iter().enumerate() {
        if m > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"model\":\"m{m}\",\"requests\":{},\"tokens\":{},\"tokens_met\":{},\"attainment\":",
            c.requests, c.tokens, c.tokens_met
        );
        push_json_f64(&mut out, c.attainment());
        out.push('}');
    }
    out.push_str("],\"windows\":[");
    for (i, p) in slo.points().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"window_end_ns\":{},\"model\":\"m{}\",\"requests\":{},\"tokens\":{},\"tokens_met\":{}",
            p.window_end_ns, p.model, p.requests, p.tokens, p.tokens_met
        );
        for (key, v) in [
            ("ttft_p50", p.ttft_p50),
            ("ttft_p90", p.ttft_p90),
            ("ttft_p99", p.ttft_p99),
            ("tbt_p50", p.tbt_p50),
            ("tbt_p90", p.tbt_p90),
            ("tbt_p99", p.tbt_p99),
            ("attainment", p.attainment),
            ("goodput_tps", p.goodput_tps),
        ] {
            let _ = write!(out, ",\"{key}\":");
            push_json_f64(&mut out, v);
        }
        out.push('}');
    }
    out.push_str("],\"sessions\":[");
    let mut first = true;
    for (m, t) in slo.turn_stats().iter().enumerate() {
        if t.turns == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"model\":\"m{m}\",\"turns\":{},\"prefix_hits\":{},\"max_depth\":{},\"prefix_hit_rate\":",
            t.turns, t.prefix_hits, t.max_depth
        );
        push_json_f64(&mut out, t.prefix_hit_rate());
        for (key, q) in [
            ("turn_latency_p50", 0.50),
            ("turn_latency_p90", 0.90),
            ("turn_latency_p99", 0.99),
        ] {
            let _ = write!(out, ",\"{key}\":");
            push_json_f64(&mut out, t.latency_quantile(q));
        }
        out.push('}');
    }
    out.push_str("],\"attribution\":[");
    for (i, (inst, model, kind, secs)) in attrib.rows().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"instance\":");
        push_json_str(&mut out, inst);
        let _ = write!(out, ",\"model\":\"m{model}\",\"kind\":\"{}\",\"secs\":", kind.name());
        push_json_f64(&mut out, secs);
        out.push('}');
    }
    out.push_str("],\"useful_secs\":");
    push_json_f64(&mut out, attrib.useful_secs());
    out.push_str(",\"overhead_secs\":");
    push_json_f64(&mut out, attrib.overhead_secs());
    out.push_str("}\n");
    out
}

/// Renders the registry's current state in the Prometheus text exposition
/// format (version 0.0.4): one `# TYPE` header per instrument *family*,
/// counters and gauges as their live values, histograms as cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`. Instrument names may
/// embed a label set verbatim (e.g. `reactor_ready_depth{reactor="3"}`):
/// the sample line carries the full name while the `# TYPE` header uses the
/// base name before the `{` and is emitted once per family. Deterministic:
/// instruments appear in registration order and values are formatted with
/// Rust's default float formatting.
pub fn prometheus_text(metrics: &MetricsRegistry) -> String {
    fn push_value(out: &mut String, v: f64) {
        if v.is_finite() {
            let _ = write!(out, "{v}");
        } else if v.is_nan() {
            out.push_str("NaN");
        } else if v > 0.0 {
            out.push_str("+Inf");
        } else {
            out.push_str("-Inf");
        }
    }
    // Base name of a possibly-labeled instrument: `a{l="1"}` → `a`.
    fn family(name: &str) -> &str {
        name.split('{').next().unwrap_or(name)
    }
    let mut out = String::new();
    let mut typed: Vec<&str> = Vec::new();
    for (name, value) in metrics.counter_totals() {
        let fam = family(name);
        if !typed.contains(&fam) {
            typed.push(fam);
            let _ = writeln!(out, "# TYPE {fam} counter");
        }
        out.push_str(name);
        out.push(' ');
        push_value(&mut out, value);
        out.push('\n');
    }
    typed.clear();
    for (name, value) in metrics.gauge_values() {
        let fam = family(name);
        if !typed.contains(&fam) {
            typed.push(fam);
            let _ = writeln!(out, "# TYPE {fam} gauge");
        }
        out.push_str(name);
        out.push(' ');
        push_value(&mut out, value);
        out.push('\n');
    }
    // Sketches render as summaries. A sketch's registered name may embed a
    // label set (`ttft_seconds{model="m0"}`); the `quantile` label is
    // merged into it, while `_sum`/`_count` keep the original labels.
    typed.clear();
    for (name, sk) in metrics.sketches() {
        let (fam, labels) = match name.find('{') {
            Some(i) => (&name[..i], &name[i..]),
            None => (name, ""),
        };
        if !typed.contains(&fam) {
            typed.push(fam);
            let _ = writeln!(out, "# TYPE {fam} summary");
        }
        for (q, qlabel) in SUMMARY_QUANTILES {
            if labels.is_empty() {
                let _ = write!(out, "{fam}{{quantile=\"{qlabel}\"}} ");
            } else {
                let inner = &labels[1..labels.len() - 1];
                let _ = write!(out, "{fam}{{{inner},quantile=\"{qlabel}\"}} ");
            }
            push_value(&mut out, sk.quantile(q));
            out.push('\n');
        }
        let _ = write!(out, "{fam}_sum{labels} ");
        push_value(&mut out, sk.sum());
        out.push('\n');
        let _ = writeln!(out, "{fam}_count{labels} {}", sk.count());
    }
    for h in metrics.histograms() {
        let name = &h.name;
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum: u64 = 0;
        for (i, c) in h.counts.iter().enumerate() {
            cum += c;
            if i < h.bounds.len() {
                let _ = write!(out, "{name}_bucket{{le=\"");
                push_value(&mut out, h.bounds[i]);
                let _ = writeln!(out, "\"}} {cum}");
            } else {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            }
        }
        out.push_str(name);
        out.push_str("_sum ");
        push_value(&mut out, h.sum);
        out.push('\n');
        let _ = writeln!(out, "{name}_count {}", h.n);
    }
    out
}

/// Smallest possible structural check that `chrome_trace` output is valid
/// JSON with the fields Perfetto needs; the CI job does the authoritative
/// validation with a real parser.
pub fn looks_like_trace_event_json(s: &str) -> bool {
    s.starts_with('{')
        && s.contains("\"traceEvents\"")
        && s.contains("\"ph\":")
        && s.contains("\"ts\":")
        && s.contains("\"pid\":")
        && s.contains("\"tid\":")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, SpanKind};
    use aegaeon_sim::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn sample_run() -> (TraceLog, SpanLog, MetricsRegistry) {
        let mut sched = TraceLog::enabled();
        sched.record("gpu0", t(0.0), t(1.0), TraceKind::Prefill, "P:m1");
        sched.record("gpu0", t(1.0), t(1.5), TraceKind::Switch, "S:m2");
        let mut spans = SpanLog::enabled();
        let root = spans.start(|| "req0", SpanKind::Request, t(0.0), SpanId::NONE, SpanId::NONE, || "r0");
        let d = spans.instant(|| "proxy", SpanKind::Decision, t(0.0), SpanId::NONE, || "place");
        let pf = spans.start(|| "req0", SpanKind::Prefill, t(0.0), root, d, || "P");
        spans.end(pf, t(1.0));
        spans.end(root, t(2.0));
        let mut reg = MetricsRegistry::enabled();
        let c = reg.counter("switches");
        let g = reg.gauge("queue_depth");
        reg.inc(c, 1);
        reg.set(g, 3.0);
        reg.sample(t(1.0));
        (sched, spans, reg)
    }

    #[test]
    fn chrome_trace_has_required_fields_and_is_deterministic() {
        let (sched, spans, reg) = sample_run();
        let a = chrome_trace(&sched, &spans, &reg);
        let b = chrome_trace(&sched, &spans, &reg);
        assert_eq!(a, b, "export must be deterministic");
        assert!(looks_like_trace_event_json(&a));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"ph\":\"M\""));
        assert!(a.contains("\"cat\":\"prefill\""));
        assert!(a.contains("\"cat\":\"switch\""));
        assert!(!a.contains(",\n]"), "no trailing comma before close");
    }

    #[test]
    fn timestamps_are_exact_microseconds() {
        let mut out = String::new();
        push_us(&mut out, 1_234_567); // 1234.567 us
        assert_eq!(out, "1234.567");
        out.clear();
        push_us(&mut out, 1_000);
        assert_eq!(out, "1.000");
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn prometheus_text_exposes_all_instrument_kinds() {
        let mut reg = MetricsRegistry::enabled();
        let c = reg.counter("http_requests");
        let g = reg.gauge("wall_clock_lag_secs");
        let h = reg.histogram("latency_secs", &[0.1, 1.0]);
        reg.inc(c, 7);
        reg.set(g, 0.25);
        reg.observe(h, 0.05);
        reg.observe(h, 0.5);
        reg.observe(h, 5.0);
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE http_requests counter\nhttp_requests 7\n"));
        assert!(text.contains("# TYPE wall_clock_lag_secs gauge\nwall_clock_lag_secs 0.25\n"));
        assert!(text.contains("latency_secs_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("latency_secs_bucket{le=\"1\"} 2"));
        assert!(text.contains("latency_secs_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("latency_secs_sum 5.55"));
        assert!(text.contains("latency_secs_count 3"));
        assert_eq!(prometheus_text(&reg), text, "export must be deterministic");
    }

    #[test]
    fn prometheus_text_renders_sketches_as_summaries() {
        let mut reg = MetricsRegistry::enabled();
        let plain = reg.sketch("e2e_seconds", 0.01);
        let labeled = reg.sketch("ttft_seconds{model=\"m0\"}", 0.01);
        for v in [0.1, 0.2, 0.4] {
            reg.observe_sketch(plain, v);
            reg.observe_sketch(labeled, v);
        }
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE e2e_seconds summary"));
        assert!(text.contains("e2e_seconds{quantile=\"0.5\"} "));
        assert!(text.contains("e2e_seconds_count 3"));
        assert!(text.contains("# TYPE ttft_seconds summary"));
        assert!(text.contains("ttft_seconds{model=\"m0\",quantile=\"0.99\"} "));
        assert!(text.contains("ttft_seconds_sum{model=\"m0\"} "));
        assert!(text.contains("ttft_seconds_count{model=\"m0\"} 3"));
        assert_eq!(prometheus_text(&reg), text, "export must be deterministic");
    }

    #[test]
    fn slo_exports_render_points_and_ledger() {
        let mut slo = SloObservatory::new(2, 1_000_000_000);
        slo.observe_request(10, 0, 0.25, &[0.05], 2, 1);
        slo.finish();
        let mut attrib = AttributionLedger::enabled();
        let p0 = attrib.instance("p0");
        attrib.add(p0, 0, crate::observatory::CostKind::ModelSwitch, 1.5);
        attrib.add(p0, 0, crate::observatory::CostKind::PrefillExec, 3.0);
        let json = slo_json(&slo, &attrib);
        assert!(json.contains("\"attainment\":0.5"));
        assert!(json.contains("\"kind\":\"model_switch\",\"secs\":1.5"));
        assert!(json.contains("\"useful_secs\":3"));
        assert!(json.contains("\"model\":\"m1\",\"requests\":0"));
        let lines = slo_jsonl(&slo, &attrib);
        for line in lines.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
        assert!(lines.contains("\"type\":\"slo_point\""));
        assert!(lines.contains("\"type\":\"slo_cum\""));
        assert!(lines.contains("\"type\":\"attrib\""));
    }

    #[test]
    fn jsonl_emits_one_object_per_line() {
        let (_, spans, reg) = sample_run();
        let text = jsonl(&spans, &reg);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
        assert!(text.contains("\"type\":\"span\""));
        assert!(text.contains("\"type\":\"sample\""));
        assert!(text.contains("\"type\":\"total\""));
    }
}
