//! Request-lifecycle span trees.
//!
//! A [`Span`] is a half-open interval `[start, end)` on a named track with
//! an optional parent (building a tree: request → queue wait → prefill →
//! per-decode-round → …) and an optional *cause* link pointing at the span
//! or instant that triggered it (a scheduler decision, an auto-scale
//! event). Instants are zero-length spans.
//!
//! The log follows the [`TraceLog`](aegaeon_sim::TraceLog) discipline:
//! when disabled every recording call is a single branch — no label
//! closure runs, nothing allocates — so the simulation hot path pays
//! nothing. Recording never perturbs the system being observed; the
//! differential telemetry tests assert bit-identical results with the log
//! on and off.

use std::sync::Arc;

use aegaeon_sim::SimTime;

/// Classifies a span for export (`cat` in Chrome Trace Event Format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A request's whole lifetime (arrival → completion).
    Request,
    /// Waiting in a prefill or decode queue.
    QueueWait,
    /// Prefill execution.
    Prefill,
    /// A KV-cache transfer (offload, swap-in, cross-node hop).
    KvTransfer,
    /// One decoding round (a batch's turn) or a request's share of it.
    DecodeRound,
    /// Preemptive auto-scaling (model switch).
    Switch,
    /// A proxy retry / failure-recovery re-dispatch.
    Retry,
    /// A preemption (turn quota expired with work left).
    Preempt,
    /// A scheduler decision instant (placement, dispatch).
    Decision,
    /// Anything else.
    Other,
}

impl SpanKind {
    /// Stable lowercase name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::Prefill => "prefill",
            SpanKind::KvTransfer => "kv-transfer",
            SpanKind::DecodeRound => "decode-round",
            SpanKind::Switch => "switch",
            SpanKind::Retry => "retry",
            SpanKind::Preempt => "preempt",
            SpanKind::Decision => "decision",
            SpanKind::Other => "other",
        }
    }
}

/// Handle to a recorded span. [`SpanId::NONE`] is the null handle: ending
/// it is a no-op, and it is what every recording call returns while the
/// log is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The null handle (no span).
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// True if this is the null handle.
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }
}

/// One recorded span.
#[derive(Debug, Clone)]
pub struct Span {
    /// Track the span renders on (interned; clones are pointer copies).
    pub track: Arc<str>,
    /// Category.
    pub kind: SpanKind,
    /// Short label, e.g. `"P:m3"`.
    pub label: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant; `SimTime::MAX` while the span is open.
    pub end: SimTime,
    /// Parent span (tree edge), or [`SpanId::NONE`].
    pub parent: SpanId,
    /// Causal link (the decision/scale event that placed this work), or
    /// [`SpanId::NONE`].
    pub cause: SpanId,
}

impl Span {
    /// True while the span has not been ended.
    pub fn is_open(&self) -> bool {
        self.end == SimTime::MAX
    }
}

/// An append-only log of spans, disabled by default.
#[derive(Debug, Default)]
pub struct SpanLog {
    enabled: bool,
    spans: Vec<Span>,
    /// Distinct tracks in first-appearance order; doubles as intern table.
    tracks: Vec<Arc<str>>,
}

impl SpanLog {
    /// Creates a disabled log (records nothing).
    pub fn disabled() -> SpanLog {
        SpanLog::default()
    }

    /// Creates an enabled log.
    pub fn enabled() -> SpanLog {
        SpanLog {
            enabled: true,
            ..SpanLog::default()
        }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn intern(&mut self, track: &str) -> Arc<str> {
        if let Some(t) = self.tracks.iter().find(|t| &***t == track) {
            return Arc::clone(t);
        }
        let t: Arc<str> = Arc::from(track);
        self.tracks.push(Arc::clone(&t));
        t
    }

    /// Opens a span. Both the track closure and the label closure only run
    /// when the log is enabled; when disabled this is a single branch and
    /// returns [`SpanId::NONE`].
    pub fn start<T, S>(
        &mut self,
        track: impl FnOnce() -> T,
        kind: SpanKind,
        at: SimTime,
        parent: SpanId,
        cause: SpanId,
        label: impl FnOnce() -> S,
    ) -> SpanId
    where
        T: AsRef<str>,
        S: Into<String>,
    {
        if !self.enabled {
            return SpanId::NONE;
        }
        let track = self.intern(track().as_ref());
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(Span {
            track,
            kind,
            label: label().into(),
            start: at,
            end: SimTime::MAX,
            parent,
            cause,
        });
        id
    }

    /// Closes `id` at `at`. No-op on the null handle or when disabled.
    pub fn end(&mut self, id: SpanId, at: SimTime) {
        if !self.enabled || id.is_none() {
            return;
        }
        let s = &mut self.spans[id.0 as usize];
        debug_assert!(s.is_open(), "span ended twice");
        debug_assert!(at >= s.start, "span ends before it starts");
        s.end = at;
    }

    /// Records a zero-length instant (decisions, retries, preemptions).
    pub fn instant<T, S>(
        &mut self,
        track: impl FnOnce() -> T,
        kind: SpanKind,
        at: SimTime,
        cause: SpanId,
        label: impl FnOnce() -> S,
    ) -> SpanId
    where
        T: AsRef<str>,
        S: Into<String>,
    {
        let id = self.start(track, kind, at, SpanId::NONE, cause, label);
        self.end(id, at);
        id
    }

    /// Closes every still-open span at `at` (end-of-run truncation), so an
    /// exported trace never contains dangling intervals.
    pub fn close_open(&mut self, at: SimTime) {
        if !self.enabled {
            return;
        }
        for s in &mut self.spans {
            if s.is_open() {
                s.end = s.start.max(at);
            }
        }
    }

    /// All recorded spans in recording order ([`SpanId`] indexes this).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Distinct track names in first-appearance order.
    pub fn tracks(&self) -> &[Arc<str>] {
        &self.tracks
    }

    /// Checks structural well-formedness, returning a description of the
    /// first violation: every span must end at or after its start, no span
    /// may remain open, parents must be earlier records whose interval
    /// contains the child's, and start instants must be nondecreasing in
    /// recording order (event-loop monotonicity).
    pub fn validate(&self) -> Option<String> {
        let mut last_start = SimTime::ZERO;
        for (i, s) in self.spans.iter().enumerate() {
            if s.is_open() {
                return Some(format!("span {i} ({}) still open", s.label));
            }
            if s.end < s.start {
                return Some(format!("span {i} ({}) ends before it starts", s.label));
            }
            if s.start < last_start {
                return Some(format!(
                    "span {i} ({}) starts at {:.9}s, before the previous record at {:.9}s",
                    s.label,
                    s.start.as_secs_f64(),
                    last_start.as_secs_f64()
                ));
            }
            last_start = s.start;
            if !s.parent.is_none() {
                let p = s.parent.0 as usize;
                if p >= i {
                    return Some(format!("span {i} ({}) has a non-earlier parent {p}", s.label));
                }
                let parent = &self.spans[p];
                if s.start < parent.start || s.end > parent.end {
                    return Some(format!(
                        "span {i} ({}) [{:.9}, {:.9}] escapes parent {p} ({}) [{:.9}, {:.9}]",
                        s.label,
                        s.start.as_secs_f64(),
                        s.end.as_secs_f64(),
                        parent.label,
                        parent.start.as_secs_f64(),
                        parent.end.as_secs_f64()
                    ));
                }
            }
            if !s.cause.is_none() && s.cause.0 as usize >= self.spans.len() {
                return Some(format!("span {i} ({}) has a dangling cause", s.label));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn disabled_log_is_a_single_branch() {
        let mut log = SpanLog::disabled();
        let mut track_ran = false;
        let mut label_ran = false;
        let id = log.start(
            || {
                track_ran = true;
                "req0"
            },
            SpanKind::Request,
            t(1.0),
            SpanId::NONE,
            SpanId::NONE,
            || {
                label_ran = true;
                "r0"
            },
        );
        assert!(id.is_none());
        assert!(!track_ran && !label_ran, "closures must not run when disabled");
        log.end(id, t(2.0));
        assert!(log.spans().is_empty());
        assert!(log.tracks().is_empty());
    }

    #[test]
    fn span_tree_records_and_validates() {
        let mut log = SpanLog::enabled();
        let root = log.start(|| "req0", SpanKind::Request, t(0.0), SpanId::NONE, SpanId::NONE, || "r0");
        let wait = log.start(|| "req0", SpanKind::QueueWait, t(0.0), root, SpanId::NONE, || "wait");
        log.end(wait, t(1.0));
        let d = log.instant(|| "proxy", SpanKind::Decision, t(1.0), SpanId::NONE, || "place");
        let pf = log.start(|| "req0", SpanKind::Prefill, t(1.0), root, d, || "P");
        log.end(pf, t(2.0));
        log.end(root, t(3.0));
        assert_eq!(log.spans().len(), 4);
        assert!(log.validate().is_none(), "{:?}", log.validate());
        let tracks: Vec<&str> = log.tracks().iter().map(|t| &**t).collect();
        assert_eq!(tracks, vec!["req0", "proxy"]);
    }

    #[test]
    fn validate_flags_open_and_escaping_spans() {
        let mut log = SpanLog::enabled();
        let root = log.start(|| "a", SpanKind::Request, t(0.0), SpanId::NONE, SpanId::NONE, || "r");
        assert!(log.validate().unwrap().contains("still open"));
        log.end(root, t(1.0));
        assert!(log.validate().is_none());

        let child = log.start(|| "a", SpanKind::Prefill, t(0.5), root, SpanId::NONE, || "c");
        log.end(child, t(2.0)); // escapes the parent's [0, 1]
        assert!(log.validate().unwrap().contains("escapes parent"));
    }

    #[test]
    fn close_open_truncates_at_end_of_run() {
        let mut log = SpanLog::enabled();
        let a = log.start(|| "a", SpanKind::Request, t(0.0), SpanId::NONE, SpanId::NONE, || "r");
        let _b = log.start(|| "a", SpanKind::DecodeRound, t(2.0), a, SpanId::NONE, || "d");
        log.close_open(t(5.0));
        assert!(log.validate().is_none(), "{:?}", log.validate());
        assert_eq!(log.spans()[0].end, t(5.0));
        assert_eq!(log.spans()[1].end, t(5.0));
    }

    #[test]
    fn tracks_are_interned() {
        let mut log = SpanLog::enabled();
        let a = log.start(|| "gpu0", SpanKind::Prefill, t(0.0), SpanId::NONE, SpanId::NONE, || "x");
        let b = log.start(|| "gpu0", SpanKind::DecodeRound, t(0.5), SpanId::NONE, SpanId::NONE, || "y");
        log.end(a, t(1.0));
        log.end(b, t(1.0));
        let spans = log.spans();
        assert!(
            Arc::ptr_eq(&spans[0].track, &spans[1].track),
            "same track must share one allocation"
        );
        assert_eq!(log.tracks().len(), 1);
    }
}
