//! Mergeable streaming quantile sketch (DDSketch-style).
//!
//! Values are binned into logarithmic buckets: bucket `k` covers
//! `(γ^(k-1), γ^k]` with `γ = (1+α)/(1-α)`, so any value in a bucket is
//! within relative error `α` of the bucket's midpoint estimate
//! `2·γ^k/(γ+1)`. Bucket indices are integers and counts are integers, so
//! [`QuantileSketch::merge`] is exact: merging per-shard sketches in any
//! order yields the same sketch as observing the combined stream in any
//! order. That is the property the rest of the repo leans on — per-window,
//! per-model and per-reactor sketches can be rolled up without resorting
//! full sample vectors.
//!
//! Storage is a `BTreeMap<i32, u64>`, which keeps iteration (and therefore
//! every rendered quantile and export) deterministic. Non-positive and
//! sub-`MIN_VALUE` observations collapse into a dedicated zero bucket —
//! latencies are never negative, and a zero latency has no meaningful
//! relative error anyway.

use std::collections::BTreeMap;

/// Observations at or below this value land in the zero bucket. Keeps the
/// bucket index range tiny (|k| ≲ 3500 at α = 0.01) and avoids `ln`
/// blow-ups near zero.
const MIN_VALUE: f64 = 1e-12;

/// A mergeable log-bucketed quantile sketch with fixed relative error.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    alpha: f64,
    gamma: f64,
    inv_ln_gamma: f64,
    buckets: BTreeMap<i32, u64>,
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// Creates a sketch with relative accuracy `alpha` (e.g. `0.01` = every
    /// reported quantile is within 1% of a true stream value at that rank).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> QuantileSketch {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma,
            inv_ln_gamma: 1.0 / gamma.ln(),
            buckets: BTreeMap::new(),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The configured relative accuracy.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Records one observation. NaN is ignored; values ≤ [`MIN_VALUE`]
    /// (including all non-positive values) land in the zero bucket.
    pub fn insert(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        if v <= MIN_VALUE {
            self.zero += 1;
        } else {
            let k = (v.ln() * self.inv_ln_gamma).ceil() as i32;
            *self.buckets.entry(k).or_insert(0) += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another sketch into this one. Exact: the result is identical
    /// to having observed both streams in any interleaving.
    ///
    /// # Panics
    ///
    /// Debug-asserts that both sketches share the same `alpha`.
    pub fn merge(&mut self, other: &QuantileSketch) {
        debug_assert_eq!(
            self.alpha.to_bits(),
            other.alpha.to_bits(),
            "merging sketches with different accuracies"
        );
        for (&k, &c) in &other.buckets {
            *self.buckets.entry(k).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets to empty, keeping the configured accuracy (and the allocated
    /// tree nodes' capacity is irrelevant for a BTreeMap — it is dropped).
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.zero = 0;
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    /// Estimates the `q`-quantile (`q ∈ [0, 1]`): a value within relative
    /// error `alpha` of the true stream value at rank `⌊q·(n-1)⌋`. Returns
    /// `NaN` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).floor() as u64;
        let mut cum = self.zero;
        if target < cum {
            // Zero-bucket values are all ≤ MIN_VALUE; min is exact for them.
            return self.min.clamp(0.0, MIN_VALUE);
        }
        for (&k, &c) in &self.buckets {
            cum += c;
            if target < cum {
                let est = 2.0 * self.gamma.powi(k) / (self.gamma + 1.0);
                // Clamping to the observed range only tightens the estimate
                // (the true ranked value lies inside it by definition).
                return est.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        sorted[(q * (sorted.len() - 1) as f64).floor() as usize]
    }

    #[test]
    fn empty_sketch_reports_nan() {
        let s = QuantileSketch::new(0.01);
        assert!(s.quantile(0.5).is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn quantiles_respect_relative_error() {
        let mut s = QuantileSketch::new(0.01);
        let mut vals: Vec<f64> = (1..=10_000).map(|i| (i as f64) * 0.37e-3).collect();
        for &v in &vals {
            s.insert(v);
        }
        vals.sort_by(|a, b| a.total_cmp(b));
        for q in [0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let truth = exact_quantile(&vals, q);
            let est = s.quantile(q);
            assert!(
                (est - truth).abs() <= 0.01 * truth + 1e-12,
                "q={q}: est {est} vs truth {truth}"
            );
        }
        assert_eq!(s.count(), 10_000);
        assert!((s.sum() - vals.iter().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = QuantileSketch::new(0.02);
        let mut b = QuantileSketch::new(0.02);
        let mut all = QuantileSketch::new(0.02);
        for i in 0..500 {
            let v = ((i * 2654435761_u64) % 10_000) as f64 / 100.0 + 0.01;
            if i % 3 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
            all.insert(v);
        }
        // Bucket counts, ranks and extremes merge exactly (float `sum` can
        // differ in the last ulp because addition is not associative).
        let check = |m: &QuantileSketch| {
            assert_eq!(m.count(), all.count());
            assert_eq!(m.min().to_bits(), all.min().to_bits());
            assert_eq!(m.max().to_bits(), all.max().to_bits());
            for i in 0..=100 {
                let q = i as f64 / 100.0;
                assert_eq!(m.quantile(q).to_bits(), all.quantile(q).to_bits(), "q={q}");
            }
            assert!((m.sum() - all.sum()).abs() < 1e-9 * all.sum().abs());
        };
        let mut merged = a.clone();
        merged.merge(&b);
        check(&merged);
        // Merge in the other order too.
        let mut merged2 = b;
        merged2.merge(&a);
        check(&merged2);
    }

    #[test]
    fn zero_and_negative_values_go_to_zero_bucket() {
        let mut s = QuantileSketch::new(0.01);
        s.insert(0.0);
        s.insert(-3.0);
        s.insert(1.0);
        assert_eq!(s.count(), 3);
        assert!(s.quantile(0.0) <= MIN_VALUE);
        assert!((s.quantile(1.0) - 1.0).abs() <= 0.01);
    }

    #[test]
    fn clear_resets() {
        let mut s = QuantileSketch::new(0.01);
        s.insert(5.0);
        s.clear();
        assert!(s.is_empty());
        assert!(s.quantile(0.5).is_nan());
    }
}
