//! Telemetry: request-lifecycle spans, a sim-time metrics registry, and
//! Perfetto/JSONL exporters.
//!
//! The crate has three parts:
//!
//! * [`span`] — [`SpanLog`], an append-only log of request-lifecycle span
//!   trees (arrival → queue wait → prefill → KV transfer → decode rounds)
//!   with parent and cause links.
//! * [`metrics`] — [`MetricsRegistry`], pre-registered counter/gauge/
//!   histogram handles with dense ids; a poller samples them into time
//!   series at a fixed sim-time interval.
//! * [`export`] — [`chrome_trace`] (Chrome Trace Event Format, loadable in
//!   Perfetto / `chrome://tracing`) and [`jsonl`].
//!
//! Everything follows the `TraceLog` discipline: disabled telemetry costs
//! one branch per call site, runs no label closures, and allocates nothing.
//! The observing layer is proven side-effect free by a differential test
//! (telemetry on vs. off produces bit-identical run results); to keep that
//! guarantee the registry poller is driven from the host's dispatch loop
//! via [`Telemetry::sample_due`] rather than by a queue event, so enabling
//! telemetry never changes event counts or tie-breaking.

pub mod export;
pub mod metrics;
pub mod observatory;
pub mod sketch;
pub mod span;

pub use export::{
    chrome_trace, jsonl, looks_like_trace_event_json, prometheus_text, slo_json, slo_jsonl,
    PID_CLUSTER, PID_METRICS, PID_REQUESTS, SUMMARY_QUANTILES,
};
pub use metrics::{labeled, CounterId, GaugeId, HistId, Histogram, MetricsRegistry, Sample, SketchId};
pub use observatory::{AttributionLedger, CostKind, SloCum, SloObservatory, SloPoint};
pub use sketch::QuantileSketch;
pub use span::{Span, SpanId, SpanKind, SpanLog};

use aegaeon_sim::{SimDur, SimTime};

/// Configuration for a run's telemetry: off by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Record spans and metrics.
    pub enabled: bool,
    /// Sim-time interval between registry samples.
    pub sample_every: SimDur,
    /// Width of the SLO observatory's sim-time windows.
    pub slo_window: SimDur,
}

impl TelemetrySpec {
    /// Telemetry off (the default; zero overhead beyond one branch per hook).
    pub fn disabled() -> TelemetrySpec {
        TelemetrySpec {
            enabled: false,
            sample_every: SimDur::from_millis(100),
            slo_window: SimDur::from_secs(10),
        }
    }

    /// Telemetry on with the default 100 ms sampling interval.
    pub fn enabled() -> TelemetrySpec {
        TelemetrySpec {
            enabled: true,
            ..TelemetrySpec::disabled()
        }
    }

    /// Telemetry on with a custom sampling interval.
    pub fn with_sample_every(sample_every: SimDur) -> TelemetrySpec {
        TelemetrySpec {
            enabled: true,
            sample_every,
            ..TelemetrySpec::disabled()
        }
    }
}

impl Default for TelemetrySpec {
    fn default() -> TelemetrySpec {
        TelemetrySpec::disabled()
    }
}

/// A run's telemetry state: the span log, the metrics registry, and the
/// sampling cursor for the dispatch-loop poller.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Request-lifecycle spans.
    pub spans: SpanLog,
    /// Counters, gauges, histograms and quantile sketches.
    pub metrics: MetricsRegistry,
    /// Windowed per-model SLO series (configured by the host, which knows
    /// the model count; stays inert until [`SloObservatory::new`] replaces
    /// it).
    pub slo: SloObservatory,
    /// Switch-cost attribution ledger (instances registered by the host).
    pub attrib: AttributionLedger,
    sample_every: SimDur,
    next_sample: SimTime,
}

impl Telemetry {
    /// Builds telemetry from a spec; disabled specs produce an inert value.
    pub fn new(spec: &TelemetrySpec) -> Telemetry {
        if !spec.enabled {
            return Telemetry::disabled();
        }
        Telemetry {
            spans: SpanLog::enabled(),
            metrics: MetricsRegistry::enabled(),
            slo: SloObservatory::disabled(),
            attrib: AttributionLedger::enabled(),
            sample_every: spec.sample_every.max(SimDur::from_nanos(1)),
            next_sample: SimTime::ZERO,
        }
    }

    /// An inert telemetry value (every hook is one branch).
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// True if this run records telemetry.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.spans.is_enabled()
    }

    /// Dispatch-loop poller: if a sample boundary has been reached, returns
    /// the boundary-quantized instant to stamp the sample with and advances
    /// the cursor. Call in a `while let Some(at) = …` loop, compute gauges,
    /// then call `metrics.sample(at)`.
    ///
    /// Sample instants are always exact multiples of `sample_every`
    /// regardless of the event times that triggered polling, and the poller
    /// never schedules queue events, so telemetry cannot perturb event
    /// counts or FIFO tie-breaking in the simulation.
    #[inline]
    pub fn sample_due(&mut self, now: SimTime) -> Option<SimTime> {
        if !self.is_enabled() || now < self.next_sample {
            return None;
        }
        let at = self.next_sample;
        self.next_sample = at + self.sample_every;
        Some(at)
    }

    /// End-of-run hook: closes any spans still open at `end` and takes one
    /// final registry sample stamped at the last boundary not after `end`.
    pub fn finish(&mut self, end: SimTime) {
        if !self.is_enabled() {
            return;
        }
        self.spans.close_open(end);
        self.slo.finish();
        let step = self.sample_every.as_nanos().max(1);
        let at = SimTime::from_nanos(end.as_nanos() / step * step);
        self.metrics.sample(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spec_builds_inert_telemetry() {
        let t = Telemetry::new(&TelemetrySpec::disabled());
        assert!(!t.is_enabled());
        let mut t = t;
        assert!(t.sample_due(SimTime::from_secs_f64(100.0)).is_none());
    }

    #[test]
    fn sample_due_quantizes_to_boundaries() {
        let spec = TelemetrySpec::with_sample_every(SimDur::from_millis(10));
        let mut t = Telemetry::new(&spec);
        // First event at t=3ms: boundary 0 is due.
        assert_eq!(t.sample_due(SimTime::from_nanos(3_000_000)), Some(SimTime::ZERO));
        assert_eq!(t.sample_due(SimTime::from_nanos(3_000_000)), None);
        // An event at t=27ms drains boundaries 10ms and 20ms.
        let now = SimTime::from_nanos(27_000_000);
        assert_eq!(t.sample_due(now), Some(SimTime::from_nanos(10_000_000)));
        assert_eq!(t.sample_due(now), Some(SimTime::from_nanos(20_000_000)));
        assert_eq!(t.sample_due(now), None);
    }

    #[test]
    fn finish_closes_spans_and_takes_final_sample() {
        let spec = TelemetrySpec::with_sample_every(SimDur::from_millis(10));
        let mut t = Telemetry::new(&spec);
        let g = t.metrics.gauge("depth");
        t.metrics.set(g, 7.0);
        let s = t.spans.start(|| "req0", SpanKind::Request, SimTime::ZERO, SpanId::NONE, SpanId::NONE, || "r");
        let _ = s;
        t.finish(SimTime::from_nanos(25_000_000));
        assert!(t.spans.validate().is_none(), "{:?}", t.spans.validate());
        let (_, samples) = t.metrics.gauge_series().next().unwrap();
        assert_eq!(samples.last().unwrap().at, SimTime::from_nanos(20_000_000));
        assert_eq!(samples.last().unwrap().value, 7.0);
    }
}
