//! Sim-time metrics registry.
//!
//! Components register named instruments once at setup time (string work is
//! fine there) and get back dense integer ids; the hot-path operations —
//! [`inc`](MetricsRegistry::inc), [`set`](MetricsRegistry::set),
//! [`observe`](MetricsRegistry::observe) — are an index plus an add, with a
//! single branch when the registry is disabled. A poller calls
//! [`sample`](MetricsRegistry::sample) at a fixed sim-time interval to
//! snapshot every counter and gauge into a time series; histograms
//! accumulate over the whole run.
//!
//! Sample timestamps are quantized to multiples of the sampling interval so
//! a series is reproducible regardless of the exact event times that
//! triggered the poll.

use aegaeon_sim::SimTime;

use crate::sketch::QuantileSketch;

/// Builds a labeled instrument name (`name{label="value"}`) with the label
/// value escaped per the Prometheus text exposition rules (`\\`, `\"`,
/// `\n`). The registry treats the result as an opaque name; the exporter
/// splits it back apart when it needs to merge extra labels (summaries).
pub fn labeled(name: &str, label: &str, value: &str) -> String {
    let mut out = String::with_capacity(name.len() + label.len() + value.len() + 6);
    out.push_str(name);
    out.push('{');
    out.push_str(label);
    out.push_str("=\"");
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push_str("\"}");
    out
}

/// Handle to a registered counter (monotone, reset never).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(pub u16);

/// Handle to a registered gauge (set to the current level each poll).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(pub u16);

/// Handle to a registered histogram (fixed bounds, counts + sum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistId(pub u16);

/// Handle to a registered quantile sketch (summary-style instrument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SketchId(pub u16);

impl CounterId {
    /// Null handle returned by a disabled registry; all ops on it no-op.
    pub const NONE: CounterId = CounterId(u16::MAX);
}
impl GaugeId {
    /// Null handle returned by a disabled registry; all ops on it no-op.
    pub const NONE: GaugeId = GaugeId(u16::MAX);
}
impl HistId {
    /// Null handle returned by a disabled registry; all ops on it no-op.
    pub const NONE: HistId = HistId(u16::MAX);
}
impl SketchId {
    /// Null handle returned by a disabled registry; all ops on it no-op.
    pub const NONE: SketchId = SketchId(u16::MAX);
}

/// One sampled point of a counter or gauge series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Quantized sample instant (a multiple of the sampling interval).
    pub at: SimTime,
    /// Instrument value at that instant.
    pub value: f64,
}

#[derive(Debug)]
struct Series {
    name: String,
    value: f64,
    samples: Vec<Sample>,
}

/// A fixed-bound histogram: `counts[i]` is the number of observations
/// `<= bounds[i]`, with one overflow bucket at the end.
#[derive(Debug)]
pub struct Histogram {
    /// Instrument name, e.g. `"ttft_ms"`.
    pub name: String,
    /// Ascending upper bounds; observations above the last land in the
    /// overflow bucket.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` bucket counts.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub n: u64,
}

/// Pre-registered counters, gauges and histograms with dense ids.
///
/// Disabled by default; a disabled registry hands out null ids and every
/// hot-path operation on it is one branch.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: Vec<Series>,
    gauges: Vec<Series>,
    hists: Vec<Histogram>,
    sketches: Vec<(String, QuantileSketch)>,
}

impl MetricsRegistry {
    /// Creates a disabled registry (null ids, no-op operations).
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Creates an enabled registry.
    pub fn enabled() -> MetricsRegistry {
        MetricsRegistry {
            enabled: true,
            ..MetricsRegistry::default()
        }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers a counter (setup path; do not call per event).
    pub fn counter(&mut self, name: &str) -> CounterId {
        if !self.enabled {
            return CounterId::NONE;
        }
        debug_assert!(
            !self.counters.iter().any(|s| s.name == name),
            "duplicate counter {name}"
        );
        self.counters.push(Series {
            name: name.to_string(),
            value: 0.0,
            samples: Vec::new(),
        });
        CounterId((self.counters.len() - 1) as u16)
    }

    /// Registers a gauge (setup path).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if !self.enabled {
            return GaugeId::NONE;
        }
        debug_assert!(
            !self.gauges.iter().any(|s| s.name == name),
            "duplicate gauge {name}"
        );
        self.gauges.push(Series {
            name: name.to_string(),
            value: 0.0,
            samples: Vec::new(),
        });
        GaugeId((self.gauges.len() - 1) as u16)
    }

    /// Registers a histogram with ascending bucket `bounds` (setup path).
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistId {
        if !self.enabled {
            return HistId::NONE;
        }
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be ascending"
        );
        self.hists.push(Histogram {
            name: name.to_string(),
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            n: 0,
        });
        HistId((self.hists.len() - 1) as u16)
    }

    /// Registers a quantile sketch with relative accuracy `alpha` (setup
    /// path). Sketches render as Prometheus summaries.
    pub fn sketch(&mut self, name: &str, alpha: f64) -> SketchId {
        if !self.enabled {
            return SketchId::NONE;
        }
        debug_assert!(
            !self.sketches.iter().any(|(n, _)| n == name),
            "duplicate sketch {name}"
        );
        self.sketches
            .push((name.to_string(), QuantileSketch::new(alpha)));
        SketchId((self.sketches.len() - 1) as u16)
    }

    /// Records one sketch observation. One branch when disabled.
    #[inline]
    pub fn observe_sketch(&mut self, id: SketchId, value: f64) {
        if !self.enabled || id == SketchId::NONE {
            return;
        }
        self.sketches[id.0 as usize].1.insert(value);
    }

    /// All sketches as `(name, sketch)` in registration order.
    pub fn sketches(&self) -> impl Iterator<Item = (&str, &QuantileSketch)> {
        self.sketches.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Adds `by` to a counter. One branch when disabled or null-id.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        if !self.enabled || id == CounterId::NONE {
            return;
        }
        self.counters[id.0 as usize].value += by as f64;
    }

    /// Sets a counter to an absolute value (for surfacing counters that are
    /// already maintained elsewhere, e.g. `EventQueue::events_dispatched`).
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, value: u64) {
        if !self.enabled || id == CounterId::NONE {
            return;
        }
        self.counters[id.0 as usize].value = value as f64;
    }

    /// Sets a gauge level. One branch when disabled or null-id.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        if !self.enabled || id == GaugeId::NONE {
            return;
        }
        self.gauges[id.0 as usize].value = value;
    }

    /// Records one histogram observation. One branch when disabled.
    #[inline]
    pub fn observe(&mut self, id: HistId, value: f64) {
        if !self.enabled || id == HistId::NONE {
            return;
        }
        let h = &mut self.hists[id.0 as usize];
        let bucket = h.bounds.partition_point(|&b| value > b);
        h.counts[bucket] += 1;
        h.sum += value;
        h.n += 1;
    }

    /// Current value of a counter (for tests and run-level summaries).
    pub fn counter_value(&self, id: CounterId) -> f64 {
        if !self.enabled || id == CounterId::NONE {
            return 0.0;
        }
        self.counters[id.0 as usize].value
    }

    /// Snapshots every counter and gauge at quantized instant `at`.
    ///
    /// The poller is responsible for passing a boundary-quantized `at` (a
    /// multiple of the sampling interval) so series are independent of the
    /// precise event times that triggered polling.
    pub fn sample(&mut self, at: SimTime) {
        if !self.enabled {
            return;
        }
        for s in self.counters.iter_mut().chain(self.gauges.iter_mut()) {
            s.samples.push(Sample { at, value: s.value });
        }
    }

    /// All counter series as `(name, samples)` in registration order.
    pub fn counter_series(&self) -> impl Iterator<Item = (&str, &[Sample])> {
        self.counters.iter().map(|s| (s.name.as_str(), s.samples.as_slice()))
    }

    /// All gauge series as `(name, samples)` in registration order.
    pub fn gauge_series(&self) -> impl Iterator<Item = (&str, &[Sample])> {
        self.gauges.iter().map(|s| (s.name.as_str(), s.samples.as_slice()))
    }

    /// All histograms in registration order.
    pub fn histograms(&self) -> &[Histogram] {
        &self.hists
    }

    /// Final `(name, value)` of every counter, in registration order.
    pub fn counter_totals(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|s| (s.name.as_str(), s.value))
    }

    /// Current `(name, value)` of every gauge, in registration order (the
    /// live value, independent of whether a sample boundary has passed).
    pub fn gauge_values(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|s| (s.name.as_str(), s.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn disabled_registry_is_inert() {
        let mut reg = MetricsRegistry::disabled();
        let c = reg.counter("x");
        let g = reg.gauge("y");
        let h = reg.histogram("z", &[1.0]);
        assert_eq!(c, CounterId::NONE);
        assert_eq!(g, GaugeId::NONE);
        assert_eq!(h, HistId::NONE);
        reg.inc(c, 3);
        reg.set(g, 5.0);
        reg.observe(h, 0.5);
        reg.sample(t(1.0));
        assert_eq!(reg.counter_series().count(), 0);
        assert_eq!(reg.gauge_series().count(), 0);
        assert!(reg.histograms().is_empty());
    }

    #[test]
    fn counters_and_gauges_sample_into_series() {
        let mut reg = MetricsRegistry::enabled();
        let c = reg.counter("switches");
        let g = reg.gauge("queue_depth");
        reg.inc(c, 1);
        reg.set(g, 4.0);
        reg.sample(t(1.0));
        reg.inc(c, 2);
        reg.set(g, 2.0);
        reg.sample(t(2.0));
        let (name, samples) = reg.counter_series().next().unwrap();
        assert_eq!(name, "switches");
        assert_eq!(samples, &[Sample { at: t(1.0), value: 1.0 }, Sample { at: t(2.0), value: 3.0 }]);
        let (gname, gsamples) = reg.gauge_series().next().unwrap();
        assert_eq!(gname, "queue_depth");
        assert_eq!(gsamples[1].value, 2.0);
        assert_eq!(reg.counter_value(c), 3.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut reg = MetricsRegistry::enabled();
        let h = reg.histogram("lat", &[1.0, 10.0]);
        reg.observe(h, 0.5); // <= 1.0
        reg.observe(h, 1.0); // <= 1.0 (inclusive upper bound)
        reg.observe(h, 5.0); // <= 10.0
        reg.observe(h, 50.0); // overflow
        let hist = &reg.histograms()[0];
        assert_eq!(hist.counts, vec![2, 1, 1]);
        assert_eq!(hist.n, 4);
        assert!((hist.sum - 56.5).abs() < 1e-12);
    }

    #[test]
    fn sketches_register_and_observe() {
        let mut reg = MetricsRegistry::enabled();
        let s = reg.sketch("ttft_seconds", 0.01);
        reg.observe_sketch(s, 0.5);
        reg.observe_sketch(s, 1.5);
        let (name, sk) = reg.sketches().next().unwrap();
        assert_eq!(name, "ttft_seconds");
        assert_eq!(sk.count(), 2);
        let mut off = MetricsRegistry::disabled();
        assert_eq!(off.sketch("x", 0.01), SketchId::NONE);
        off.observe_sketch(SketchId::NONE, 1.0);
        assert_eq!(off.sketches().count(), 0);
    }

    #[test]
    fn labeled_escapes_label_values() {
        assert_eq!(labeled("ttft", "model", "m0"), "ttft{model=\"m0\"}");
        assert_eq!(
            labeled("x", "l", "a\"b\\c\nd"),
            "x{l=\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn set_counter_overwrites_for_surfaced_stats() {
        let mut reg = MetricsRegistry::enabled();
        let c = reg.counter("events_dispatched");
        reg.set_counter(c, 1234);
        assert_eq!(reg.counter_value(c), 1234.0);
    }
}
