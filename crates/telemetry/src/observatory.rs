//! The SLO observatory: windowed per-model SLO series and the
//! switch-cost attribution ledger.
//!
//! Both live inside [`Telemetry`](crate::Telemetry), which run results
//! exclude from their fingerprint — so, like spans and the metrics
//! registry, everything here is observer-only by construction. Both follow
//! the registry discipline: a disabled value costs one branch per call and
//! allocates nothing.
//!
//! # Windowing
//!
//! The observatory slices sim time into fixed windows (`window_ns` wide,
//! aligned to multiples of the width). A request is attributed to the
//! window of its **retirement** instant — retirement is the only moment
//! all of its token timings are known, and it keeps the feeding hook a
//! single call site. Hosts call [`SloObservatory::observe_request`] with
//! the retirement time; the observatory seals every window boundary that
//! has passed first, so points are emitted in nondecreasing window order
//! regardless of event jitter. Empty windows are skipped (a quiescent gap
//! produces no points rather than a run of zeros).
//!
//! # Attribution
//!
//! The [`AttributionLedger`] answers the paper's auto-scaling-overhead
//! question: of each instance's busy seconds, how many were useful
//! (prefill/decode execution) versus overhead (model switches, KV swap
//! traffic)? Cells are keyed `(instance, model, kind)` with instances
//! registered once at setup, so the hot-path [`AttributionLedger::add`]
//! is a BTreeMap bump on integer keys — deterministic to iterate and
//! mergeable like everything else in this crate.

use crate::sketch::QuantileSketch;

/// Relative accuracy used by every observatory sketch (1%).
pub const SLO_SKETCH_ALPHA: f64 = 0.01;

/// One sealed window of one model's SLO series.
#[derive(Debug, Clone, PartialEq)]
pub struct SloPoint {
    /// Exclusive end of the window (a multiple of the window width, except
    /// for the final partial window sealed by `finish`).
    pub window_end_ns: u64,
    /// Model index.
    pub model: u32,
    /// Requests retired in this window.
    pub requests: u64,
    /// Tokens produced by those requests.
    pub tokens: u64,
    /// Tokens that met their per-token deadline.
    pub tokens_met: u64,
    /// TTFT quantiles over requests retired in the window (NaN when none).
    pub ttft_p50: f64,
    /// 90th-percentile TTFT.
    pub ttft_p90: f64,
    /// 99th-percentile TTFT.
    pub ttft_p99: f64,
    /// Median time-between-tokens.
    pub tbt_p50: f64,
    /// 90th-percentile TBT.
    pub tbt_p90: f64,
    /// 99th-percentile TBT.
    pub tbt_p99: f64,
    /// `tokens_met / tokens` (1.0 for an all-met or empty window).
    pub attainment: f64,
    /// Tokens per simulated second of window width.
    pub goodput_tps: f64,
}

/// Per-model accumulator for the currently open window.
#[derive(Debug)]
struct ModelWindow {
    ttft: QuantileSketch,
    tbt: QuantileSketch,
    requests: u64,
    tokens: u64,
    tokens_met: u64,
}

impl ModelWindow {
    fn new() -> ModelWindow {
        ModelWindow {
            ttft: QuantileSketch::new(SLO_SKETCH_ALPHA),
            tbt: QuantileSketch::new(SLO_SKETCH_ALPHA),
            requests: 0,
            tokens: 0,
            tokens_met: 0,
        }
    }

    fn clear(&mut self) {
        self.ttft.clear();
        self.tbt.clear();
        self.requests = 0;
        self.tokens = 0;
        self.tokens_met = 0;
    }
}

/// Cumulative (whole-run) per-model totals.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloCum {
    /// Requests retired.
    pub requests: u64,
    /// Tokens produced.
    pub tokens: u64,
    /// Tokens that met their deadline.
    pub tokens_met: u64,
}

impl SloCum {
    /// Cumulative attainment ratio (1.0 when no tokens yet).
    pub fn attainment(&self) -> f64 {
        if self.tokens == 0 {
            1.0
        } else {
            self.tokens_met as f64 / self.tokens as f64
        }
    }
}

/// Cumulative (whole-run) per-model agentic-turn series.
///
/// Turn latency is **turn-scoped**: arrival → final token of one session
/// turn. The think gap between a turn's completion and the next turn's
/// arrival is client time, not serving time — turns are separate requests,
/// so inter-turn gaps never enter the TBT sketches by construction, and
/// this series keeps them out of turn latency too (each turn's clock
/// starts at its own arrival).
#[derive(Debug)]
pub struct TurnCum {
    /// Session turns retired (requests with a session id).
    pub turns: u64,
    /// Turns that prefilled only their delta off a retained prefix.
    pub prefix_hits: u64,
    /// Deepest turn index observed, plus one (session depth reached).
    pub max_depth: u32,
    latency: QuantileSketch,
}

impl TurnCum {
    fn new() -> TurnCum {
        TurnCum {
            turns: 0,
            prefix_hits: 0,
            max_depth: 0,
            latency: QuantileSketch::new(SLO_SKETCH_ALPHA),
        }
    }

    /// Turn-latency quantile (NaN when no turns retired).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        self.latency.quantile(q)
    }

    /// `prefix_hits / turns` (0.0 when no turns retired).
    pub fn prefix_hit_rate(&self) -> f64 {
        if self.turns == 0 {
            0.0
        } else {
            self.prefix_hits as f64 / self.turns as f64
        }
    }
}

/// Windowed per-model SLO series (see module docs).
#[derive(Debug, Default)]
pub struct SloObservatory {
    enabled: bool,
    window_ns: u64,
    /// Exclusive end of the currently open window.
    next_roll: u64,
    cur: Vec<ModelWindow>,
    cum: Vec<SloCum>,
    points: Vec<SloPoint>,
    turns: Vec<TurnCum>,
}

impl SloObservatory {
    /// An enabled observatory for `n_models` models with `window_ns`-wide
    /// windows (clamped to ≥ 1 ns).
    pub fn new(n_models: usize, window_ns: u64) -> SloObservatory {
        let window_ns = window_ns.max(1);
        SloObservatory {
            enabled: true,
            window_ns,
            next_roll: window_ns,
            cur: (0..n_models).map(|_| ModelWindow::new()).collect(),
            cum: vec![SloCum::default(); n_models],
            points: Vec::new(),
            turns: (0..n_models).map(|_| TurnCum::new()).collect(),
        }
    }

    /// An inert observatory (the `Default`).
    pub fn disabled() -> SloObservatory {
        SloObservatory::default()
    }

    /// True if this observatory records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of models tracked.
    pub fn n_models(&self) -> usize {
        self.cum.len()
    }

    /// Seals every window whose end is ≤ `now_ns`.
    fn advance(&mut self, now_ns: u64) {
        while self.next_roll <= now_ns {
            let end = self.next_roll;
            self.seal(end);
            // Fast-forward across fully idle stretches instead of stepping
            // one empty window at a time.
            if self.cur.iter().all(|w| w.requests == 0) && self.next_roll + self.window_ns <= now_ns
            {
                let gap = (now_ns - self.next_roll) / self.window_ns;
                self.next_roll += gap * self.window_ns;
            }
            self.next_roll += self.window_ns;
        }
    }

    fn seal(&mut self, end_ns: u64) {
        let window_secs = self.window_ns as f64 / 1e9;
        for (m, w) in self.cur.iter_mut().enumerate() {
            if w.requests == 0 {
                continue;
            }
            let attainment = if w.tokens == 0 {
                1.0
            } else {
                w.tokens_met as f64 / w.tokens as f64
            };
            self.points.push(SloPoint {
                window_end_ns: end_ns,
                model: m as u32,
                requests: w.requests,
                tokens: w.tokens,
                tokens_met: w.tokens_met,
                ttft_p50: w.ttft.quantile(0.50),
                ttft_p90: w.ttft.quantile(0.90),
                ttft_p99: w.ttft.quantile(0.99),
                tbt_p50: w.tbt.quantile(0.50),
                tbt_p90: w.tbt.quantile(0.90),
                tbt_p99: w.tbt.quantile(0.99),
                attainment,
                goodput_tps: w.tokens as f64 / window_secs,
            });
            w.clear();
        }
    }

    /// Records one retired request: its TTFT, each inter-token gap, and how
    /// many of its `tokens` met their deadline. `retired_ns` drives window
    /// sealing and must be nondecreasing across calls (event time is).
    pub fn observe_request(
        &mut self,
        retired_ns: u64,
        model: u32,
        ttft_secs: f64,
        tbts_secs: &[f64],
        tokens: u64,
        tokens_met: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.advance(retired_ns);
        let w = &mut self.cur[model as usize];
        w.ttft.insert(ttft_secs);
        for &t in tbts_secs {
            w.tbt.insert(t);
        }
        w.requests += 1;
        w.tokens += tokens;
        w.tokens_met += tokens_met;
        let c = &mut self.cum[model as usize];
        c.requests += 1;
        c.tokens += tokens;
        c.tokens_met += tokens_met;
    }

    /// Records one retired **session turn** on top of its
    /// [`SloObservatory::observe_request`] call. `latency_secs` is
    /// turn-scoped (this turn's arrival → its final token); the preceding
    /// think gap is excluded because the turn is its own request — see
    /// [`TurnCum`].
    pub fn observe_turn(
        &mut self,
        retired_ns: u64,
        model: u32,
        turn_index: u32,
        latency_secs: f64,
        prefix_hit: bool,
    ) {
        if !self.enabled {
            return;
        }
        self.advance(retired_ns);
        let t = &mut self.turns[model as usize];
        t.turns += 1;
        t.prefix_hits += u64::from(prefix_hit);
        t.max_depth = t.max_depth.max(turn_index + 1);
        t.latency.insert(latency_secs);
    }

    /// Cumulative agentic-turn series per model (empty when disabled).
    pub fn turn_stats(&self) -> &[TurnCum] {
        &self.turns
    }

    /// End-of-run hook: seals the final (possibly partial) window at its
    /// natural boundary so no retired request is missing from the series.
    pub fn finish(&mut self) {
        if !self.enabled {
            return;
        }
        let end = self.next_roll;
        self.seal(end);
        self.next_roll = end + self.window_ns;
    }

    /// Every sealed point, in (window, model) order.
    pub fn points(&self) -> &[SloPoint] {
        &self.points
    }

    /// Cumulative totals per model.
    pub fn cumulative(&self) -> &[SloCum] {
        &self.cum
    }

    /// Cumulative attainment for one model (1.0 when out of range or idle).
    pub fn attainment(&self, model: usize) -> f64 {
        self.cum.get(model).map_or(1.0, |c| c.attainment())
    }
}

/// Where an instance's busy seconds went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostKind {
    /// Loading/activating a model's weights (auto-scaling switch).
    ModelSwitch,
    /// KV offload traffic GPU → host.
    KvSwapOut,
    /// KV swap-in traffic host → GPU.
    KvSwapIn,
    /// Useful prefill execution.
    PrefillExec,
    /// Useful decode execution.
    DecodeExec,
}

impl CostKind {
    /// Stable snake_case name for exports.
    pub fn name(&self) -> &'static str {
        match self {
            CostKind::ModelSwitch => "model_switch",
            CostKind::KvSwapOut => "kv_swap_out",
            CostKind::KvSwapIn => "kv_swap_in",
            CostKind::PrefillExec => "prefill_exec",
            CostKind::DecodeExec => "decode_exec",
        }
    }

    /// True for time spent making tokens rather than moving state.
    pub fn is_useful(&self) -> bool {
        matches!(self, CostKind::PrefillExec | CostKind::DecodeExec)
    }

    /// All kinds, in export order.
    pub const ALL: [CostKind; 5] = [
        CostKind::ModelSwitch,
        CostKind::KvSwapOut,
        CostKind::KvSwapIn,
        CostKind::PrefillExec,
        CostKind::DecodeExec,
    ];
}

/// Seconds attributed per `(instance, model, kind)` cell (see module docs).
#[derive(Debug, Default)]
pub struct AttributionLedger {
    enabled: bool,
    instances: Vec<String>,
    cells: std::collections::BTreeMap<(u32, u32, CostKind), f64>,
}

impl AttributionLedger {
    /// An enabled, empty ledger.
    pub fn enabled() -> AttributionLedger {
        AttributionLedger {
            enabled: true,
            ..AttributionLedger::default()
        }
    }

    /// True if this ledger records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers an instance (setup path) and returns its dense id.
    pub fn instance(&mut self, name: &str) -> u32 {
        if !self.enabled {
            return u32::MAX;
        }
        self.instances.push(name.to_string());
        (self.instances.len() - 1) as u32
    }

    /// Instance names in registration order.
    pub fn instance_names(&self) -> &[String] {
        &self.instances
    }

    /// Adds `secs` to the `(inst, model, kind)` cell. One branch when
    /// disabled (null instance ids from a disabled ledger also no-op).
    #[inline]
    pub fn add(&mut self, inst: u32, model: u32, kind: CostKind, secs: f64) {
        if !self.enabled || inst == u32::MAX {
            return;
        }
        *self.cells.entry((inst, model, kind)).or_insert(0.0) += secs;
    }

    /// Every cell as `(instance name, model, kind, secs)` in key order.
    pub fn rows(&self) -> impl Iterator<Item = (&str, u32, CostKind, f64)> {
        self.cells
            .iter()
            .map(|(&(i, m, k), &s)| (self.instances[i as usize].as_str(), m, k, s))
    }

    /// Total seconds in useful (prefill/decode) cells.
    pub fn useful_secs(&self) -> f64 {
        self.cells
            .iter()
            .filter(|((_, _, k), _)| k.is_useful())
            .map(|(_, &s)| s)
            .sum()
    }

    /// Total seconds in overhead (switch/swap) cells.
    pub fn overhead_secs(&self) -> f64 {
        self.cells
            .iter()
            .filter(|((_, _, k), _)| !k.is_useful())
            .map(|(_, &s)| s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observatory_is_inert() {
        let mut o = SloObservatory::disabled();
        o.observe_request(5_000_000_000, 0, 0.1, &[0.05], 3, 3);
        o.finish();
        assert!(o.points().is_empty());
        assert_eq!(o.attainment(0), 1.0);
    }

    #[test]
    fn windows_seal_in_order_and_skip_empty() {
        let w = 10_000_000_000u64; // 10 s
        let mut o = SloObservatory::new(2, w);
        o.observe_request(1_000_000_000, 0, 0.2, &[0.05, 0.06], 3, 2);
        o.observe_request(2_000_000_000, 0, 0.4, &[], 1, 1);
        // Long idle gap, then traffic for model 1 in window [40s, 50s).
        o.observe_request(41 * 1_000_000_000, 1, 1.0, &[0.2], 2, 0);
        o.finish();
        let pts = o.points();
        assert_eq!(pts.len(), 2, "{pts:?}");
        assert_eq!(pts[0].window_end_ns, w);
        assert_eq!(pts[0].model, 0);
        assert_eq!(pts[0].requests, 2);
        assert_eq!(pts[0].tokens, 4);
        assert_eq!(pts[0].tokens_met, 3);
        assert!((pts[0].attainment - 0.75).abs() < 1e-12);
        assert!((pts[0].goodput_tps - 0.4).abs() < 1e-12);
        assert_eq!(pts[1].window_end_ns, 5 * w);
        assert_eq!(pts[1].model, 1);
        assert!((pts[1].attainment - 0.0).abs() < 1e-12);
        // Cumulative totals survive sealing.
        assert!((o.attainment(0) - 0.75).abs() < 1e-12);
        assert_eq!(o.cumulative()[1].tokens, 2);
    }

    #[test]
    fn quantiles_come_from_window_sketches() {
        let mut o = SloObservatory::new(1, 1_000_000_000);
        for i in 1..=100 {
            o.observe_request(10, 0, i as f64 * 0.01, &[], 1, 1);
        }
        o.finish();
        let p = &o.points()[0];
        assert!((p.ttft_p50 - 0.50).abs() <= 0.50 * 0.01 + 1e-9);
        assert!((p.ttft_p99 - 0.99).abs() <= 0.99 * 0.01 + 1e-9);
        assert!(p.tbt_p50.is_nan(), "no TBT samples recorded");
    }

    /// A 30-second think gap between two turns of one session must never
    /// surface in the TBT quantiles: each turn is its own request, so TBT
    /// only sees intra-request gaps, and the turn series carries the
    /// turn-scoped latencies separately.
    #[test]
    fn think_gaps_stay_out_of_tbt_quantiles() {
        let w = 60 * 1_000_000_000u64;
        let mut o = SloObservatory::new(1, w);
        // Turn 0 retires at t=2s; the client "thinks" for 30 s; turn 1
        // arrives at t=32s and retires at t=33s. Intra-request gaps are
        // all 50 ms.
        o.observe_request(2_000_000_000, 0, 0.3, &[0.05, 0.05], 3, 3);
        o.observe_turn(2_000_000_000, 0, 0, 2.0, false);
        o.observe_request(33_000_000_000, 0, 0.2, &[0.05], 2, 2);
        o.observe_turn(33_000_000_000, 0, 1, 1.0, true);
        o.finish();
        let p = &o.points()[0];
        assert!(
            p.tbt_p99 <= 0.05 * (1.0 + SLO_SKETCH_ALPHA) + 1e-9,
            "think gap leaked into TBT: p99={}",
            p.tbt_p99
        );
        let t = &o.turn_stats()[0];
        assert_eq!(t.turns, 2);
        assert_eq!(t.prefix_hits, 1);
        assert_eq!(t.max_depth, 2);
        assert!((t.prefix_hit_rate() - 0.5).abs() < 1e-12);
        // Turn latency is turn-scoped: its max is 2 s, not 31 s.
        assert!(t.latency_quantile(0.99) <= 2.0 * (1.0 + SLO_SKETCH_ALPHA));
    }

    #[test]
    fn ledger_accumulates_and_splits_useful_vs_overhead() {
        let mut l = AttributionLedger::enabled();
        let p0 = l.instance("p0");
        let d0 = l.instance("d0");
        l.add(p0, 0, CostKind::PrefillExec, 2.0);
        l.add(p0, 0, CostKind::ModelSwitch, 1.0);
        l.add(p0, 0, CostKind::PrefillExec, 0.5);
        l.add(d0, 1, CostKind::DecodeExec, 4.0);
        l.add(d0, 1, CostKind::KvSwapIn, 0.25);
        assert!((l.useful_secs() - 6.5).abs() < 1e-12);
        assert!((l.overhead_secs() - 1.25).abs() < 1e-12);
        let rows: Vec<_> = l.rows().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0], ("p0", 0, CostKind::ModelSwitch, 1.0));
    }

    #[test]
    fn disabled_ledger_is_inert() {
        let mut l = AttributionLedger::default();
        let i = l.instance("x");
        assert_eq!(i, u32::MAX);
        l.add(i, 0, CostKind::DecodeExec, 1.0);
        assert_eq!(l.rows().count(), 0);
    }
}
