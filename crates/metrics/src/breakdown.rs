//! Request latency breakdown (Figure 14).
//!
//! Each request's lifetime is decomposed into prefill waiting, prefill
//! execution, decoding waiting, decoding execution, plus the two overhead
//! terms introduced by KV-cache management: control overhead (index
//! tracking, event manipulation) and data overhead (explicit waiting for KV
//! transfers). The figure reports the share of total time spent in each.

use aegaeon_sim::SimDur;

/// A lifetime stage of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Queued before prefill.
    PrefillWait,
    /// Executing prefill.
    PrefillExec,
    /// Waiting in a decode work list.
    DecodeWait,
    /// Executing decode steps.
    DecodeExec,
    /// KV-cache control-plane work (indices, events).
    ControlOverhead,
    /// Blocking waits on KV-cache data transfers.
    DataOverhead,
}

impl Stage {
    /// All stages in reporting order.
    pub const ALL: [Stage; 6] = [
        Stage::PrefillWait,
        Stage::PrefillExec,
        Stage::DecodeWait,
        Stage::DecodeExec,
        Stage::ControlOverhead,
        Stage::DataOverhead,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::PrefillWait => "Prefill Waiting",
            Stage::PrefillExec => "Prefill Execution",
            Stage::DecodeWait => "Decoding Waiting",
            Stage::DecodeExec => "Decoding Execution",
            Stage::ControlOverhead => "Control Overhead",
            Stage::DataOverhead => "Data Overhead",
        }
    }

    fn index(&self) -> usize {
        Stage::ALL.iter().position(|s| s == self).expect("stage in ALL")
    }
}

/// Accumulates stage durations across all requests of a run.
#[derive(Debug, Clone, Default)]
pub struct BreakdownAcc {
    totals: [f64; 6],
}

impl BreakdownAcc {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `dur` to a stage.
    pub fn add(&mut self, stage: Stage, dur: SimDur) {
        self.totals[stage.index()] += dur.as_secs_f64();
    }

    /// Adds seconds to a stage.
    pub fn add_secs(&mut self, stage: Stage, secs: f64) {
        debug_assert!(secs >= -1e-9, "negative stage duration {secs}");
        self.totals[stage.index()] += secs.max(0.0);
    }

    /// Total seconds across stages.
    pub fn total(&self) -> f64 {
        self.totals.iter().sum()
    }

    /// Fraction of total per stage, in [`Stage::ALL`] order.
    pub fn fractions(&self) -> [f64; 6] {
        let t = self.total();
        if t == 0.0 {
            return [0.0; 6];
        }
        let mut out = [0.0; 6];
        for (o, x) in out.iter_mut().zip(self.totals) {
            *o = x / t;
        }
        out
    }

    /// Raw seconds per stage.
    pub fn seconds(&self) -> [f64; 6] {
        self.totals
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &BreakdownAcc) {
        for (a, b) in self.totals.iter_mut().zip(other.totals) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let mut acc = BreakdownAcc::new();
        acc.add(Stage::PrefillWait, SimDur::from_secs(1));
        acc.add(Stage::DecodeExec, SimDur::from_secs(3));
        let f = acc.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((f[0] - 0.25).abs() < 1e-9);
        assert!((f[3] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = BreakdownAcc::new();
        a.add_secs(Stage::ControlOverhead, 1.0);
        let mut b = BreakdownAcc::new();
        b.add_secs(Stage::ControlOverhead, 2.0);
        b.add_secs(Stage::DataOverhead, 1.0);
        a.merge(&b);
        assert!((a.seconds()[4] - 3.0).abs() < 1e-9);
        assert!((a.total() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_fractions_are_zero() {
        assert_eq!(BreakdownAcc::new().fractions(), [0.0; 6]);
    }
}
