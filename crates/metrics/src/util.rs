//! Time-bucketed accumulation for utilization timelines (Figure 18).

use aegaeon_sim::{SimDur, SimTime};

/// Accumulates a quantity (e.g. GPU busy seconds) into fixed-width time
/// buckets; dividing by bucket width and capacity yields utilization.
#[derive(Debug, Clone)]
pub struct TimeBuckets {
    width: SimDur,
    totals: Vec<f64>,
}

impl TimeBuckets {
    /// Creates buckets of `width` covering `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: SimDur, horizon: SimTime) -> Self {
        assert!(!width.is_zero(), "bucket width must be positive");
        let n = horizon.as_nanos().div_ceil(width.as_nanos());
        TimeBuckets {
            width,
            totals: vec![0.0; n as usize],
        }
    }

    /// Adds `value`, spread uniformly over `[start, end)`, into the buckets
    /// it overlaps. Intervals beyond the horizon are clipped.
    pub fn add_interval(&mut self, start: SimTime, end: SimTime, value: f64) {
        if end <= start || self.totals.is_empty() {
            return;
        }
        let span = (end - start).as_secs_f64();
        let w = self.width.as_nanos();
        let mut cur = start.as_nanos();
        let end_ns = end.as_nanos().min(self.totals.len() as u64 * w);
        while cur < end_ns {
            let b = (cur / w) as usize;
            let bucket_end = (b as u64 + 1) * w;
            let seg_end = bucket_end.min(end_ns);
            let frac = (seg_end - cur) as f64 / 1e9 / span;
            self.totals[b] += value * frac;
            cur = seg_end;
        }
    }

    /// Adds `value` entirely into the bucket containing `t`.
    pub fn add_at(&mut self, t: SimTime, value: f64) {
        let b = (t.as_nanos() / self.width.as_nanos()) as usize;
        if let Some(x) = self.totals.get_mut(b) {
            *x += value;
        }
    }

    /// Bucket totals.
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// Totals divided by `denom` (e.g. bucket-seconds × GPU count to get
    /// average utilization).
    pub fn normalized(&self, denom: f64) -> Vec<f64> {
        self.totals.iter().map(|x| x / denom).collect()
    }

    /// Bucket width.
    pub fn width(&self) -> SimDur {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn interval_spreads_proportionally() {
        let mut b = TimeBuckets::new(SimDur::from_secs(10), secs(30.0));
        // 6 units over [5, 25): 5 s in bucket 0, 10 s in bucket 1, 5 s in bucket 2.
        b.add_interval(secs(5.0), secs(25.0), 6.0);
        let t = b.totals();
        assert!((t[0] - 1.5).abs() < 1e-9);
        assert!((t[1] - 3.0).abs() < 1e-9);
        assert!((t[2] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn clipping_beyond_horizon() {
        let mut b = TimeBuckets::new(SimDur::from_secs(10), secs(10.0));
        b.add_interval(secs(5.0), secs(25.0), 4.0);
        // Only [5, 10) lands: a quarter of the interval.
        assert!((b.totals()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn add_at_targets_one_bucket() {
        let mut b = TimeBuckets::new(SimDur::from_secs(1), secs(5.0));
        b.add_at(secs(3.5), 2.0);
        assert_eq!(b.totals()[3], 2.0);
        b.add_at(secs(99.0), 1.0); // out of range: ignored
        assert!((b.totals().iter().sum::<f64>() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn normalization() {
        let mut b = TimeBuckets::new(SimDur::from_secs(10), secs(10.0));
        b.add_interval(secs(0.0), secs(5.0), 5.0);
        let u = b.normalized(10.0);
        assert!((u[0] - 0.5).abs() < 1e-9);
    }
}
