//! Empirical CDFs (Figures 15 and 1a).

/// A sample collector with quantile and CDF-curve queries.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite CDF sample");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean of samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`q` in `[0,1]`), by linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if empty or `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        assert!(!self.samples.is_empty(), "quantile of empty CDF");
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 1 {
            return self.samples[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// `(x, F(x))` points at `n` evenly spaced cumulative probabilities,
    /// suitable for plotting.
    pub fn curve(&mut self, n: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || n == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        (0..=n)
            .map(|i| {
                let q = i as f64 / n as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// Fraction of samples at or below `x`.
    pub fn prob_at_most(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let k = self.samples.partition_point(|&s| s <= x);
        k as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_data() {
        let mut c = Cdf::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            c.push(x);
        }
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert_eq!(c.quantile(0.5), 3.0);
        assert_eq!(c.quantile(0.25), 2.0);
    }

    #[test]
    fn prob_at_most_is_consistent() {
        let mut c = Cdf::new();
        for x in 0..100 {
            c.push(x as f64);
        }
        assert!((c.prob_at_most(49.0) - 0.5).abs() < 1e-9);
        assert_eq!(c.prob_at_most(-1.0), 0.0);
        assert_eq!(c.prob_at_most(1000.0), 1.0);
    }

    #[test]
    fn curve_is_monotone() {
        let mut c = Cdf::new();
        for x in [5.0, 1.0, 9.0, 3.0, 7.0] {
            c.push(x);
        }
        let pts = c.curve(10);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn push_after_query_resorts() {
        let mut c = Cdf::new();
        c.push(10.0);
        assert_eq!(c.quantile(1.0), 10.0);
        c.push(1.0);
        assert_eq!(c.quantile(0.0), 1.0);
    }
}
