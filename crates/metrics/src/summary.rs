//! Request-level summary statistics derived from outcomes: TTFT/TBT
//! percentiles, throughput and per-model tables — the operator-facing view
//! a serving deployment reports next to raw SLO attainment.

use aegaeon_sim::SimTime;
use aegaeon_workload::SloSpec;

use crate::cdf::Cdf;
use crate::slo::{attainment, AttainmentReport, RequestOutcome};

/// Aggregate latency/throughput summary of a run.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Requests observed.
    pub requests: usize,
    /// Requests that produced every target token.
    pub finished: usize,
    /// Output tokens produced.
    pub tokens: u64,
    /// Token throughput over the horizon, tokens/s.
    pub token_rate: f64,
    /// TTFT percentiles `(p50, p90, p99)`, seconds.
    pub ttft: (f64, f64, f64),
    /// Inter-token gap percentiles `(p50, p90, p99)`, seconds.
    pub tbt: (f64, f64, f64),
}

fn pcts(c: &mut Cdf) -> (f64, f64, f64) {
    if c.count() == 0 {
        return (0.0, 0.0, 0.0);
    }
    (c.quantile(0.5), c.quantile(0.9), c.quantile(0.99))
}

/// Builds a [`Summary`] over `[0, horizon)`.
pub fn summarize(outcomes: &[RequestOutcome], horizon: SimTime) -> Summary {
    let mut ttft = Cdf::new();
    let mut tbt = Cdf::new();
    let mut tokens = 0u64;
    let mut finished = 0usize;
    for o in outcomes {
        tokens += o.token_times.len() as u64;
        if o.finished() {
            finished += 1;
        }
        if let Some(t) = o.ttft() {
            ttft.push(t);
        }
        for w in o.token_times.windows(2) {
            tbt.push((w[1] - w[0]).as_secs_f64());
        }
    }
    Summary {
        requests: outcomes.len(),
        finished,
        tokens,
        token_rate: tokens as f64 / horizon.as_secs_f64().max(1e-9),
        ttft: pcts(&mut ttft),
        tbt: pcts(&mut tbt),
    }
}

/// One row of a per-model report.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Model index.
    pub model: u32,
    /// Attainment for that model's requests.
    pub attainment: AttainmentReport,
    /// Requests observed.
    pub requests: usize,
}

/// Per-model attainment rows (sorted by worst attainment first), for spotting
/// starved models in a pool.
pub fn per_model_rows(
    outcomes: &[RequestOutcome],
    slo: SloSpec,
    horizon: SimTime,
    n_models: usize,
) -> Vec<ModelRow> {
    let mut rows: Vec<ModelRow> = (0..n_models)
        .map(|m| {
            let subset: Vec<RequestOutcome> = outcomes
                .iter()
                .filter(|o| o.model.0 as usize == m)
                .cloned()
                .collect();
            ModelRow {
                model: m as u32,
                requests: subset.len(),
                attainment: attainment(&subset, slo, horizon),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        a.attainment
            .ratio()
            .partial_cmp(&b.attainment.ratio())
            .expect("finite ratios")
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_model::ModelId;
    use aegaeon_sim::SimDur;
    use aegaeon_workload::RequestId;

    fn outcome(model: u32, start: f64, n: u32, gap: f64) -> RequestOutcome {
        RequestOutcome {
            id: RequestId(model as u64),
            model: ModelId(model),
            arrival: SimTime::ZERO,
            token_times: (0..n)
                .map(|i| SimTime::from_secs_f64(start + gap * i as f64))
                .collect(),
            target_tokens: n,
        }
    }

    #[test]
    fn summary_counts_and_percentiles() {
        let o = vec![outcome(0, 1.0, 11, 0.05), outcome(1, 2.0, 21, 0.1)];
        let s = summarize(&o, SimTime::from_secs_f64(10.0));
        assert_eq!(s.requests, 2);
        assert_eq!(s.finished, 2);
        assert_eq!(s.tokens, 32);
        assert!((s.token_rate - 3.2).abs() < 1e-9);
        // TTFTs are 1.0 and 2.0 → p50 = 1.5 by interpolation.
        assert!((s.ttft.0 - 1.5).abs() < 1e-9);
        // Gaps: ten of 0.05 and twenty of 0.1.
        assert!(s.tbt.0 >= 0.05 && s.tbt.2 <= 0.1 + 1e-9);
    }

    #[test]
    fn per_model_rows_sort_worst_first() {
        let slo = SloSpec {
            ttft: SimDur::from_secs(1),
            tbt: SimDur::from_millis(100),
        };
        // Model 0 on time; model 1 hopelessly late.
        let o = vec![outcome(0, 0.5, 5, 0.05), outcome(1, 50.0, 5, 0.05)];
        let rows = per_model_rows(&o, slo, SimTime::from_secs_f64(100.0), 2);
        assert_eq!(rows[0].model, 1);
        assert!(rows[0].attainment.ratio() < rows[1].attainment.ratio());
        assert_eq!(rows[1].attainment.ratio(), 1.0);
    }

    #[test]
    fn empty_run_is_safe() {
        let s = summarize(&[], SimTime::from_secs_f64(1.0));
        assert_eq!(s.requests, 0);
        assert_eq!(s.ttft, (0.0, 0.0, 0.0));
    }
}
