//! Goodput extraction from attainment sweeps.
//!
//! Figures 11–13 mark, with vertical lines, "the maximum goodput while
//! meeting the 90% overall SLO requirement": the largest load (model count
//! or arrival rate) whose attainment is still at or above the threshold.

/// The largest `x` at which the attainment curve is ≥ `threshold`, linearly
/// interpolating between sweep points. The curve is `(load, attainment)`
/// sorted by load. Returns `None` if even the lightest load misses the
/// threshold.
pub fn max_load_meeting(curve: &[(f64, f64)], threshold: f64) -> Option<f64> {
    if curve.is_empty() || curve[0].1 < threshold {
        return None;
    }
    let mut best = curve[0].0;
    for w in curve.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if y1 >= threshold {
            best = best.max(x1);
        } else if y0 >= threshold && y1 < threshold && y0 != y1 {
            // Linear interpolation of the crossing point.
            let t = (y0 - threshold) / (y0 - y1);
            best = best.max(x0 + t * (x1 - x0));
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_crossing() {
        let curve = [(10.0, 1.0), (20.0, 0.95), (30.0, 0.85), (40.0, 0.5)];
        let x = max_load_meeting(&curve, 0.9).unwrap();
        assert!((x - 25.0).abs() < 1e-9, "x={x}");
    }

    #[test]
    fn all_above_threshold_returns_last() {
        let curve = [(10.0, 0.99), (20.0, 0.95)];
        assert_eq!(max_load_meeting(&curve, 0.9), Some(20.0));
    }

    #[test]
    fn none_if_first_point_fails() {
        let curve = [(10.0, 0.5), (20.0, 0.4)];
        assert_eq!(max_load_meeting(&curve, 0.9), None);
    }

    #[test]
    fn recovers_after_dip_takes_furthest() {
        // Non-monotone curves (noise) should still report the furthest
        // point meeting the threshold.
        let curve = [(10.0, 0.95), (20.0, 0.89), (30.0, 0.92), (40.0, 0.2)];
        let x = max_load_meeting(&curve, 0.9).unwrap();
        assert!(x > 30.0, "x={x}");
    }
}
