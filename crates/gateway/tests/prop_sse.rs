//! Property tests for the SSE write-back path — the mirror image of
//! `prop_http.rs`. The read side proved arbitrary socket splits reassemble
//! into one HTTP request; here arbitrary *write* behavior (short writes,
//! `EAGAIN` stalls, interrupts) must reassemble into byte-identical SSE
//! frames on the wire, and the bounded queue's backpressure must be exact:
//! all-or-nothing on overflow, never a torn frame.

use std::io::{self, Write};

use aegaeon_gateway::outbuf::WriteQueue;
use aegaeon_gateway::sse::{self, SseScanner};
use proptest::prelude::*;

/// A socket stand-in driven by a plan of write behaviors. Each step is
/// interpreted from a `u32`: value 0 = `WouldBlock`, value 1 =
/// `Interrupted`, otherwise accept `value % 7 + 1` bytes (short writes).
/// When the plan runs dry the writer accepts everything (so pumps
/// eventually finish).
struct PlannedWriter {
    wire: Vec<u8>,
    plan: Vec<u32>,
    step: usize,
}

impl PlannedWriter {
    fn new(plan: Vec<u32>) -> PlannedWriter {
        PlannedWriter {
            wire: Vec::new(),
            plan,
            step: 0,
        }
    }
}

impl Write for PlannedWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let behavior = self.plan.get(self.step).copied();
        self.step += 1;
        match behavior {
            Some(0) => Err(io::Error::from(io::ErrorKind::WouldBlock)),
            Some(1) => Err(io::Error::from(io::ErrorKind::Interrupted)),
            Some(v) => {
                let n = buf.len().min((v % 7 + 1) as usize);
                self.wire.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            None => {
                self.wire.extend_from_slice(buf);
                Ok(buf.len())
            }
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Frame payloads the way the reactor does (one SSE event per token, DONE
/// sentinel appended to the last).
fn frames(payloads: &[String]) -> Vec<String> {
    let mut out: Vec<String> = payloads.iter().map(|p| sse::event(p)).collect();
    out.push(sse::DONE_FRAME.to_string());
    out
}

fn payload_from(raw: &[u32]) -> String {
    // Printable ASCII minus nothing special — SSE payloads are one line.
    raw.iter().map(|&i| (b' ' + (i % 95) as u8) as char).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever sequence of short writes, EAGAINs, and interrupts the
    /// socket produces, the bytes on the wire are exactly the queued
    /// frames in order — never torn, never reordered, never duplicated —
    /// and a client-side incremental scanner recovers the payloads.
    #[test]
    fn arbitrary_write_plans_reassemble_byte_identical_frames(
        payload_raw in prop::collection::vec(
            prop::collection::vec(0u32..1024, 0..40),
            1..24,
        ),
        plan in prop::collection::vec(0u32..64, 0..64),
        pump_every in 1usize..4,
    ) {
        let payloads: Vec<String> = payload_raw.iter().map(|r| payload_from(r)).collect();
        let all = frames(&payloads);
        let expected: String = all.concat();

        let mut q = WriteQueue::new(1 << 20);
        let mut w = PlannedWriter::new(plan);
        for (k, frame) in all.iter().enumerate() {
            q.push(frame.as_bytes()).expect("cap is ample");
            if k % pump_every == 0 {
                let _ = q.pump(&mut w).expect("planned writer never hard-fails");
            }
        }
        // Drain: the plan eventually runs dry and accepts everything.
        while !q.is_empty() {
            let _ = q.pump(&mut w).expect("planned writer never hard-fails");
        }
        prop_assert_eq!(
            String::from_utf8(w.wire.clone()).unwrap(),
            expected,
            "wire bytes differ from queued frames"
        );

        // And the client-side scanner reassembles the same payloads plus
        // the DONE sentinel, regardless of how the wire is re-chunked.
        // (The scanner, like `parse_data_lines`, strips leading payload
        // whitespace — the `data: ` separator is ambiguous there.)
        let mut scanner = SseScanner::new();
        let mut got = Vec::new();
        for chunk in w.wire.chunks(3) {
            scanner.feed(chunk, &mut got);
        }
        let mut want: Vec<String> =
            payloads.iter().map(|p| p.trim_start().to_string()).collect();
        want.push(sse::DONE.to_string());
        prop_assert_eq!(got, want);
    }

    /// Backpressure exactness: pushes fail precisely when the frame would
    /// not fit, the queue never holds more than `cap` unsent bytes, and a
    /// rejected push leaves no partial frame behind.
    #[test]
    fn bounded_queue_is_exact_under_interleaved_push_and_stall(
        cap in 16usize..256,
        frames_raw in prop::collection::vec(prop::collection::vec(0u32..1024, 0..40), 1..32),
        drains in prop::collection::vec(0u32..48, 0..32),
    ) {
        let mut q = WriteQueue::new(cap);
        let mut wire = Vec::new();
        let mut accepted = Vec::new();
        let mut di = 0;
        for raw in &frames_raw {
            let frame = sse::event(&payload_from(raw));
            let fits = q.len() + frame.len() <= cap;
            match q.push(frame.as_bytes()) {
                Ok(()) => {
                    prop_assert!(fits, "push succeeded past the cap");
                    accepted.extend_from_slice(frame.as_bytes());
                }
                Err(over) => {
                    prop_assert!(!fits, "push failed although the frame fit");
                    prop_assert_eq!(over.cap, cap);
                    prop_assert_eq!(over.queued, q.len());
                }
            }
            prop_assert!(q.len() <= cap, "queue exceeded its cap");
            // Occasionally let a throttled writer drain a few bytes.
            if let Some(&d) = drains.get(di) {
                di += 1;
                struct Take(Vec<u8>, usize);
                impl Write for Take {
                    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                        if self.1 == 0 {
                            return Err(io::Error::from(io::ErrorKind::WouldBlock));
                        }
                        let n = buf.len().min(self.1);
                        self.0.extend_from_slice(&buf[..n]);
                        self.1 -= n;
                        Ok(n)
                    }
                    fn flush(&mut self) -> io::Result<()> { Ok(()) }
                }
                let mut t = Take(Vec::new(), d as usize);
                let _ = q.pump(&mut t).unwrap();
                wire.extend_from_slice(&t.0);
            }
        }
        while !q.is_empty() {
            let mut sink = Vec::new();
            prop_assert!(q.pump(&mut sink).unwrap());
            wire.extend_from_slice(&sink);
        }
        // Everything accepted — and nothing else — reached the wire, in
        // order: rejected frames left no residue.
        prop_assert_eq!(wire, accepted);
    }
}
