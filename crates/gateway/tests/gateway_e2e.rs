//! End-to-end gateway tests over real sockets: SSE streaming in both
//! clock modes, live-vs-replay determinism, admission control, slow-reader
//! backpressure, and graceful drain (including under four-digit stream
//! counts). std-only — every client is `std::net`.

use std::time::{Duration, Instant};

use aegaeon::session::ServingSession;
use aegaeon::AegaeonConfig;
use aegaeon_gateway::client::{request, SseStream};
use aegaeon_gateway::server::{Gateway, GatewayConfig};
use aegaeon_gateway::swarm::{Swarm, SwarmOptions};
use aegaeon_gateway::{sse, ClockMode};
use aegaeon_model::{ModelSpec, Zoo};
use aegaeon_sim::SimTime;
use serde_json::Value;

const RTT: Duration = Duration::from_secs(30);

fn cfg() -> AegaeonConfig {
    AegaeonConfig::small_testbed(1, 1)
}

fn models(n: usize) -> Vec<ModelSpec> {
    let zoo = Zoo::standard();
    Zoo::replicate(&zoo.market_band(), n)
}

fn start(mode: ClockMode, n_models: usize) -> Gateway {
    Gateway::start(&cfg(), &models(n_models), GatewayConfig::local(mode)).expect("gateway start")
}

/// Reads one full SSE completion: returns (token payloads, saw_done_frame).
fn consume_stream(stream: &mut SseStream) -> (Vec<String>, bool) {
    let mut chunks = Vec::new();
    let mut done = false;
    while let Ok(Some(data)) = stream.next_data() {
        if data == sse::DONE {
            done = true;
            break;
        }
        chunks.push(data);
    }
    (chunks, done)
}

fn finish_reason(chunk: &str) -> Option<String> {
    let Ok(Value::Object(o)) = serde_json::from_str::<Value>(chunk) else {
        return None;
    };
    let Some(Value::Array(choices)) = o.get("choices") else {
        return None;
    };
    let Some(Value::Object(choice)) = choices.first() else {
        return None;
    };
    match choice.get("finish_reason") {
        Some(Value::String(s)) => Some(s.clone()),
        _ => None,
    }
}

#[test]
fn timewarp_gateway_streams_sse_end_to_end() {
    let gw = start(ClockMode::Timewarp(50.0), 2);
    let addr = gw.addr();

    let health = request(addr, "GET", "/healthz", None, RTT).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "ok\n");

    let mut stream = SseStream::post(
        addr,
        "/v1/completions",
        r#"{"model":"m0","input_tokens":8,"max_tokens":5}"#,
        RTT,
    )
    .unwrap();
    assert_eq!(stream.status, 200);
    assert_eq!(
        stream.header("content-type").map(str::to_ascii_lowercase),
        Some("text/event-stream".to_string())
    );
    let (chunks, done) = consume_stream(&mut stream);
    assert_eq!(chunks.len(), 5, "one SSE frame per generated token");
    assert!(done, "stream must end with the [DONE] sentinel");
    assert_eq!(finish_reason(&chunks[4]).as_deref(), Some("stop"));
    for c in &chunks[..4] {
        assert_eq!(finish_reason(c), None);
    }

    let metrics = request(addr, "GET", "/metrics", None, RTT).unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics
        .header("content-type")
        .unwrap()
        .starts_with("text/plain"));
    let text = metrics.text();
    assert!(text.contains("http_completions_requests"));
    assert!(text.contains("http_healthz_requests"));
    assert!(text.contains("wall_clock_lag_secs"));

    let report = gw.shutdown();
    assert_eq!(report.trace.requests.len(), 1);
    assert_eq!(report.result.completed, 1);
    let audit = report.audit.expect("auditor installed");
    assert!(audit.ok(), "violations: {:?}", audit.violations);
}

#[test]
fn realtime_gateway_streams_sse_at_wall_pace() {
    let gw = start(ClockMode::Realtime, 1);
    let addr = gw.addr();

    let wall_start = std::time::Instant::now();
    let mut stream = SseStream::post(
        addr,
        "/v1/completions",
        r#"{"model":"m0","input_tokens":4,"max_tokens":3}"#,
        RTT,
    )
    .unwrap();
    assert_eq!(stream.status, 200);
    let (chunks, done) = consume_stream(&mut stream);
    let wall = wall_start.elapsed();
    assert_eq!(chunks.len(), 3);
    assert!(done);

    let report = gw.shutdown();
    assert_eq!(report.result.completed, 1);
    // In realtime mode simulated token timestamps are honored on the wall
    // clock: the stream cannot complete faster than the simulated end of
    // the request (TTFT alone is ~0.5 simulated seconds on a cold start).
    let sim_done = report.result.end_time.as_secs_f64();
    assert!(
        wall.as_secs_f64() >= sim_done * 0.5,
        "realtime stream finished in {wall:?} but simulation ended at {sim_done:.3}s"
    );
}

/// The tentpole acceptance: a live timewarp run and an offline replay of
/// its recorded trace are fingerprint-identical.
#[test]
fn live_gateway_run_replays_fingerprint_identical() {
    let gw = start(ClockMode::Timewarp(200.0), 3);
    let addr = gw.addr();

    let mut streams = Vec::new();
    for i in 0..8 {
        let body = format!(
            r#"{{"model":"m{}","input_tokens":{},"max_tokens":{}}}"#,
            i % 3,
            4 + i,
            2 + i % 4
        );
        streams.push(SseStream::post(addr, "/v1/completions", &body, RTT).unwrap());
        // Stagger injections so arrivals land at distinct sim instants.
        std::thread::sleep(Duration::from_millis(15));
    }
    for mut s in streams {
        assert_eq!(s.status, 200);
        let (chunks, done) = consume_stream(&mut s);
        assert!(done);
        assert!(!chunks.is_empty());
    }

    let report = gw.shutdown();
    assert_eq!(report.trace.requests.len(), 8);
    assert_eq!(report.result.completed, 8);

    let mut replay = ServingSession::replay(&cfg(), &models(3), &report.trace);
    replay.step_until(SimTime::MAX);
    let (offline, _) = replay.finish();
    assert_eq!(
        report.result.fingerprint(),
        offline.fingerprint(),
        "live gateway run and offline replay must be indistinguishable"
    );
}

/// `GET /v1/slo` serves the observatory's JSON document — per-model
/// cumulative attainment, windowed quantiles, and the switch-cost ledger —
/// rendered by the sim thread, and `/metrics` carries the per-model
/// summaries next to it.
#[test]
fn slo_endpoint_reports_per_model_attainment() {
    let gw = start(ClockMode::Timewarp(100.0), 2);
    let addr = gw.addr();

    for i in 0..4 {
        let body = format!(
            r#"{{"model":"m{}","input_tokens":6,"max_tokens":4}}"#,
            i % 2
        );
        let mut s = SseStream::post(addr, "/v1/completions", &body, RTT).unwrap();
        assert_eq!(s.status, 200);
        let (_, done) = consume_stream(&mut s);
        assert!(done);
    }

    // First scrape may see a stale snapshot and nudges a re-render; the
    // second (past the refresh interval) must carry the retired requests.
    let _ = request(addr, "GET", "/v1/slo", None, RTT).unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let slo = request(addr, "GET", "/v1/slo", None, RTT).unwrap();
    assert_eq!(slo.status, 200);
    assert!(slo
        .header("content-type")
        .unwrap()
        .starts_with("application/json"));
    let text = slo.text();
    assert!(text.contains("\"models\""), "missing models: {text}");
    assert!(text.contains("\"windows\""), "missing windows: {text}");
    assert!(text.contains("\"attribution\""), "missing ledger: {text}");
    assert!(
        text.contains("\"model\":\"m0\"") && text.contains("\"model\":\"m1\""),
        "both models must appear in the cumulative table: {text}"
    );

    let metrics = request(addr, "GET", "/metrics", None, RTT).unwrap().text();
    for needle in [
        "ttft_seconds{model=\"m0\",quantile=\"0.5\"} ",
        "tbt_seconds{model=\"m0\",quantile=\"0.99\"} ",
        "slo_attainment{model=\"m0\"} ",
        "metrics_snapshot_age_ms ",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }

    let report = gw.shutdown();
    assert_eq!(report.result.completed, 4);
}

/// A scrape landing on a stale snapshot forces a re-render: the effects of
/// the first scrape (its own request counter) are visible to a scrape one
/// refresh interval later even with the simulation idle.
#[test]
fn stale_metrics_scrape_forces_a_rerender() {
    let gw = start(ClockMode::Timewarp(50.0), 1);
    let addr = gw.addr();

    // Idle gateway: no streams in flight, so only the scrape path itself
    // can trigger renders.
    let _ = request(addr, "GET", "/metrics", None, RTT).unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let text = request(addr, "GET", "/metrics", None, RTT).unwrap().text();
    let scrapes: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("http_metrics_requests "))
        .expect("scrape counter exported")
        .trim()
        .parse()
        .expect("numeric counter");
    assert!(
        scrapes >= 1.0,
        "first scrape never made it into a fresh snapshot:\n{text}"
    );

    gw.shutdown();
}

#[test]
fn admission_quota_rejects_with_retry_after_and_books_match() {
    // One total slot: a held stream forces every concurrent POST to bounce.
    // Keep the warp factor low and the held stream long so the slot stays
    // occupied for hundreds of wall milliseconds while the probes fire.
    let mut gw_cfg = GatewayConfig::local(ClockMode::Timewarp(4.0));
    gw_cfg.admission.max_inflight_total = 1;
    let gw = Gateway::start(&cfg(), &models(1), gw_cfg).expect("gateway start");
    let addr = gw.addr();

    // Occupy the single slot with a long-running stream...
    let mut holder = SseStream::post(
        addr,
        "/v1/completions",
        r#"{"model":"m0","input_tokens":8,"max_tokens":400}"#,
        RTT,
    )
    .unwrap();
    assert_eq!(holder.status, 200);
    // ...then observe that concurrent requests bounce with 429.
    let mut rejected = 0;
    for _ in 0..4 {
        let resp = request(
            addr,
            "POST",
            "/v1/completions",
            Some(r#"{"model":"m0","max_tokens":1}"#),
            RTT,
        )
        .unwrap();
        if resp.status == 429 {
            assert_eq!(resp.header("retry-after"), Some("1"));
            assert!(resp.text().contains("rate_limit_exceeded"));
            rejected += 1;
        }
    }
    assert!(rejected > 0, "at least one request must hit the quota");
    let (_, done) = consume_stream(&mut holder);
    assert!(done);

    let report = gw.shutdown();
    let audit = report.audit.expect("auditor installed");
    assert_eq!(
        audit.rejections, rejected as u64,
        "client-observed 429s must equal the gateway's rejection book"
    );
    // Rejected requests never reach the simulation: every sent request is
    // either in the replayable trace or in the rejection book, never both.
    assert_eq!(report.trace.requests.len() as u64 + audit.rejections, 5);
}

#[test]
fn graceful_drain_completes_inflight_streams() {
    let gw = start(ClockMode::Timewarp(20.0), 2);
    let addr = gw.addr();

    let mut stream = SseStream::post(
        addr,
        "/v1/completions",
        r#"{"model":"m1","input_tokens":16,"max_tokens":12}"#,
        RTT,
    )
    .unwrap();
    assert_eq!(stream.status, 200);

    // Shut down while the stream is (very likely) still in flight; the
    // drain fast-forwards the session so every admitted token flushes.
    let reader = std::thread::spawn(move || consume_stream(&mut stream));
    let report = gw.shutdown();
    let (chunks, done) = reader.join().unwrap();
    assert_eq!(chunks.len(), 12, "drain must flush the complete stream");
    assert!(done, "drained stream still ends with [DONE]");
    assert_eq!(report.result.completed, 1);

    // After shutdown the port is closed or refusing; new requests fail.
    let followup = request(
        addr,
        "POST",
        "/v1/completions",
        Some(r#"{"model":"m0","max_tokens":1}"#),
        Duration::from_secs(2),
    );
    match followup {
        Err(_) => {}
        Ok(resp) => assert_ne!(resp.status, 200),
    }
}

/// Backpressure contract: a client that stops reading mid-stream fills its
/// bounded output queue and is *dropped* — bounded buffering, a counted
/// drop, zero auditor violations — instead of buffering without bound.
#[test]
fn slow_reader_is_dropped_after_bounded_buffering() {
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;

    // Tiny app-level queue and a shrunken kernel send buffer so the
    // overflow trips within one request's token volume; the client also
    // clamps its receive buffer so the kernel cannot absorb the stream.
    let mut gw_cfg = GatewayConfig::local(ClockMode::Timewarp(100.0));
    gw_cfg.max_conn_buffer = 2 * 1024;
    gw_cfg.sock_sndbuf = Some(4 * 1024);
    let gw = Gateway::start(&cfg(), &models(1), gw_cfg).expect("gateway start");
    let addr = gw.addr();

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let _ = aegaeon_gateway::poll::shrink_socket_buffers(
        stream.as_raw_fd(),
        None,
        Some(4 * 1024),
    );
    let body = r#"{"model":"m0","input_tokens":8,"max_tokens":2000}"#;
    let req = format!(
        "POST /v1/completions HTTP/1.1\r\nHost: gw\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(req.as_bytes()).unwrap();
    // Read just the response head plus a frame or two, then stop reading
    // entirely — the kernel buffers fill, then the gateway's bounded queue
    // overflows, and the reactor drops us.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut first = [0u8; 1024];
    let n = stream.read(&mut first).unwrap();
    assert!(String::from_utf8_lossy(&first[..n]).starts_with("HTTP/1.1 200"));

    // The drop is observable in live metrics while the gateway keeps
    // serving other clients.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut dropped = false;
    while Instant::now() < deadline && !dropped {
        let metrics = request(addr, "GET", "/metrics", None, RTT).unwrap();
        assert_eq!(metrics.status, 200);
        dropped = metrics
            .text()
            .lines()
            .any(|l| l.starts_with("gateway_slow_drops") && l.ends_with(" 1"));
        if !dropped {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    assert!(dropped, "slow reader was never dropped");
    drop(stream);

    let report = gw.shutdown();
    assert_eq!(report.slow_drops, 1, "exactly one counted drop");
    // The request itself still completes inside the simulation (its sink
    // is gone, which is harmless), and no rejection was booked: drops and
    // 429s are distinct counters.
    assert_eq!(report.result.completed, 1);
    let audit = report.audit.expect("auditor installed");
    assert_eq!(audit.rejections, 0);
    assert!(audit.ok(), "violations: {:?}", audit.violations);
}

/// Drain regression at four-digit concurrency: a shutdown issued with ≥1k
/// streams in flight must complete *every* stream — all tokens, all DONE
/// sentinels, all buffers flushed — and the drained run must still replay
/// fingerprint-identically.
#[test]
fn drain_under_load_completes_every_stream() {
    const N: usize = 1400;
    const TOKENS: u32 = 48;
    const MODELS: usize = 8;

    let mut gw_cfg = GatewayConfig::local(ClockMode::Timewarp(20.0));
    gw_cfg.admission.max_inflight_total = 4096;
    let gw = Gateway::start(&cfg(), &models(MODELS), gw_cfg).expect("gateway start");
    let addr = gw.addr();

    // Open-loop: fire all N within ~1.2s of wall time, spread over eight
    // models thrashing the two-GPU testbed — the pooling-pressure regime
    // the paper targets. Completions cannot keep up with arrivals, so
    // in-flight concurrency climbs into the four digits.
    let window = Duration::from_millis(1200);
    let schedule: Vec<(Duration, String)> = (0..N)
        .map(|i| {
            (
                window.mul_f64(i as f64 / N as f64),
                format!(
                    r#"{{"model":"m{}","input_tokens":64,"max_tokens":{TOKENS}}}"#,
                    i % MODELS
                ),
            )
        })
        .collect();
    let swarm = Swarm::launch(addr, schedule, SwarmOptions::default()).expect("swarm launch");

    // Trigger the drain once every request has been admitted (the gateway
    // sent its SSE head) and ≥1k streams are still mid-flight. Waiting for
    // full admission keeps the contract crisp: every admitted stream must
    // complete, with no post-drain 503s muddying the count.
    let deadline = Instant::now() + Duration::from_secs(60);
    while swarm.gauges().responded() < N || swarm.gauges().open() < 1000 {
        assert!(
            Instant::now() < deadline,
            "never reached full admission at 1k concurrency \
             (open={}, fired={}, responded={}, finished={})",
            swarm.gauges().open(),
            swarm.gauges().fired(),
            swarm.gauges().responded(),
            swarm.gauges().finished()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = gw.shutdown();
    let samples = swarm.join();

    assert!(
        samples.iter().filter(|s| s.status == 200).count() >= 1000,
        "expected ≥1k accepted streams"
    );
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(s.status, 200, "stream {i} failed: {s:?}");
        assert!(s.done, "stream {i} lost its DONE sentinel: {s:?}");
        assert_eq!(s.tokens, TOKENS, "stream {i} dropped tokens: {s:?}");
    }
    assert_eq!(report.result.completed, N);
    assert_eq!(report.slow_drops, 0);
    let audit = report.audit.expect("auditor installed");
    assert_eq!(audit.rejections, 0);
    assert!(audit.ok(), "violations: {:?}", audit.violations);

    // The reactor path preserves replay identity at four-digit scale.
    let mut replay = ServingSession::replay(&cfg(), &models(MODELS), &report.trace);
    replay.step_until(SimTime::MAX);
    let (offline, _) = replay.finish();
    assert_eq!(
        report.result.fingerprint(),
        offline.fingerprint(),
        "drained live run and offline replay must be indistinguishable"
    );
}

/// Tentpole acceptance for the multi-reactor I/O plane, in-process: four
/// `SO_REUSEPORT` reactors share one port under three-digit concurrency,
/// every reactor's connections drain to completion at shutdown, the
/// labeled per-reactor gauges appear in `/metrics`, and the run still
/// replays fingerprint-identically — reactor count is an I/O-plane knob,
/// never a simulation input.
#[test]
#[cfg(target_os = "linux")]
fn four_reactor_drain_under_load_is_fingerprint_identical() {
    const N: usize = 600;
    const TOKENS: u32 = 24;
    const MODELS: usize = 6;
    const REACTORS: usize = 4;

    let mut gw_cfg = GatewayConfig::local(ClockMode::Timewarp(20.0));
    gw_cfg.admission.max_inflight_total = 4096;
    gw_cfg.reactors = REACTORS;
    let gw = Gateway::start(&cfg(), &models(MODELS), gw_cfg).expect("gateway start");
    let addr = gw.addr();

    let window = Duration::from_millis(900);
    let schedule: Vec<(Duration, String)> = (0..N)
        .map(|i| {
            (
                window.mul_f64(i as f64 / N as f64),
                format!(
                    r#"{{"model":"m{}","input_tokens":48,"max_tokens":{TOKENS}}}"#,
                    i % MODELS
                ),
            )
        })
        .collect();
    let swarm = Swarm::launch(addr, schedule, SwarmOptions::default()).expect("swarm launch");

    // Wait for full admission with a few hundred streams still open, then
    // check the observability satellite: every reactor's labeled gauges
    // are present in one scrape.
    let deadline = Instant::now() + Duration::from_secs(60);
    while swarm.gauges().responded() < N || swarm.gauges().open() < 300 {
        assert!(
            Instant::now() < deadline,
            "never reached full admission at 300 concurrency \
             (open={}, responded={}, finished={})",
            swarm.gauges().open(),
            swarm.gauges().responded(),
            swarm.gauges().finished()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let metrics = request(addr, "GET", "/metrics", None, RTT).unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    for r in 0..REACTORS {
        for gauge in ["reactor_registered_fds", "reactor_ready_depth", "reactor_peak_streams"] {
            assert!(
                text.contains(&format!("{gauge}{{reactor=\"{r}\"}}")),
                "missing {gauge} for reactor {r} in:\n{text}"
            );
        }
    }

    // Drain with streams in flight on every reactor.
    let report = gw.shutdown();
    let samples = swarm.join();
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(s.status, 200, "stream {i} failed: {s:?}");
        assert!(s.done, "stream {i} lost its DONE sentinel: {s:?}");
        assert_eq!(s.tokens, TOKENS, "stream {i} dropped tokens: {s:?}");
    }
    assert_eq!(report.result.completed, N);
    assert_eq!(report.slow_drops, 0);
    let audit = report.audit.expect("auditor installed");
    assert!(audit.ok(), "violations: {:?}", audit.violations);

    // The kernel sharded accepts across the group: with 600 connections
    // over 4 listeners every reactor must have seen some (the hash spread
    // is not exactly even, but zero on a reactor means the group broke).
    assert_eq!(report.per_reactor_peak.len(), REACTORS);
    assert!(
        report.per_reactor_peak.iter().all(|&p| p > 0),
        "a reactor accepted nothing: {:?}",
        report.per_reactor_peak
    );

    let mut replay = ServingSession::replay(&cfg(), &models(MODELS), &report.trace);
    replay.step_until(SimTime::MAX);
    let (offline, _) = replay.finish();
    assert_eq!(
        report.result.fingerprint(),
        offline.fingerprint(),
        "4-reactor live run and offline replay must be indistinguishable"
    );
}

/// The full deployment shape: the `gateway` binary with four reactors and
/// an active chaos plan, driven over real sockets, drained by a real
/// SIGTERM — then its recorded trace replayed in-process. The subprocess's
/// reported fingerprint and the offline replay's must match, and the
/// process must exit 0 (its own audit gate).
#[test]
#[cfg(target_os = "linux")]
fn gateway_binary_sigterm_drain_replays_fingerprint_identical() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;
    const MODELS: usize = 4;
    const SEED: u64 = 7;
    const CHAOS: &str = "cp=0.002;cd=0.002;stall=0.02:1";

    let dir = std::env::temp_dir().join(format!("gw_sigterm_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("report.json");
    let trace_path = dir.join("trace.json");

    let mut child = Command::new(env!("CARGO_BIN_EXE_gateway"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--mode",
            "timewarp",
            "--factor",
            "100",
            "--models",
            "4",
            "--seed",
            "7",
            "--reactors",
            "4",
            "--max-inflight",
            "4096",
            "--chaos",
            CHAOS,
        ])
        .arg("--report-out")
        .arg(&report_path)
        .arg("--trace-out")
        .arg(&trace_path)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gateway binary");

    // The binary logs its bound address on stderr; keep draining the pipe
    // afterwards so the child never blocks on it.
    let stderr = BufReader::new(child.stderr.take().unwrap());
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let logger = std::thread::spawn(move || {
        let mut log = String::new();
        for line in stderr.lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.split("http://").nth(1) {
                let _ = addr_tx.send(rest.split_whitespace().next().unwrap().to_string());
            }
            log.push_str(&line);
            log.push('\n');
        }
        log
    });
    let addr: std::net::SocketAddr = addr_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("gateway never logged its address")
        .parse()
        .unwrap();

    // Drive real traffic at the subprocess across its models.
    let mut streams = Vec::new();
    for i in 0..24 {
        let body = format!(
            r#"{{"model":"m{}","input_tokens":{},"max_tokens":{}}}"#,
            i % MODELS,
            8 + i,
            2 + i % 5
        );
        streams.push(SseStream::post(addr, "/v1/completions", &body, RTT).unwrap());
        std::thread::sleep(Duration::from_millis(5));
    }
    // SIGTERM while the tail of the batch is still streaming: the drain
    // must still complete every admitted stream.
    assert_eq!(unsafe { kill(child.id() as i32, SIGTERM) }, 0);
    for mut s in streams {
        assert_eq!(s.status, 200);
        let (chunks, done) = consume_stream(&mut s);
        assert!(done, "drained subprocess stream lost its DONE sentinel");
        assert!(!chunks.is_empty());
    }

    let status = child.wait().expect("wait on gateway binary");
    let log = logger.join().unwrap();
    assert!(
        status.success(),
        "gateway binary exited {status:?} (audit gate); log:\n{log}"
    );

    // The subprocess's own report: 4 reactors, audit clean.
    let report_text = std::fs::read_to_string(&report_path).unwrap();
    let Ok(Value::Object(report)) = serde_json::from_str::<Value>(&report_text) else {
        panic!("unparseable report: {report_text}");
    };
    let field = |name: &str| -> u64 {
        match report.get(name) {
            Some(Value::U64(n)) => *n,
            other => panic!("report field {name} = {other:?} in: {report_text}"),
        }
    };
    assert_eq!(field("reactors"), 4, "report: {report_text}");
    assert_eq!(field("audit_violations"), 0, "report: {report_text}");
    assert_eq!(field("requests"), 24, "report: {report_text}");
    let Some(Value::String(fp)) = report.get("fingerprint") else {
        panic!("report missing fingerprint: {report_text}");
    };
    let live_fp = u64::from_str_radix(fp.trim_start_matches("0x"), 16).unwrap();

    // Replay the recorded trace in-process under the identical config
    // (seed, chaos plan, testbed, models) — 4 live reactors must be
    // indistinguishable from a reactor-free offline run.
    let trace = aegaeon_workload::Trace::from_json(
        &std::fs::read_to_string(&trace_path).unwrap(),
    )
    .unwrap();
    let mut replay_cfg = cfg();
    replay_cfg.seed = SEED;
    replay_cfg.faults = CHAOS.parse().expect("chaos plan parses");
    let mut replay = ServingSession::replay(&replay_cfg, &models(MODELS), &trace);
    replay.step_until(SimTime::MAX);
    let (offline, _) = replay.finish();
    assert_eq!(
        live_fp,
        offline.fingerprint(),
        "SIGTERM-drained 4-reactor binary and offline replay must be indistinguishable"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_routes_methods_and_bodies_get_clean_errors() {
    let gw = start(ClockMode::Timewarp(100.0), 1);
    let addr = gw.addr();

    let resp = request(addr, "GET", "/nope", None, RTT).unwrap();
    assert_eq!(resp.status, 404);
    let resp = request(addr, "DELETE", "/healthz", None, RTT).unwrap();
    assert_eq!(resp.status, 405);
    let resp = request(addr, "POST", "/v1/completions", Some("not json"), RTT).unwrap();
    assert_eq!(resp.status, 400);
    let resp = request(
        addr,
        "POST",
        "/v1/completions",
        Some(r#"{"model":"m99"}"#),
        RTT,
    )
    .unwrap();
    assert_eq!(resp.status, 404);

    let report = gw.shutdown();
    assert_eq!(report.trace.requests.len(), 0);
}
