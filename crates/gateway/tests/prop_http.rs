//! Property tests for the incremental HTTP parser: arbitrary header
//! sets, bodies, and read-boundary splits must round-trip; arbitrary
//! byte garbage must never panic and must map onto a clean 4xx/5xx.

use aegaeon_gateway::http::{HttpError, HttpParser, HttpRequest, MAX_BODY_BYTES, MAX_HEAD_BYTES};
use proptest::prelude::*;

/// Feeds `wire` through a parser in slices cut by `cuts` (each entry is
/// taken modulo the remaining length, so any vector is a valid plan).
fn feed_in_slices(wire: &[u8], cuts: &[usize]) -> Result<Option<HttpRequest>, HttpError> {
    let mut parser = HttpParser::new();
    let mut rest = wire;
    for &cut in cuts {
        if rest.is_empty() {
            break;
        }
        let n = 1 + cut % rest.len();
        let (chunk, tail) = rest.split_at(n);
        match parser.feed(chunk)? {
            Some(req) => {
                assert!(tail.is_empty(), "request completed before all bytes fed");
                return Ok(Some(req));
            }
            None => rest = tail,
        }
    }
    parser.feed(rest)
}

const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-";

/// Builds a header name from charset indices (always starts alphabetic).
fn name_from(indices: &[u32]) -> String {
    let mut s = String::from("x");
    s.extend(
        indices
            .iter()
            .map(|&i| NAME_CHARS[i as usize % NAME_CHARS.len()] as char),
    );
    s
}

/// Builds a header value of printable ASCII (no CR/LF) from code points.
fn value_from(indices: &[u32]) -> String {
    indices
        .iter()
        .map(|&i| (b' ' + (i % 95) as u8) as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A well-formed request round-trips regardless of header order,
    /// header content, body bytes, or where the reads split.
    #[test]
    fn well_formed_requests_round_trip_across_any_split(
        extra in prop::collection::vec(
            (
                prop::collection::vec(0u32..1024, 0..12),
                prop::collection::vec(0u32..1024, 0..24),
            ),
            0..6,
        ),
        body_raw in prop::collection::vec(0u32..256, 0..512),
        cuts in prop::collection::vec(0usize..4096, 1..12),
        crlf in 0u32..2,
    ) {
        let eol = if crlf == 1 { "\r\n" } else { "\n" };
        let body: Vec<u8> = body_raw.iter().map(|&b| b as u8).collect();
        let mut head = format!("POST /v1/completions HTTP/1.1{eol}");
        for (name, value) in &extra {
            head.push_str(&format!("{}: {}{eol}", name_from(name), value_from(value)));
        }
        head.push_str(&format!("Content-Length: {}{eol}{eol}", body.len()));
        let mut wire = head.into_bytes();
        wire.extend_from_slice(&body);

        let req = feed_in_slices(&wire, &cuts)
            .expect("well-formed request must parse")
            .expect("all bytes fed, request must complete");
        prop_assert_eq!(&req.method, "POST");
        prop_assert_eq!(&req.target, "/v1/completions");
        prop_assert_eq!(&req.body, &body);
        prop_assert_eq!(
            req.header("content-length"),
            Some(body.len().to_string().as_str())
        );
    }

    /// Arbitrary bytes never panic: the parser either keeps waiting,
    /// completes, or reports a typed error whose status is 4xx/5xx.
    #[test]
    fn arbitrary_garbage_never_panics(
        wire_raw in prop::collection::vec(0u32..256, 0..2048),
        cuts in prop::collection::vec(0usize..4096, 1..8),
    ) {
        let wire: Vec<u8> = wire_raw.iter().map(|&b| b as u8).collect();
        match feed_in_slices(&wire, &cuts) {
            Ok(_) => {}
            Err(e) => {
                let (code, _) = e.status();
                prop_assert!((400..=599).contains(&code));
            }
        }
    }

    /// Oversized heads are rejected with 431 no matter how the bytes
    /// arrive: the size cap alone must trip, terminator or not.
    #[test]
    fn oversized_heads_reject_cleanly(pad in (MAX_HEAD_BYTES + 1)..(MAX_HEAD_BYTES + 64)) {
        let mut parser = HttpParser::new();
        let mut wire = b"GET /".to_vec();
        wire.extend(std::iter::repeat_n(b'a', pad));
        let mut result = Ok(None);
        for chunk in wire.chunks(1024) {
            result = parser.feed(chunk);
            if result.is_err() {
                break;
            }
        }
        prop_assert_eq!(result, Err(HttpError::HeadersTooLarge));
    }

    /// Declared bodies beyond the cap are refused before buffering them.
    #[test]
    fn oversized_bodies_reject_cleanly(extra in 1u64..1024) {
        let mut parser = HttpParser::new();
        let head = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES as u64 + extra
        );
        prop_assert_eq!(parser.feed(head.as_bytes()), Err(HttpError::BodyTooLarge));
    }
}
