//! Property tests for the SPSC token ring that carries tokens from the
//! sim thread to the I/O reactors. The unit tests in `ring.rs` pin the
//! happy paths; here arbitrary push/pop interleavings (same-thread and
//! cross-thread), capacities small enough to wrap the index space many
//! times over, and random generation churn must uphold the contract: FIFO
//! order, no loss, no duplication, exact Full/Closed errors, and stale
//! generation tags never validating against a recycled slot.

use std::thread;

use aegaeon_gateway::ring::{self, PushError, RingTag};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Drive an arbitrary interleaving of pushes and pops against a
    /// capacity small enough that the indices wrap many times. A model
    /// queue predicts every observable: push results (including exact
    /// `Full` rejections), pop results, lengths, and final drain order.
    #[test]
    fn arbitrary_interleavings_match_a_model_queue(
        cap in 1usize..33,
        plan in prop::collection::vec((0u32..2).prop_map(|v| v == 1), 0..512),
    ) {
        let (prod, cons) = ring::ring::<u64>(cap, RingTag::new(0, 0, 0));
        // The implementation rounds up to a power of two; observable
        // capacity is whatever it reports, not what we asked for.
        let eff_cap = cap.next_power_of_two();
        let mut model = std::collections::VecDeque::new();
        let mut next = 0u64;
        for do_push in plan {
            if do_push {
                match prod.push(next) {
                    Ok(()) => {
                        prop_assert!(model.len() < eff_cap, "push accepted past capacity");
                        model.push_back(next);
                    }
                    Err(PushError::Full(v)) => {
                        prop_assert_eq!(v, next, "Full must return the rejected item");
                        prop_assert_eq!(model.len(), eff_cap, "Full fired before capacity");
                    }
                    Err(PushError::Closed(_)) => prop_assert!(false, "consumer is alive"),
                }
                next += 1;
            } else {
                prop_assert_eq!(cons.pop(), model.pop_front());
            }
            prop_assert_eq!(prod.len(), model.len());
            prop_assert_eq!(prod.is_empty(), model.is_empty());
        }
        // Drain: everything the model holds comes out in order, then None.
        drop(prod);
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(cons.pop(), Some(want));
        }
        prop_assert_eq!(cons.pop(), None);
        prop_assert!(cons.is_drained(), "empty ring with a dead producer must drain");
    }

    /// Cross-thread: a producer pushing in arbitrary bursts (spinning on
    /// Full) and a consumer popping in arbitrary bursts must transfer the
    /// exact sequence, whatever the scheduler does — this is the test that
    /// gives the unsafe Acquire/Release code its miles.
    #[test]
    fn cross_thread_bursts_preserve_the_sequence(
        cap in 1usize..17,
        total in 0usize..600,
        push_bursts in prop::collection::vec(1usize..32, 1..16),
        pop_bursts in prop::collection::vec(1usize..32, 1..16),
    ) {
        let (prod, cons) = ring::ring::<usize>(cap, RingTag::new(1, 7, 42));
        let producer = thread::spawn(move || {
            let mut sent = 0;
            let mut b = 0;
            while sent < total {
                let burst = push_bursts[b % push_bursts.len()].min(total - sent);
                b += 1;
                let mut pushed = 0;
                while pushed < burst {
                    match prod.push(sent) {
                        Ok(()) => {
                            sent += 1;
                            pushed += 1;
                        }
                        Err(PushError::Full(_)) => thread::yield_now(),
                        Err(PushError::Closed(_)) => return,
                    }
                }
            }
        });
        let mut got = Vec::with_capacity(total);
        let mut b = 0;
        while !(cons.is_drained() && got.len() >= total) {
            let burst = pop_bursts[b % pop_bursts.len()];
            b += 1;
            for _ in 0..burst {
                match cons.pop() {
                    Some(v) => got.push(v),
                    None => {
                        thread::yield_now();
                        break;
                    }
                }
            }
        }
        producer.join().unwrap();
        prop_assert_eq!(got.len(), total);
        prop_assert!(got.iter().enumerate().all(|(i, &v)| i == v), "sequence corrupted");
    }

    /// Generation staleness: a tag minted for (slot, generation) validates
    /// against exactly that generation of that slot and nothing else — the
    /// property that makes recycled connection slots immune to deliveries
    /// from their previous life.
    #[test]
    fn stale_generation_tags_never_validate(
        reactor in 0u32..64,
        slot in 0u32..10_000,
        generation in 0u32..u32::MAX,
        probe in 0u32..u32::MAX,
    ) {
        let tag = RingTag::new(reactor, generation, slot);
        prop_assert_eq!(tag.reactor, reactor);
        prop_assert_eq!(tag.slot(), slot as usize);
        prop_assert_eq!(tag.generation(), generation);
        prop_assert!(tag.is_current(generation));
        if probe != generation {
            prop_assert!(
                !tag.is_current(probe),
                "tag for generation {} validated against {}",
                generation,
                probe
            );
        }
        // The post-close bump — exactly what `Reactor::close` does —
        // retires the tag even when the counter wraps.
        prop_assert!(!tag.is_current(generation.wrapping_add(1)));
    }

    /// Closed-side exactness: after the consumer leaves, every push is
    /// rejected with the item handed back; after the producer leaves, the
    /// consumer still pops everything already queued before draining.
    #[test]
    fn close_semantics_are_exact(
        cap in 1usize..17,
        queued in 0usize..16,
        late_pushes in 1usize..8,
    ) {
        // Consumer leaves first.
        let (prod, cons) = ring::ring::<usize>(cap, RingTag::new(0, 0, 0));
        let queued = queued.min(cap.next_power_of_two());
        for i in 0..queued {
            prod.push(i).unwrap();
        }
        drop(cons);
        prop_assert!(prod.is_closed());
        for i in 0..late_pushes {
            match prod.push(1000 + i) {
                Err(PushError::Closed(v)) => prop_assert_eq!(v, 1000 + i),
                other => prop_assert!(false, "expected Closed, got {:?}", other.is_ok()),
            }
        }

        // Producer leaves first: queued items survive it.
        let (prod, cons) = ring::ring::<usize>(cap, RingTag::new(0, 0, 0));
        for i in 0..queued {
            prod.push(i).unwrap();
        }
        drop(prod);
        for i in 0..queued {
            prop_assert!(!cons.is_drained(), "drained with items still queued");
            prop_assert_eq!(cons.pop(), Some(i));
        }
        prop_assert_eq!(cons.pop(), None);
        prop_assert!(cons.is_drained());
    }
}
