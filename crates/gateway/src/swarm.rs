//! Open-loop SSE load swarm: tens of thousands of concurrent streams from
//! a handful of threads.
//!
//! The blocking [`client`](crate::client) opens one thread per in-flight
//! stream — fine for a dozen, fatal for ten thousand. The swarm splits the
//! work the same way the server's reactor does:
//!
//! * **Connector threads** (a small fixed pool) claim requests off a
//!   shared cursor over the time-ordered schedule, sleep until each fire
//!   instant, record the firing lag (open-loop honesty: if the generator
//!   saturates, the lag shows it — the bench gates on it), then connect,
//!   write the request blocking, flip the socket nonblocking, and hand it
//!   to the reader.
//! * **One reader thread** owns a [`Poller`] over every live stream,
//!   parses response heads and SSE frames incrementally
//!   ([`sse::SseScanner`]), and timestamps tokens for TTFT/TBT.
//!
//! Thread count is `connectors + 1` regardless of how many streams are
//! simultaneously open.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::poll::{self, PollEvent, Poller, WAKE_TOKEN};
use crate::sse::{self, SseScanner};

/// Swarm tuning knobs.
#[derive(Debug, Clone)]
pub struct SwarmOptions {
    /// Connector thread pool size.
    pub connectors: usize,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Reconnect attempts when the listen backlog sheds the SYN.
    pub connect_retries: u32,
    /// Shrink each socket's kernel receive buffer (Linux only; slow-reader
    /// tests use this to make server-side backpressure trip quickly).
    pub sock_rcvbuf: Option<u32>,
}

impl Default for SwarmOptions {
    fn default() -> SwarmOptions {
        SwarmOptions {
            // One firing thread per core: connect(2) + write(2) are the
            // hot path, and matching the host keeps firing lag flat as
            // the schedule rate climbs.
            connectors: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(8),
            connect_timeout: Duration::from_secs(5),
            connect_retries: 10,
            sock_rcvbuf: None,
        }
    }
}

/// Outcome of one scheduled stream.
#[derive(Debug, Clone, Default)]
pub struct StreamSample {
    /// HTTP status (0 when the connection failed before a response head).
    pub status: u16,
    /// SSE data payloads received, excluding the `[DONE]` sentinel.
    pub tokens: u32,
    /// Fire → first token.
    pub ttft: Option<Duration>,
    /// Inter-token gaps.
    pub tbts: Vec<Duration>,
    /// `[DONE]` sentinel observed (clean end of stream).
    pub done: bool,
    /// Connect/read failed mid-flight.
    pub io_error: bool,
    /// How late the request actually fired vs. its schedule slot.
    pub fire_lag: Duration,
}

/// Live progress counters, readable while the swarm runs.
#[derive(Debug, Default)]
pub struct SwarmGauges {
    open: AtomicUsize,
    peak_open: AtomicUsize,
    fired: AtomicUsize,
    responded: AtomicUsize,
    finished: AtomicUsize,
    max_fire_lag_ns: AtomicU64,
}

impl SwarmGauges {
    /// Streams currently open (handed to the reader, not yet finalized).
    pub fn open(&self) -> usize {
        self.open.load(Ordering::SeqCst)
    }
    /// High-water mark of simultaneously open streams.
    pub fn peak_open(&self) -> usize {
        self.peak_open.load(Ordering::SeqCst)
    }
    /// Requests fired so far.
    pub fn fired(&self) -> usize {
        self.fired.load(Ordering::SeqCst)
    }
    /// Streams whose HTTP response head has arrived — i.e. the gateway has
    /// routed (admitted or rejected) the request.
    pub fn responded(&self) -> usize {
        self.responded.load(Ordering::SeqCst)
    }
    /// Streams finalized (cleanly or not).
    pub fn finished(&self) -> usize {
        self.finished.load(Ordering::SeqCst)
    }
    /// Worst firing lag observed.
    pub fn max_fire_lag(&self) -> Duration {
        Duration::from_nanos(self.max_fire_lag_ns.load(Ordering::SeqCst))
    }
}

/// A launched swarm; [`Swarm::join`] blocks until every stream resolves.
pub struct Swarm {
    gauges: Arc<SwarmGauges>,
    samples: Arc<Mutex<Vec<Option<StreamSample>>>>,
    connectors: Vec<JoinHandle<()>>,
    reader: JoinHandle<()>,
}

impl Swarm {
    /// Fires `schedule` — `(fire offset from now, POST body JSON)` pairs,
    /// which must be sorted by offset — at `/v1/completions` on `addr`.
    pub fn launch(
        addr: SocketAddr,
        schedule: Vec<(Duration, String)>,
        opts: SwarmOptions,
    ) -> io::Result<Swarm> {
        Swarm::launch_multi(vec![addr], schedule, opts)
    }

    /// Like [`Swarm::launch`] but round-robins connections across several
    /// destination addresses (request `i` → `addrs[i % addrs.len()]`).
    ///
    /// A single client→server 4-tuple family caps out at the ephemeral
    /// port range (~28k concurrent streams on a default Linux). Pointing
    /// the swarm at several loopback aliases of a gateway bound to
    /// `0.0.0.0` (`127.0.0.1`, `127.0.0.2`, …) multiplies the tuple space
    /// — the 100k-stream soak needs this.
    pub fn launch_multi(
        addrs: Vec<SocketAddr>,
        schedule: Vec<(Duration, String)>,
        opts: SwarmOptions,
    ) -> io::Result<Swarm> {
        assert!(!addrs.is_empty(), "need at least one destination address");
        let addrs = Arc::new(addrs);
        let n = schedule.len();
        let gauges = Arc::new(SwarmGauges::default());
        let samples = Arc::new(Mutex::new(vec![None; n]));
        let schedule = Arc::new(schedule);
        let cursor = Arc::new(AtomicUsize::new(0));
        let epoch = Instant::now();

        let poller = Poller::new()?;
        let waker = poller.waker();
        let (handoff_tx, handoff_rx) = mpsc::channel::<(usize, TcpStream, Instant)>();

        let reader = {
            let gauges = Arc::clone(&gauges);
            let samples = Arc::clone(&samples);
            thread::Builder::new()
                .name("swarm-reader".into())
                .spawn(move || reader_loop(poller, handoff_rx, gauges, samples, n))?
        };

        let connectors = (0..opts.connectors.max(1))
            .map(|c| {
                let gauges = Arc::clone(&gauges);
                let samples = Arc::clone(&samples);
                let schedule = Arc::clone(&schedule);
                let cursor = Arc::clone(&cursor);
                let addrs = Arc::clone(&addrs);
                let handoff = handoff_tx.clone();
                let waker = waker.clone();
                let opts = opts.clone();
                thread::Builder::new()
                    .name(format!("swarm-fire-{c}"))
                    .spawn(move || {
                        connector_loop(
                            &addrs, &schedule, &cursor, epoch, &opts, &gauges, &samples, &handoff,
                            &waker,
                        )
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;
        drop(handoff_tx);

        Ok(Swarm {
            gauges,
            samples,
            connectors,
            reader,
        })
    }

    /// Live counters.
    pub fn gauges(&self) -> &SwarmGauges {
        &self.gauges
    }

    /// Blocks until every scheduled stream resolves; returns the samples
    /// in schedule order.
    pub fn join(self) -> Vec<StreamSample> {
        for c in self.connectors {
            let _ = c.join();
        }
        let _ = self.reader.join();
        let mut samples = self.samples.lock().expect("swarm samples");
        samples
            .iter_mut()
            .map(|s| s.take().unwrap_or_default())
            .collect()
    }
}

#[allow(clippy::too_many_arguments)]
fn connector_loop(
    addrs: &[SocketAddr],
    schedule: &[(Duration, String)],
    cursor: &AtomicUsize,
    epoch: Instant,
    opts: &SwarmOptions,
    gauges: &SwarmGauges,
    samples: &Mutex<Vec<Option<StreamSample>>>,
    handoff: &mpsc::Sender<(usize, TcpStream, Instant)>,
    waker: &poll::Waker,
) {
    loop {
        let i = cursor.fetch_add(1, Ordering::SeqCst);
        let Some((offset, body)) = schedule.get(i) else {
            return;
        };
        let due = epoch + *offset;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            thread::sleep(wait);
        }
        let fired_at = Instant::now();
        let fire_lag = fired_at.saturating_duration_since(due);
        gauges
            .max_fire_lag_ns
            .fetch_max(fire_lag.as_nanos() as u64, Ordering::SeqCst);
        gauges.fired.fetch_add(1, Ordering::SeqCst);

        match open_stream(addrs[i % addrs.len()], body, opts) {
            Ok(stream) => {
                // Pre-seed the lag before the handoff so the reader can
                // never finalize first and then be overwritten.
                {
                    let mut samples = samples.lock().expect("swarm samples");
                    if let Some(slot) = samples.get_mut(i) {
                        *slot = Some(StreamSample {
                            fire_lag,
                            ..Default::default()
                        });
                    }
                }
                let now_open = gauges.open.fetch_add(1, Ordering::SeqCst) + 1;
                gauges.peak_open.fetch_max(now_open, Ordering::SeqCst);
                if handoff.send((i, stream, fired_at)).is_err() {
                    // Reader gone (shouldn't happen before completion).
                    gauges.open.fetch_sub(1, Ordering::SeqCst);
                    finalize(
                        samples,
                        gauges,
                        i,
                        StreamSample {
                            io_error: true,
                            fire_lag,
                            ..Default::default()
                        },
                    );
                    continue;
                }
                waker.wake();
            }
            Err(_) => {
                finalize(
                    samples,
                    gauges,
                    i,
                    StreamSample {
                        io_error: true,
                        fire_lag,
                        ..Default::default()
                    },
                );
            }
        }
    }
}

/// Connect (with bounded retries against backlog shedding), write the full
/// request blocking, then flip nonblocking for the reader.
fn open_stream(addr: SocketAddr, body: &str, opts: &SwarmOptions) -> io::Result<TcpStream> {
    let mut attempt = 0;
    let stream = loop {
        match TcpStream::connect_timeout(&addr, opts.connect_timeout) {
            Ok(s) => break s,
            Err(e) => {
                attempt += 1;
                if attempt > opts.connect_retries {
                    return Err(e);
                }
                thread::sleep(Duration::from_millis(10 * attempt as u64));
            }
        }
    };
    stream.set_nodelay(true)?;
    if let Some(rcv) = opts.sock_rcvbuf {
        let _ = poll::shrink_socket_buffers(stream.as_raw_fd(), None, Some(rcv));
    }
    let mut stream = stream;
    let req = format!(
        "POST /v1/completions HTTP/1.1\r\nHost: gateway\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(req.as_bytes())?;
    stream.flush()?;
    stream.set_nonblocking(true)?;
    Ok(stream)
}

fn finalize(
    samples: &Mutex<Vec<Option<StreamSample>>>,
    gauges: &SwarmGauges,
    i: usize,
    sample: StreamSample,
) {
    let mut samples = samples.lock().expect("swarm samples");
    if let Some(slot) = samples.get_mut(i) {
        *slot = Some(sample);
    }
    gauges.finished.fetch_add(1, Ordering::SeqCst);
}

/// Per-stream read state in the reader.
struct Live {
    stream: TcpStream,
    fired_at: Instant,
    /// Accumulates until the blank line ends the response head.
    head: Vec<u8>,
    status: u16,
    in_body: bool,
    scanner: SseScanner,
    tokens: u32,
    ttft: Option<Duration>,
    tbts: Vec<Duration>,
    last_token_at: Option<Instant>,
    done: bool,
    fire_lag: Duration,
}

fn reader_loop(
    mut poller: Poller,
    handoff: mpsc::Receiver<(usize, TcpStream, Instant)>,
    gauges: Arc<SwarmGauges>,
    samples: Arc<Mutex<Vec<Option<StreamSample>>>>,
    total: usize,
) {
    let mut live: Vec<Option<Live>> = Vec::new();
    let mut slots: VecDeque<usize> = VecDeque::new();
    // token = (slot << 32) | schedule index; slot resolves the Live entry,
    // the index names the sample.
    let mut events: Vec<PollEvent> = Vec::new();
    let mut payloads: Vec<String> = Vec::new();
    while gauges.finished.load(Ordering::SeqCst) < total {
        // Adopt newly fired streams.
        while let Ok((i, stream, fired_at)) = handoff.try_recv() {
            let fire_lag = {
                let samples = samples.lock().expect("swarm samples");
                samples
                    .get(i)
                    .and_then(|s| s.as_ref())
                    .map(|s| s.fire_lag)
                    .unwrap_or_default()
            };
            let slot = slots.pop_front().unwrap_or_else(|| {
                live.push(None);
                live.len() - 1
            });
            let token = ((slot as u64) << 32) | i as u64;
            if poller.register(stream.as_raw_fd(), token).is_err() {
                slots.push_back(slot);
                gauges.open.fetch_sub(1, Ordering::SeqCst);
                finalize(
                    &samples,
                    &gauges,
                    i,
                    StreamSample {
                        io_error: true,
                        fire_lag,
                        ..Default::default()
                    },
                );
                continue;
            }
            live[slot] = Some(Live {
                stream,
                fired_at,
                head: Vec::new(),
                status: 0,
                in_body: false,
                scanner: SseScanner::new(),
                tokens: 0,
                ttft: None,
                tbts: Vec::new(),
                last_token_at: None,
                done: false,
                fire_lag,
            });
        }

        if poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .is_err()
        {
            break;
        }
        for &ev in events.iter() {
            if ev.token == WAKE_TOKEN {
                continue;
            }
            let slot = (ev.token >> 32) as usize;
            let i = (ev.token & 0xFFFF_FFFF) as usize;
            if !ev.readable && !ev.hangup {
                continue;
            }
            let finished = match live.get_mut(slot).and_then(|l| l.as_mut()) {
                Some(l) => {
                    let had_head = l.in_body;
                    let fin = read_stream(l, &mut payloads);
                    if !had_head && l.in_body {
                        gauges.responded.fetch_add(1, Ordering::SeqCst);
                    }
                    fin
                }
                None => continue, // stale event for a recycled slot
            };
            if finished {
                let l = live[slot].take().expect("live stream");
                let _ = poller.deregister(l.stream.as_raw_fd());
                slots.push_back(slot);
                gauges.open.fetch_sub(1, Ordering::SeqCst);
                finalize(
                    &samples,
                    &gauges,
                    i,
                    StreamSample {
                        status: l.status,
                        tokens: l.tokens,
                        ttft: l.ttft,
                        tbts: l.tbts,
                        done: l.done,
                        io_error: l.status == 0 && !l.done,
                        fire_lag: l.fire_lag,
                    },
                );
            }
        }
    }
}

/// Drain one stream's socket (edge-triggered); returns true when the
/// stream is over (EOF or error).
fn read_stream(l: &mut Live, payloads: &mut Vec<String>) -> bool {
    let mut buf = [0u8; 8 * 1024];
    loop {
        match l.stream.read(&mut buf) {
            Ok(0) => return true,
            Ok(n) => {
                let mut chunk = &buf[..n];
                if !l.in_body {
                    l.head.extend_from_slice(chunk);
                    if let Some(pos) = find_head_end(&l.head) {
                        l.status = parse_status(&l.head);
                        l.in_body = true;
                        // Replay body bytes that rode in with the head.
                        let body = l.head.split_off(pos);
                        payloads.clear();
                        l.scanner.feed(&body, payloads);
                        note_payloads(l, payloads);
                    }
                    chunk = &[];
                }
                if !chunk.is_empty() {
                    payloads.clear();
                    l.scanner.feed(chunk, payloads);
                    note_payloads(l, payloads);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}

fn note_payloads(l: &mut Live, payloads: &[String]) {
    for p in payloads {
        if p == sse::DONE {
            l.done = true;
            continue;
        }
        let now = Instant::now();
        l.tokens += 1;
        match l.last_token_at {
            None => l.ttft = Some(now.saturating_duration_since(l.fired_at)),
            Some(prev) => l.tbts.push(now.saturating_duration_since(prev)),
        }
        l.last_token_at = Some(now);
    }
}

/// Byte offset just past the `\r\n\r\n` (or `\n\n`) head terminator.
fn find_head_end(head: &[u8]) -> Option<usize> {
    head.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| head.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

fn parse_status(head: &[u8]) -> u16 {
    let line = head.split(|&b| b == b'\n').next().unwrap_or(&[]);
    std::str::from_utf8(line)
        .ok()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}
