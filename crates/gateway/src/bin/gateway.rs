//! `gateway` — serve the Aegaeon simulator live over HTTP.
//!
//! ```text
//! gateway [--addr HOST:PORT] [--mode realtime|timewarp] [--factor K]
//!         [--models N] [--prefill N] [--decode N] [--horizon-secs S]
//!         [--max-inflight N] [--seed S] [--session-affinity]
//! ```
//!
//! Runs until SIGTERM/SIGINT, then drains gracefully: in-flight streams
//! complete, the run summary and the replayable arrival count go to
//! stderr, and the process exits 0 (1 on audit violations).

use std::time::Duration;

use aegaeon::AegaeonConfig;
use aegaeon_gateway::server::{Gateway, GatewayConfig};
use aegaeon_gateway::signal;
use aegaeon_gateway::ClockMode;
use aegaeon_model::{ModelSpec, Zoo};
use aegaeon_sim::SimTime;

struct Args {
    addr: String,
    mode: ClockMode,
    models: usize,
    prefill: usize,
    decode: usize,
    horizon_secs: f64,
    max_inflight: u32,
    seed: u64,
    chaos: Option<String>,
    report_out: Option<String>,
    trace_out: Option<String>,
    max_connections: usize,
    reactors: usize,
    session_affinity: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        mode: ClockMode::Realtime,
        models: 4,
        prefill: 1,
        decode: 1,
        horizon_secs: 3600.0,
        max_inflight: 64,
        seed: 7,
        chaos: None,
        report_out: None,
        trace_out: None,
        max_connections: 16 * 1024,
        reactors: 1,
        session_affinity: false,
    };
    let mut factor = 10.0;
    let mut timewarp = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--mode" => match value("--mode")?.as_str() {
                "realtime" => timewarp = false,
                "timewarp" => timewarp = true,
                other => return Err(format!("unknown mode {other:?}")),
            },
            "--factor" => {
                factor = value("--factor")?
                    .parse()
                    .map_err(|e| format!("--factor: {e}"))?
            }
            "--models" => {
                args.models = value("--models")?
                    .parse()
                    .map_err(|e| format!("--models: {e}"))?
            }
            "--prefill" => {
                args.prefill = value("--prefill")?
                    .parse()
                    .map_err(|e| format!("--prefill: {e}"))?
            }
            "--decode" => {
                args.decode = value("--decode")?
                    .parse()
                    .map_err(|e| format!("--decode: {e}"))?
            }
            "--horizon-secs" => {
                args.horizon_secs = value("--horizon-secs")?
                    .parse()
                    .map_err(|e| format!("--horizon-secs: {e}"))?
            }
            "--max-inflight" => {
                args.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("--max-inflight: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--session-affinity" => args.session_affinity = true,
            "--chaos" => args.chaos = Some(value("--chaos")?),
            "--report-out" => args.report_out = Some(value("--report-out")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--reactors" => {
                let v = value("--reactors")?;
                args.reactors = if v == "auto" {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                } else {
                    v.parse().map_err(|e| format!("--reactors: {e}"))?
                };
                if args.reactors == 0 {
                    return Err("--reactors must be >= 1".to_string());
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: gateway [--addr HOST:PORT] [--mode realtime|timewarp] [--factor K] \
                     [--models N] [--prefill N] [--decode N] [--horizon-secs S] \
                     [--max-inflight N] [--seed S] [--chaos PLAN] [--report-out FILE] \
                     [--trace-out FILE] [--max-connections N] [--reactors N|auto] \
                     [--session-affinity]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if timewarp {
        args.mode = ClockMode::Timewarp(factor);
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gateway: {e}");
            std::process::exit(2);
        }
    };
    signal::install();

    let mut cfg = AegaeonConfig::small_testbed(args.prefill, args.decode);
    cfg.seed = args.seed;
    cfg.session_affinity = args.session_affinity;
    if let Some(plan) = &args.chaos {
        cfg.faults = match plan.parse() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("gateway: --chaos: {e}");
                std::process::exit(2);
            }
        };
    }
    let zoo = Zoo::standard();
    let models: Vec<ModelSpec> = Zoo::replicate(&zoo.market_band(), args.models);
    let mut gw_cfg = GatewayConfig::local(args.mode);
    gw_cfg.addr = args.addr;
    gw_cfg.live_horizon = SimTime::from_secs_f64(args.horizon_secs);
    gw_cfg.admission.max_inflight_total = args.max_inflight;
    gw_cfg.max_connections = args.max_connections;
    gw_cfg.reactors = args.reactors;

    let gateway = match Gateway::start(&cfg, &models, gw_cfg) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("gateway: failed to start: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "gateway: serving {} models on http://{} (mode: {:?}, reactors: {})",
        models.len(),
        gateway.addr(),
        args.mode,
        args.reactors,
    );

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("gateway: shutdown requested, draining...");
    let peak_connections = gateway.peak_connections();
    let report = gateway.shutdown();
    let r = &report.result;
    eprintln!(
        "gateway: drained. requests={} completed={} slow_drops={} sim_end={:.3}s",
        report.trace.requests.len(),
        r.completed,
        report.slow_drops,
        r.end_time.as_secs_f64(),
    );
    if let Some(out) = &args.report_out {
        // Gateway-side half of the two-process soak: the bench harness
        // merges this with its client-side samples.
        let (events_checked, violations, rejections) = report
            .audit
            .as_ref()
            .map(|a| (a.events_checked, a.violations.len(), a.rejections))
            .unwrap_or_default();
        let peaks = report
            .per_reactor_peak
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        // Accept-sharding balance: max/min per-reactor peak (1.0 = even).
        let max_peak = report.per_reactor_peak.iter().copied().max().unwrap_or(0);
        let min_peak = report.per_reactor_peak.iter().copied().min().unwrap_or(0);
        let balance = if min_peak > 0 {
            max_peak as f64 / min_peak as f64
        } else {
            0.0
        };
        let json = format!(
            "{{\n  \"requests\": {},\n  \"completed\": {},\n  \"rejections\": {},\n  \
             \"slow_drops\": {},\n  \"peak_connections\": {},\n  \"sim_end_secs\": {:.6},\n  \
             \"audit_events_checked\": {},\n  \"audit_violations\": {},\n  \
             \"reactors\": {},\n  \"per_reactor_peak\": [{}],\n  \
             \"reactor_balance_max_over_min\": {:.3},\n  \
             \"fingerprint\": \"{:#018x}\"\n}}\n",
            report.trace.requests.len(),
            r.completed,
            rejections,
            report.slow_drops,
            peak_connections,
            r.end_time.as_secs_f64(),
            events_checked,
            violations,
            args.reactors,
            peaks,
            balance,
            r.fingerprint(),
        );
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("gateway: failed to write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("gateway: report written to {out}");
    }
    if let Some(out) = &args.trace_out {
        // Replayable arrival trace: `ServingSession::replay` on this file
        // (same config/seed/chaos) must reproduce the fingerprint above —
        // regardless of how many reactors served the live run.
        if let Err(e) = std::fs::write(out, report.trace.to_json()) {
            eprintln!("gateway: failed to write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("gateway: trace written to {out}");
    }
    if let Some(audit) = &report.audit {
        eprintln!(
            "gateway: audit events_checked={} violations={} rejections={}",
            audit.events_checked,
            audit.violations.len(),
            audit.rejections
        );
        if !audit.violations.is_empty() {
            std::process::exit(1);
        }
    }
}
