//! Bounded per-connection output queue for SSE write-back.
//!
//! The reactor never blocks on a socket write: frames are appended to a
//! [`WriteQueue`] and pumped out whenever the fd reports writable. The
//! queue is the backpressure contract — it holds at most `cap` unsent
//! bytes, and a push that would exceed the cap fails with [`Overflow`] so
//! the caller can drop the slow reader instead of buffering without bound.
//!
//! Bytes are drained strictly FIFO through a head cursor; the backing
//! buffer compacts once the consumed prefix dominates, so steady-state
//! streaming costs amortized O(1) per byte with no per-frame allocation.

use std::io::{self, Write};

/// A push would have exceeded the queue's byte cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflow {
    /// Unsent bytes already queued.
    pub queued: usize,
    /// Bytes the rejected push attempted to add.
    pub attempted: usize,
    /// The configured cap.
    pub cap: usize,
}

/// Bounded FIFO byte queue with a partial-write pump.
#[derive(Debug)]
pub struct WriteQueue {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    head: usize,
    cap: usize,
}

impl WriteQueue {
    /// A queue holding at most `cap` unsent bytes.
    pub fn new(cap: usize) -> WriteQueue {
        WriteQueue {
            buf: Vec::new(),
            head: 0,
            cap,
        }
    }

    /// Unsent bytes currently queued.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// The configured cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Append `bytes`, failing (and queuing nothing) if the queue would
    /// exceed its cap. All-or-nothing: a frame is never half-queued.
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), Overflow> {
        if self.len() + bytes.len() > self.cap {
            return Err(Overflow {
                queued: self.len(),
                attempted: bytes.len(),
                cap: self.cap,
            });
        }
        self.compact();
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    /// Append `bytes` regardless of the cap. For **finite** one-shot
    /// payloads only (a complete HTTP response, the SSE head): memory
    /// stays bounded by the payload's own size because the connection
    /// queues nothing further. Streaming frames must use [`Self::push`]
    /// so the cap can trip.
    pub fn push_unchecked(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Drop the consumed prefix when it dominates the buffer, keeping the
    /// amortized cost of `push` linear.
    fn compact(&mut self) {
        if self.head > 0 && (self.head >= self.buf.len() || self.head >= 4096) {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }

    /// Write queued bytes to `w` until empty or `WouldBlock`, tolerating
    /// short writes. Returns `Ok(true)` if the queue drained (fd still
    /// writable), `Ok(false)` on `WouldBlock` (wait for the next writable
    /// edge). Interrupted writes retry; zero-length writes and all other
    /// errors surface as `Err` so the caller tears the connection down.
    pub fn pump(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while !self.is_empty() {
            match w.write(&self.buf[self.head..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.head += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.compact();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_through_partial_writes() {
        let mut q = WriteQueue::new(64);
        q.push(b"hello ").unwrap();
        q.push(b"world").unwrap();
        assert_eq!(q.len(), 11);

        // A writer that accepts 3 bytes then blocks.
        struct Throttle(Vec<u8>, usize);
        impl Write for Throttle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.1 == 0 {
                    return Err(io::Error::from(io::ErrorKind::WouldBlock));
                }
                let n = buf.len().min(3).min(self.1);
                self.0.extend_from_slice(&buf[..n]);
                self.1 -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut w = Throttle(Vec::new(), 7);
        assert!(!q.pump(&mut w).unwrap());
        assert_eq!(w.0, b"hello w");
        assert_eq!(q.len(), 4);
        w.1 = usize::MAX;
        assert!(q.pump(&mut w).unwrap());
        assert_eq!(w.0, b"hello world");
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_is_all_or_nothing() {
        let mut q = WriteQueue::new(8);
        q.push(b"12345678").unwrap();
        let err = q.push(b"9").unwrap_err();
        assert_eq!(
            err,
            Overflow {
                queued: 8,
                attempted: 1,
                cap: 8
            }
        );
        // The failed push queued nothing.
        assert_eq!(q.len(), 8);
        let mut sink = Vec::new();
        q.pump(&mut sink).unwrap();
        assert_eq!(sink, b"12345678");
    }

    #[test]
    fn drained_capacity_is_reusable() {
        let mut q = WriteQueue::new(4);
        for _ in 0..1000 {
            q.push(b"abcd").unwrap();
            let mut sink = Vec::new();
            assert!(q.pump(&mut sink).unwrap());
            assert_eq!(sink, b"abcd");
        }
        // Compaction kept the backing buffer bounded.
        assert!(q.buf.capacity() <= 16 * 4096);
    }

    #[test]
    fn write_zero_is_an_error() {
        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut q = WriteQueue::new(8);
        q.push(b"x").unwrap();
        assert!(q.pump(&mut Zero).is_err());
    }
}
