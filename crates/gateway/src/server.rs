//! The gateway server: a threaded accept loop, per-connection handlers,
//! and the single driver thread that owns the [`ServingSession`].
//!
//! # Threading model
//!
//! * **Driver thread** — sole owner of the open [`ServingSession`] and the
//!   [`ClockDriver`]. It alternates between stepping simulated time up to
//!   the current wall-clock target and blocking on one control channel
//!   (std has no `select`, so *everything* — injections, metrics
//!   snapshots, endpoint counters, drain — arrives as a [`GwMsg`]).
//! * **Accept thread** — `TcpListener::accept` loop; spawns one handler
//!   thread per connection (one request per connection,
//!   `Connection: close`).
//! * **Handler threads** — parse the request, run admission control, send
//!   an injection to the driver, and stream tokens back as SSE from the
//!   per-request channel the driver's session feeds.
//!
//! # Graceful drain
//!
//! [`Gateway::shutdown`] stops the accept loop, tells the driver to drain,
//! and the driver fast-forwards the session to quiescence: every admitted
//! request completes (stepping speed never changes simulation outcomes)
//! and its tokens flush to the still-open SSE streams before the session
//! drops the sinks. In-flight clients therefore observe complete streams,
//! not resets.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use aegaeon::proxy::{Admission, AdmissionPolicy};
use aegaeon::session::{Endpoint, LiveRequest, ServingSession};
use aegaeon::{AegaeonConfig, AuditReport, InvariantAuditor, RunResult};
use aegaeon_model::ModelSpec;
use aegaeon_sim::SimTime;
use aegaeon_telemetry::prometheus_text;
use aegaeon_workload::Trace;

use crate::api::{self, ApiError};
use crate::clock::{ClockDriver, ClockMode};
use crate::http::{self, HttpParser};
use crate::sse;

/// Gateway deployment settings.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Sim↔wall mapping.
    pub mode: ClockMode,
    /// Fault/hard-stop horizon for the open session.
    pub live_horizon: SimTime,
    /// Admission quotas.
    pub admission: AdmissionPolicy,
    /// Install the invariant auditor (observer only).
    pub audit: bool,
}

impl GatewayConfig {
    /// Loopback on an ephemeral port, a 1-hour horizon, default admission,
    /// auditor on.
    pub fn local(mode: ClockMode) -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            mode,
            live_horizon: SimTime::from_secs_f64(3600.0),
            admission: AdmissionPolicy::default_gateway(),
            audit: true,
        }
    }
}

/// Everything the driver hands back at shutdown.
#[derive(Debug)]
pub struct GatewayReport {
    /// The run result, fingerprint-comparable with an offline replay of
    /// [`GatewayReport::trace`].
    pub result: RunResult,
    /// Audit report (when [`GatewayConfig::audit`] was set), including the
    /// gateway rejection book.
    pub audit: Option<AuditReport>,
    /// Every admitted request with its simulated arrival stamp — replay it
    /// with [`ServingSession::replay`] to reproduce the run offline.
    pub trace: Trace,
}

/// The single control-channel message type (see module docs).
enum GwMsg {
    /// A handler requests injection of a live request.
    Inject {
        not_before: SimTime,
        req: LiveRequest,
    },
    /// A handler wants a Prometheus snapshot.
    Metrics { reply: Sender<String> },
    /// Count one request on an endpoint.
    Note(Endpoint),
    /// Count one admission rejection.
    Rejected,
    /// Begin the graceful drain.
    Drain,
}

/// State shared by the accept loop and every handler thread.
struct Shared {
    clock: ClockDriver,
    epoch: Instant,
    n_models: u32,
    admission: Mutex<Admission>,
    active: AtomicUsize,
    draining: AtomicBool,
}

/// A running gateway; dropping it without [`Gateway::shutdown`] aborts
/// ungracefully (threads are detached).
pub struct Gateway {
    addr: SocketAddr,
    shared: Arc<Shared>,
    ctl: Sender<GwMsg>,
    driver: Option<JoinHandle<(RunResult, Option<AuditReport>, Trace)>>,
    accept: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Binds, spawns the driver and accept threads, and returns
    /// immediately; the gateway is serving once this returns.
    pub fn start(
        sys_cfg: &AegaeonConfig,
        models: &[ModelSpec],
        gw: GatewayConfig,
    ) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(&gw.addr)?;
        let addr = listener.local_addr()?;
        // `/metrics` needs live instruments; telemetry is observer-only
        // (excluded from fingerprints), so forcing it on cannot perturb
        // the simulation or break replay equivalence.
        let mut sys_cfg = sys_cfg.clone();
        sys_cfg.telemetry = aegaeon_telemetry::TelemetrySpec::enabled();
        let mut session = ServingSession::open(&sys_cfg, models, gw.live_horizon);
        if gw.audit {
            session.install_auditor(Box::new(InvariantAuditor::new()));
        }
        let clock = ClockDriver::new(gw.mode);
        let epoch = Instant::now();
        let (ctl_tx, ctl_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            clock,
            epoch,
            n_models: models.len() as u32,
            admission: Mutex::new(Admission::new(gw.admission)),
            active: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        });
        let driver = thread::Builder::new()
            .name("gw-driver".into())
            .spawn(move || driver_loop(session, clock, epoch, ctl_rx))?;
        let accept = {
            let shared = Arc::clone(&shared);
            let ctl = ctl_tx.clone();
            thread::Builder::new()
                .name("gw-accept".into())
                .spawn(move || accept_loop(listener, shared, ctl))?
        };
        Ok(Gateway {
            addr,
            shared,
            ctl: ctl_tx,
            driver: Some(driver),
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently open connections.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop accepting, complete every admitted request
    /// (fast-forwarded — wall pacing no longer applies), flush all token
    /// streams, and return the final report.
    pub fn shutdown(mut self) -> GatewayReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let _ = self.ctl.send(GwMsg::Drain);
        let (result, audit, trace) = self
            .driver
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("gateway driver panicked");
        // Handlers finish their streams from tokens already delivered;
        // give them a bounded window to flush.
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        GatewayReport {
            result,
            audit,
            trace,
        }
    }
}

fn driver_loop(
    mut session: ServingSession,
    clock: ClockDriver,
    epoch: Instant,
    rx: mpsc::Receiver<GwMsg>,
) -> (RunResult, Option<AuditReport>, Trace) {
    let injector = session.injector();
    let forward = |session: &mut ServingSession, msg: GwMsg| -> bool {
        match msg {
            GwMsg::Inject { not_before, req } => {
                injector.send(not_before, req);
            }
            GwMsg::Metrics { reply } => {
                let _ = reply.send(prometheus_text(session.metrics()));
            }
            GwMsg::Note(ep) => session.note_endpoint(ep),
            GwMsg::Rejected => session.note_rejection(),
            GwMsg::Drain => return false,
        }
        true
    };
    loop {
        let target = clock.sim_at(epoch.elapsed());
        session.step_until(target);
        session.set_wall_lag(clock.lag_secs(session.now(), epoch.elapsed()));
        let timeout = match session.next_due() {
            // Work is pending: sleep exactly until it is due (zero when
            // already behind, which loops straight back into stepping).
            Some(t) => clock.delay_for(t, epoch.elapsed()),
            // Quiescent: nothing can happen until a message arrives, but
            // cap the wait so the wall-lag gauge stays fresh.
            None => Duration::from_millis(100),
        };
        match rx.recv_timeout(timeout) {
            Ok(msg) => {
                if !forward(&mut session, msg) {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Drain: absorb control messages already queued (injections sent
    // before the drain message are FIFO-ordered ahead of it, so none are
    // lost), then fast-forward to quiescence.
    while let Ok(msg) = rx.try_recv() {
        forward(&mut session, msg);
    }
    session.step_until(SimTime::MAX);
    let trace = session.injected_trace();
    let (result, report) = session.finish();
    (result, report, trace)
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, ctl: Sender<GwMsg>) {
    for conn in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let shared = Arc::clone(&shared);
        let ctl = ctl.clone();
        shared.active.fetch_add(1, Ordering::SeqCst);
        let counted = Arc::clone(&shared);
        let spawned = thread::Builder::new().name("gw-conn".into()).spawn(move || {
            let _ = handle_connection(stream, &shared, &ctl);
            shared.active.fetch_sub(1, Ordering::SeqCst);
        });
        if spawned.is_err() {
            // Spawn failed (resource exhaustion): the closure never ran, so
            // the connection is shed and the count must be undone here.
            counted.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &Shared,
    ctl: &Sender<GwMsg>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut parser = HttpParser::new();
    let mut buf = [0u8; 4096];
    let req = loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(()); // client left before completing a request
        }
        match parser.feed(&buf[..n]) {
            Ok(Some(req)) => break req,
            Ok(None) => continue,
            Err(e) => {
                let (code, reason) = e.status();
                let body = api::error_body("invalid_request", e.detail());
                stream.write_all(&http::response(code, reason, "application/json", &body, &[]))?;
                return Ok(());
            }
        }
    };
    let path = req.target.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let _ = ctl.send(GwMsg::Note(Endpoint::Healthz));
            stream.write_all(&http::response(200, "OK", "text/plain", "ok\n", &[]))
        }
        ("GET", "/metrics") => {
            let _ = ctl.send(GwMsg::Note(Endpoint::Metrics));
            let (tx, rx) = mpsc::channel();
            let text = if ctl.send(GwMsg::Metrics { reply: tx }).is_ok() {
                rx.recv_timeout(Duration::from_secs(5)).ok()
            } else {
                None
            };
            match text {
                Some(text) => stream.write_all(&http::response(
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    &text,
                    &[],
                )),
                None => stream.write_all(&http::response(
                    503,
                    "Service Unavailable",
                    "application/json",
                    &api::error_body("unavailable", "metrics unavailable during shutdown"),
                    &[],
                )),
            }
        }
        ("POST", "/v1/completions") => handle_completions(req.body, stream, shared, ctl),
        (_, "/healthz") | (_, "/metrics") | (_, "/v1/completions") => stream.write_all(
            &http::response(
                405,
                "Method Not Allowed",
                "application/json",
                &api::error_body("method_not_allowed", "wrong method for this endpoint"),
                &[],
            ),
        ),
        _ => stream.write_all(&http::response(
            404,
            "Not Found",
            "application/json",
            &api::error_body("not_found", "no such endpoint"),
            &[],
        )),
    }
}

fn handle_completions(
    body: Vec<u8>,
    mut stream: TcpStream,
    shared: &Shared,
    ctl: &Sender<GwMsg>,
) -> std::io::Result<()> {
    let params = match api::parse_completion(&body, shared.n_models) {
        Ok(p) => p,
        Err(ApiError::Bad(msg)) => {
            return stream.write_all(&http::response(
                400,
                "Bad Request",
                "application/json",
                &api::error_body("invalid_request", &msg),
                &[],
            ));
        }
        Err(ApiError::UnknownModel(m)) => {
            return stream.write_all(&http::response(
                404,
                "Not Found",
                "application/json",
                &api::error_body("model_not_found", &format!("model {m} is not deployed")),
                &[],
            ));
        }
    };
    if shared.draining.load(Ordering::SeqCst) {
        return stream.write_all(&http::response(
            503,
            "Service Unavailable",
            "application/json",
            &api::error_body("unavailable", "gateway is draining"),
            &[],
        ));
    }
    // Admission control: over-quota requests are turned away with a
    // backoff hint and never reach the simulation.
    if let Err(retry_after) = shared.admission.lock().expect("admission").try_admit(params.model) {
        let _ = ctl.send(GwMsg::Rejected);
        let retry = retry_after.to_string();
        return stream.write_all(&http::response(
            429,
            "Too Many Requests",
            "application/json",
            &api::error_body("rate_limit_exceeded", "per-model quota exhausted"),
            &[("Retry-After", retry.as_str())],
        ));
    }
    let _ = ctl.send(GwMsg::Note(Endpoint::Completions));
    let (tx, rx) = mpsc::channel();
    let not_before = shared.clock.sim_at(shared.epoch.elapsed());
    let injected = ctl.send(GwMsg::Inject {
        not_before,
        req: LiveRequest {
            model: params.model,
            input_tokens: params.input_tokens,
            output_tokens: params.output_tokens,
            sink: Some(tx),
        },
    });
    let streamed = if injected.is_err() {
        stream.write_all(&http::response(
            503,
            "Service Unavailable",
            "application/json",
            &api::error_body("unavailable", "gateway is draining"),
            &[],
        ))
    } else {
        stream_tokens(&mut stream, params, rx)
    };
    shared
        .admission
        .lock()
        .expect("admission")
        .release(params.model);
    streamed
}

fn stream_tokens(
    stream: &mut TcpStream,
    params: api::CompletionParams,
    rx: mpsc::Receiver<aegaeon::TokenEv>,
) -> std::io::Result<()> {
    stream.write_all(&http::sse_head())?;
    stream.flush()?;
    // recv() returning Err means every sender is gone: either the final
    // token was delivered (sink removed) or the session shut down mid
    // stream — in the latter case the stream simply ends without the DONE
    // sentinel and the client sees a truncated response.
    while let Ok(tok) = rx.recv() {
        let chunk = api::completion_chunk(
            tok.req.0,
            params.model,
            tok.index,
            tok.at.as_nanos(),
            tok.done,
        );
        stream.write_all(sse::event(&chunk).as_bytes())?;
        stream.flush()?;
        if tok.done {
            stream.write_all(sse::DONE_FRAME.as_bytes())?;
            stream.flush()?;
            break;
        }
    }
    Ok(())
}
