//! The gateway server: an N-reactor I/O plane in front of a dedicated
//! simulation thread.
//!
//! # Threading model
//!
//! **N I/O reactors** (`gw-io-<i>`) each own a private `SO_REUSEPORT`
//! listener bound to the same address, a private [`Poller`] (epoll on
//! Linux), and a private generation-tagged connection slab with bounded
//! [`WriteQueue`]s. The kernel shards incoming connections across the
//! listener group by 4-tuple hash, so accepts, reads, and writes spread
//! over cores with zero cross-reactor locking — no reactor ever touches
//! another reactor's connections.
//!
//! **One sim thread** (`gw-sim`) owns the open [`ServingSession`]
//! exclusively: it steps simulated time toward the wall-clock target in
//! bounded event chunks and is the only thread that mutates simulation
//! state, so determinism needs no locks at all.
//!
//! Work crosses the boundary exactly three ways:
//!
//! * **Arrivals** flow reactor → sim through the session's thread-safe
//!   [`Injector`] (the existing injection port; stamps are assigned at pop
//!   boundaries on the sim thread, so reactor count cannot perturb replay).
//! * **Tokens** flow sim → reactor through one bounded SPSC
//!   [`ring`](crate::ring) per request, created by the owning reactor and
//!   sized to the request's maximum output, so a well-formed stream can
//!   never overflow it. Each ring handle is tagged `(reactor, generation,
//!   slot)`; a recycled connection bumps the slot generation, so a stale
//!   delivery can never reach the wrong stream. A [`DirtyBoard`] flag per
//!   reactor tells the sim loop exactly which reactor [`Waker`]s to poke
//!   after a step flushes tokens.
//! * **Observer-only notes** (endpoint counters, 429s, slow drops, health
//!   gauges) flow reactor → sim over an unbounded control channel; they
//!   touch only the metrics registry, which fingerprints exclude.
//!
//! `/metrics` and `/v1/slo` are served from snapshots the sim thread
//! re-renders every [`METRICS_REFRESH`]; reactors never read the session
//! directly. A scrape that finds the snapshot older than the refresh
//! cadence (the sim thread only renders on its own loop iterations, which
//! an idle or busy loop can stretch) posts a [`Ctl::ForceRender`] so the
//! sim thread re-renders promptly; the observed staleness is exported as
//! the `metrics_snapshot_age_ms` gauge.
//!
//! # Backpressure contract
//!
//! Unchanged from the single-reactor design, now enforced per reactor:
//! token write-back is buffered through a bounded [`WriteQueue`] per
//! connection ([`GatewayConfig::max_conn_buffer`] unsent bytes). A reader
//! that falls so far behind that its queue would overflow is **dropped**:
//! the connection closes without the `[DONE]` sentinel, the admission slot
//! is released, and the drop is counted (labeled
//! `gateway_slow_drops{reactor="i"}` in `/metrics`,
//! [`GatewayReport::slow_drops`] at shutdown). Admission quotas are shared
//! across reactors behind a mutex taken once per request lifecycle, never
//! per token.
//!
//! # Graceful drain
//!
//! [`Gateway::shutdown`] sets the drain flag and wakes every thread. The
//! sim thread fast-forwards the session to quiescence (stepping speed
//! never changes simulation outcomes), pokes reactors as tokens flush,
//! then drops all remaining token sinks so no reactor can wait on a stream
//! that will never finish (e.g. after a halt). Each reactor stops
//! accepting, flushes every in-flight stream through its output queue,
//! force-closes stragglers at the deadline, and posts a `Drained` barrier
//! message. Only after every reactor checks in does the sim thread finish
//! the session and emit the report — in-flight clients on every reactor
//! observe complete streams, not resets.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use aegaeon::proxy::{Admission, AdmissionPolicy};
use aegaeon::session::{Endpoint, LiveRequest, ServingSession, TokenSink};
use aegaeon::{AegaeonConfig, AuditReport, InvariantAuditor, RunResult, TokenEv};
use aegaeon_model::{ModelId, ModelSpec};
use aegaeon_sim::queue::Injector;
use aegaeon_sim::SimTime;
use aegaeon_telemetry::prometheus_text;
use aegaeon_workload::Trace;

use crate::api::{self, ApiError};
use crate::clock::{ClockDriver, ClockMode};
use crate::http::HttpParser;
use crate::outbuf::WriteQueue;
use crate::poll::{self, PollEvent, Poller, Waker, WAKE_TOKEN};
use crate::ring::{self, DirtyBoard, PushError, RingTag};
use crate::{http, sse};

/// Poller token for the listening socket.
const LISTEN_TOKEN: u64 = u64::MAX - 1;
/// Simulation events dispatched per sim-loop iteration before the control
/// channel is re-checked; bounds how long arrivals/notes can queue behind
/// sim work.
const STEP_CHUNK: u64 = 8192;
/// Longest either loop sleeps with nothing due (keeps gauges fresh).
const MAX_WAIT: Duration = Duration::from_millis(100);
/// Idle connections (no complete request, or unflushed response with a
/// dead peer) are reaped after this long.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// Cadence of the idle-reap sweep.
const SWEEP_EVERY: Duration = Duration::from_secs(5);
/// Hard cap on the graceful-drain flush phase.
const DRAIN_DEADLINE: Duration = Duration::from_secs(60);
/// Cadence of the sim thread's `/metrics` snapshot re-render.
const METRICS_REFRESH: Duration = Duration::from_millis(200);
/// Cadence of each reactor's health-gauge report to the sim thread.
const GAUGE_EVERY: Duration = Duration::from_millis(250);

/// Gateway deployment settings.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Sim↔wall mapping.
    pub mode: ClockMode,
    /// Fault/hard-stop horizon for the open session.
    pub live_horizon: SimTime,
    /// Admission quotas (shared across reactors).
    pub admission: AdmissionPolicy,
    /// Install the invariant auditor (observer only).
    pub audit: bool,
    /// Number of I/O reactor threads, each with its own `SO_REUSEPORT`
    /// listener. 1 reproduces the single-reactor layout (and is the only
    /// value supported off Linux); reactor count never changes simulation
    /// outcomes, only I/O capacity.
    pub reactors: usize,
    /// Hard cap on simultaneously open connections across all reactors;
    /// excess accepts are shed immediately (fd budget guard).
    pub max_connections: usize,
    /// Bounded unsent bytes per connection — the backpressure threshold at
    /// which a slow reader is dropped.
    pub max_conn_buffer: usize,
    /// Shrink each accepted socket's kernel send buffer (Linux only).
    /// Tests use this to make app-level backpressure observable without
    /// hundreds of kilobytes of kernel buffering in the way.
    pub sock_sndbuf: Option<u32>,
}

impl GatewayConfig {
    /// Loopback on an ephemeral port, a 1-hour horizon, default admission,
    /// auditor on, one reactor, 16k connection cap, 256 KiB write buffers.
    pub fn local(mode: ClockMode) -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            mode,
            live_horizon: SimTime::from_secs_f64(3600.0),
            admission: AdmissionPolicy::default_gateway(),
            audit: true,
            reactors: 1,
            max_connections: 16 * 1024,
            max_conn_buffer: 256 * 1024,
            sock_sndbuf: None,
        }
    }
}

/// Everything the gateway hands back at shutdown.
#[derive(Debug)]
pub struct GatewayReport {
    /// The run result, fingerprint-comparable with an offline replay of
    /// [`GatewayReport::trace`].
    pub result: RunResult,
    /// Audit report (when [`GatewayConfig::audit`] was set), including the
    /// gateway rejection book.
    pub audit: Option<AuditReport>,
    /// Every admitted request with its simulated arrival stamp — replay it
    /// with [`ServingSession::replay`] to reproduce the run offline. The
    /// trace format is reactor-count invariant: stamps are assigned by the
    /// injection port on the sim thread, never by an I/O thread.
    pub trace: Trace,
    /// Streams dropped by write-back backpressure (slow readers), summed
    /// across reactors.
    pub slow_drops: u64,
    /// Peak simultaneously-open connections per reactor, indexed by
    /// reactor id — the accept-sharding balance evidence.
    pub per_reactor_peak: Vec<usize>,
}

/// State shared between the threads and the [`Gateway`] handle.
struct Shared {
    active: AtomicUsize,
    peak: AtomicUsize,
    draining: AtomicBool,
    /// Per-reactor peak of simultaneously open connections.
    reactor_peaks: Vec<AtomicUsize>,
}

/// Reactor → sim-thread control messages. Everything here is
/// observer-only (metrics registry traffic) or pure signaling; simulation
/// state is exclusively the sim thread's.
enum Ctl {
    /// Poke: a reactor injected an arrival (or the gateway wants the sim
    /// loop to notice the drain flag).
    Ping,
    /// One request served on an endpoint.
    Note(Endpoint),
    /// One admission rejection (429).
    Rejection,
    /// One slow-reader drop on a reactor.
    SlowDrop(usize),
    /// Periodic reactor health gauges.
    Gauges {
        reactor: usize,
        fds: usize,
        ready: usize,
    },
    /// A scrape found the `/metrics` (or `/v1/slo`) snapshot older than
    /// [`METRICS_REFRESH`]: re-render promptly instead of waiting for the
    /// next sim-loop iteration to notice.
    ForceRender,
    /// Drain barrier: the reactor has flushed (or force-closed) every
    /// connection and exited. Sent exactly once, after its final messages.
    Drained,
}

/// A running gateway; dropping it without [`Gateway::shutdown`] leaves the
/// serving threads detached.
pub struct Gateway {
    addr: SocketAddr,
    shared: Arc<Shared>,
    wakers: Vec<Waker>,
    ctl: Sender<Ctl>,
    reactors: Vec<JoinHandle<()>>,
    sim: Option<JoinHandle<SimOutcome>>,
}

/// What the sim thread hands back at join: the run result, the audit
/// verdict, the injected trace for replay, and the slow-drop tally.
type SimOutcome = (RunResult, Option<AuditReport>, Trace, u64);

impl Gateway {
    /// Binds the `SO_REUSEPORT` listener group, spawns the sim thread and
    /// one reactor thread per listener, and returns immediately; the
    /// gateway is serving once this returns.
    pub fn start(
        sys_cfg: &AegaeonConfig,
        models: &[ModelSpec],
        gw: GatewayConfig,
    ) -> io::Result<Gateway> {
        assert!(gw.reactors >= 1, "need at least one reactor");
        let sock_addr = gw
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
        let (listeners, addr) = poll::reuseport_listener_group(sock_addr, gw.reactors)?;
        // std's 128-deep backlog overflows under swarm-rate connect bursts;
        // every group member gets the deep backlog (best-effort — the
        // kernel clamps to net.core.somaxconn).
        for l in &listeners {
            let _ = poll::widen_listen_backlog(l.as_raw_fd(), 4096);
        }
        // `/metrics` needs live instruments; telemetry is observer-only
        // (excluded from fingerprints), so forcing it on cannot perturb
        // the simulation or break replay equivalence.
        let mut sys_cfg = sys_cfg.clone();
        sys_cfg.telemetry = aegaeon_telemetry::TelemetrySpec::enabled();
        let mut session = ServingSession::open(&sys_cfg, models, gw.live_horizon);
        session.configure_reactors(gw.reactors);
        if gw.audit {
            session.install_auditor(Box::new(InvariantAuditor::new()));
        }
        let shared = Arc::new(Shared {
            active: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            reactor_peaks: (0..gw.reactors).map(|_| AtomicUsize::new(0)).collect(),
        });
        let board = Arc::new(DirtyBoard::new(gw.reactors));
        let snapshot = Arc::new(Mutex::new(prometheus_text(session.metrics())));
        let slo_snapshot = Arc::new(Mutex::new(session.slo_snapshot_json()));
        let render_stamp = Arc::new(Mutex::new(Instant::now()));
        let (ctl_tx, ctl_rx) = std::sync::mpsc::channel::<Ctl>();
        let clock = ClockDriver::new(gw.mode);
        let epoch = Instant::now();
        let injector = session.injector();

        // Pollers (and their wakers) exist before any thread starts, so
        // the sim thread can wake reactors from its very first step.
        let mut pollers = Vec::with_capacity(gw.reactors);
        let mut wakers = Vec::with_capacity(gw.reactors);
        for l in &listeners {
            let mut p = Poller::new()?;
            p.register(l.as_raw_fd(), LISTEN_TOKEN)?;
            wakers.push(p.waker());
            pollers.push(p);
        }

        let sim = {
            let sim = SimThread {
                session,
                clock,
                epoch,
                ctl_rx,
                board: Arc::clone(&board),
                wakers: wakers.clone(),
                shared: Arc::clone(&shared),
                snapshot: Arc::clone(&snapshot),
                slo_snapshot: Arc::clone(&slo_snapshot),
                render_stamp: Arc::clone(&render_stamp),
                force_render: false,
                n_reactors: gw.reactors,
                drained: 0,
            };
            thread::Builder::new()
                .name("gw-sim".into())
                .spawn(move || sim.run())?
        };

        let admission = Arc::new(Mutex::new(Admission::new(gw.admission)));
        let mut reactor_handles = Vec::with_capacity(gw.reactors);
        for (id, (listener, poller)) in listeners.into_iter().zip(pollers).enumerate() {
            let reactor = Reactor {
                id,
                listener,
                poller,
                injector: injector.clone(),
                ctl: ctl_tx.clone(),
                clock,
                epoch,
                board: Arc::clone(&board),
                n_models: models.len() as u32,
                admission: Arc::clone(&admission),
                max_connections: gw.max_connections,
                max_conn_buffer: gw.max_conn_buffer,
                sock_sndbuf: gw.sock_sndbuf,
                shared: Arc::clone(&shared),
                snapshot: Arc::clone(&snapshot),
                slo_snapshot: Arc::clone(&slo_snapshot),
                render_stamp: Arc::clone(&render_stamp),
                slab: Vec::new(),
                gen: Vec::new(),
                free: Vec::new(),
                streaming: Vec::new(),
                pending_write: Vec::new(),
                local_active: 0,
            };
            reactor_handles.push(
                thread::Builder::new()
                    .name(format!("gw-io-{id}"))
                    .spawn(move || reactor.run())?,
            );
        }
        Ok(Gateway {
            addr,
            shared,
            wakers,
            ctl: ctl_tx,
            reactors: reactor_handles,
            sim: Some(sim),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently open connections across all reactors.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// High-water mark of simultaneously open connections (global).
    pub fn peak_connections(&self) -> usize {
        self.shared.peak.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop accepting on every reactor, complete every
    /// admitted request (fast-forwarded — wall pacing no longer applies),
    /// flush all token streams on all reactors, and return the final
    /// report once the drain barrier completes.
    pub fn shutdown(mut self) -> GatewayReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        for w in &self.wakers {
            w.wake();
        }
        let _ = self.ctl.send(Ctl::Ping);
        for r in self.reactors.drain(..) {
            let _ = r.join();
        }
        let (result, audit, trace, slow_drops) = self
            .sim
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("gateway sim thread panicked");
        let per_reactor_peak = self
            .shared
            .reactor_peaks
            .iter()
            .map(|p| p.load(Ordering::SeqCst))
            .collect();
        GatewayReport {
            result,
            audit,
            trace,
            slow_drops,
            per_reactor_peak,
        }
    }
}

// ---------------------------------------------------------------------------
// Sim thread
// ---------------------------------------------------------------------------

/// Token sink handed to the session for one request: pushes into the
/// request's SPSC ring and marks the destination reactor dirty so the sim
/// loop wakes it after the step.
struct RingSink {
    prod: ring::Producer<TokenEv>,
    board: Arc<DirtyBoard>,
}

impl TokenSink for RingSink {
    fn deliver(&mut self, tok: TokenEv) -> bool {
        match self.prod.push(tok) {
            Ok(()) => {
                self.board.mark(self.prod.tag.reactor as usize);
                true
            }
            // Consumer gone: the client hung up (or was slow-dropped); the
            // simulated request still runs to completion.
            Err(PushError::Closed(_)) => false,
            // Rings are sized to the request's max output, so Full means a
            // protocol bug upstream; sever the stream rather than corrupt.
            Err(PushError::Full(_)) => {
                debug_assert!(false, "token ring overflow (ring under-sized?)");
                false
            }
        }
    }
}

struct SimThread {
    session: ServingSession,
    clock: ClockDriver,
    epoch: Instant,
    ctl_rx: Receiver<Ctl>,
    board: Arc<DirtyBoard>,
    wakers: Vec<Waker>,
    shared: Arc<Shared>,
    snapshot: Arc<Mutex<String>>,
    slo_snapshot: Arc<Mutex<String>>,
    /// When the snapshots were last rendered; reactors read it to decide
    /// whether a scrape should post [`Ctl::ForceRender`].
    render_stamp: Arc<Mutex<Instant>>,
    /// A stale scrape asked for a prompt re-render (deduped per ctl batch).
    force_render: bool,
    n_reactors: usize,
    drained: usize,
}

impl SimThread {
    fn run(mut self) -> SimOutcome {
        loop {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let target = self.clock.sim_at(self.epoch.elapsed());
            let (_, truncated) = self.session.step_bounded(target, STEP_CHUNK);
            self.session
                .set_wall_lag(self.clock.lag_secs(self.session.now(), self.epoch.elapsed()));
            self.wake_dirty();
            if self.force_render || self.snapshot_age() >= METRICS_REFRESH {
                self.render_snapshot();
            }
            let timeout = if truncated {
                Duration::ZERO
            } else {
                match self.session.next_due() {
                    Some(t) => self.clock.delay_for(t, self.epoch.elapsed()).min(MAX_WAIT),
                    None => MAX_WAIT,
                }
            };
            match self.ctl_rx.recv_timeout(timeout) {
                Ok(msg) => {
                    self.handle_ctl(msg);
                    while let Ok(m) = self.ctl_rx.try_recv() {
                        self.handle_ctl(m);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.drain()
    }

    /// Drain: fast-forward to quiescence (waking reactors as their rings
    /// fill), cut every remaining sink, then hold the barrier until all
    /// reactors have flushed and checked in.
    fn drain(mut self) -> SimOutcome {
        let deadline = Instant::now() + DRAIN_DEADLINE;
        loop {
            let (_, truncated) = self.session.step_bounded(SimTime::MAX, STEP_CHUNK);
            self.wake_dirty();
            if !truncated || Instant::now() >= deadline {
                break;
            }
        }
        // No further tokens will be produced (quiescent, halted, or past
        // the deadline): drop the remaining sinks so ring consumers observe
        // end of stream instead of waiting on tokens that never come.
        self.session.close_sinks();
        self.render_snapshot();
        for w in &self.wakers {
            w.wake();
        }
        // Barrier: reactors post their final notes and then `Drained`; the
        // per-sender FIFO of the channel guarantees nothing is lost.
        while self.drained < self.n_reactors && Instant::now() < deadline {
            match self.ctl_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(msg) => self.handle_ctl(msg),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.render_snapshot();
        let trace = self.session.injected_trace();
        let slow_drops = self.session.slow_drops();
        let (result, audit) = self.session.finish();
        (result, audit, trace, slow_drops)
    }

    fn handle_ctl(&mut self, msg: Ctl) {
        match msg {
            Ctl::Ping => {}
            Ctl::Note(ep) => self.session.note_endpoint(ep),
            Ctl::Rejection => self.session.note_rejection(),
            Ctl::SlowDrop(reactor) => self.session.note_slow_drop(reactor),
            Ctl::Gauges {
                reactor,
                fds,
                ready,
            } => {
                let peak = self.shared.reactor_peaks[reactor].load(Ordering::SeqCst);
                self.session.set_reactor_gauges(reactor, fds, ready, peak);
            }
            Ctl::ForceRender => self.force_render = true,
            Ctl::Drained => self.drained += 1,
        }
    }

    /// Wake exactly the reactors whose rings received tokens this step.
    fn wake_dirty(&self) {
        for (r, w) in self.wakers.iter().enumerate() {
            if self.board.take(r) {
                w.wake();
            }
        }
    }

    /// Age of the rendered snapshots (how long since the last render).
    fn snapshot_age(&self) -> Duration {
        self.render_stamp.lock().expect("render stamp lock").elapsed()
    }

    /// Re-renders the `/metrics` and `/v1/slo` snapshots. The age of the
    /// snapshot being replaced is recorded first (as
    /// `metrics_snapshot_age_ms`), so the fresh snapshot reports the
    /// staleness a concurrent scrape could actually have observed.
    fn render_snapshot(&mut self) {
        let age = self.snapshot_age();
        self.session.note_snapshot_age(age.as_secs_f64() * 1e3);
        let text = prometheus_text(self.session.metrics());
        *self.snapshot.lock().expect("snapshot lock") = text;
        let slo = self.session.slo_snapshot_json();
        *self.slo_snapshot.lock().expect("slo snapshot lock") = slo;
        *self.render_stamp.lock().expect("render stamp lock") = Instant::now();
        self.force_render = false;
    }
}

// ---------------------------------------------------------------------------
// I/O reactors
// ---------------------------------------------------------------------------

/// Per-connection protocol state.
enum ConnState {
    /// Accumulating the request head/body.
    Reading,
    /// SSE stream in flight; tokens arrive on the request's SPSC ring.
    Streaming {
        ring: ring::Consumer<TokenEv>,
        model: ModelId,
        /// Final token seen (or ring drained after the producer left) and
        /// admission released; the connection closes once the output
        /// queue drains.
        done: bool,
    },
    /// Response fully queued; close once flushed.
    Closing,
}

struct Conn {
    stream: TcpStream,
    out: WriteQueue,
    /// Last readiness edge said the socket accepts writes.
    writable: bool,
    /// Queued in `pending_write` (dedupe flag).
    queued: bool,
    parser: HttpParser,
    state: ConnState,
    last_activity: Instant,
}

struct Reactor {
    id: usize,
    listener: TcpListener,
    poller: Poller,
    injector: Injector<LiveRequest>,
    ctl: Sender<Ctl>,
    clock: ClockDriver,
    epoch: Instant,
    board: Arc<DirtyBoard>,
    n_models: u32,
    admission: Arc<Mutex<Admission>>,
    max_connections: usize,
    max_conn_buffer: usize,
    sock_sndbuf: Option<u32>,
    shared: Arc<Shared>,
    snapshot: Arc<Mutex<String>>,
    slo_snapshot: Arc<Mutex<String>>,
    render_stamp: Arc<Mutex<Instant>>,
    /// Generation-tagged connection slab: token = (gen << 32) | idx, so a
    /// stale readiness event (or ring tag) for a recycled slot can never
    /// touch the new occupant.
    slab: Vec<Option<Conn>>,
    gen: Vec<u32>,
    free: Vec<usize>,
    /// Slab indices currently in `Streaming` state (token-pump worklist).
    streaming: Vec<usize>,
    /// Slab indices with queued output awaiting a pump (deduped).
    pending_write: Vec<usize>,
    /// Connections this reactor currently owns (its share of `shared.active`).
    local_active: usize,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut last_sweep = Instant::now();
        let mut last_gauges = Instant::now();
        loop {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            self.pump_tokens();
            self.pump_writes();
            if last_gauges.elapsed() >= GAUGE_EVERY {
                let _ = self.ctl.send(Ctl::Gauges {
                    reactor: self.id,
                    fds: self.poller.registered(),
                    ready: events.len(),
                });
                last_gauges = Instant::now();
            }
            if self.poller.wait(&mut events, Some(MAX_WAIT)).is_err() {
                break;
            }
            for &ev in events.iter() {
                match ev.token {
                    // Sim thread poke: rings have tokens; pumped at loop top.
                    WAKE_TOKEN => {}
                    LISTEN_TOKEN => self.accept_ready(),
                    tok => self.conn_event(tok, ev),
                }
            }
            if last_sweep.elapsed() >= SWEEP_EVERY {
                self.sweep_idle();
                last_sweep = Instant::now();
            }
        }
        self.drain_flush();
    }

    /// Drain: stop accepting, flush every in-flight stream (the sim thread
    /// is concurrently fast-forwarding tokens into our rings), force-close
    /// stragglers at the deadline, then post the barrier message.
    fn drain_flush(&mut self) {
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        let deadline = Instant::now() + DRAIN_DEADLINE;
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            self.pump_tokens();
            self.pump_writes();
            let flushed = self.slab.iter().flatten().all(|c| {
                c.out.is_empty() && !matches!(c.state, ConnState::Streaming { done: false, .. })
            });
            if flushed || Instant::now() >= deadline {
                break;
            }
            if self
                .poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .is_err()
            {
                break;
            }
            for &ev in events.iter() {
                if ev.token != WAKE_TOKEN && ev.token != LISTEN_TOKEN {
                    self.conn_event(ev.token, ev);
                }
            }
        }
        for idx in 0..self.slab.len() {
            self.close(idx);
        }
        // Final health report, then the barrier message — per-sender FIFO
        // means the sim thread sees every note before `Drained`.
        let _ = self.ctl.send(Ctl::Gauges {
            reactor: self.id,
            fds: self.poller.registered(),
            ready: 0,
        });
        let _ = self.ctl.send(Ctl::Drained);
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.draining.load(Ordering::SeqCst)
                        || self.shared.active.load(Ordering::SeqCst) >= self.max_connections
                    {
                        drop(stream); // shed: over the fd budget
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    if let Some(snd) = self.sock_sndbuf {
                        let _ = poll::shrink_socket_buffers(stream.as_raw_fd(), Some(snd), None);
                    }
                    let idx = match self.free.pop() {
                        Some(i) => i,
                        None => {
                            self.slab.push(None);
                            self.gen.push(0);
                            self.slab.len() - 1
                        }
                    };
                    let token = ((self.gen[idx] as u64) << 32) | idx as u64;
                    if self.poller.register(stream.as_raw_fd(), token).is_err() {
                        self.free.push(idx);
                        continue;
                    }
                    self.slab[idx] = Some(Conn {
                        stream,
                        out: WriteQueue::new(self.max_conn_buffer),
                        writable: true,
                        queued: false,
                        parser: HttpParser::new(),
                        state: ConnState::Reading,
                        last_activity: Instant::now(),
                    });
                    let now_active = self.shared.active.fetch_add(1, Ordering::SeqCst) + 1;
                    self.shared.peak.fetch_max(now_active, Ordering::SeqCst);
                    self.local_active += 1;
                    self.shared.reactor_peaks[self.id].fetch_max(self.local_active, Ordering::SeqCst);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Resolve a generation-tagged token to a live slab index.
    fn resolve(&self, token: u64) -> Option<usize> {
        let idx = (token & 0xFFFF_FFFF) as usize;
        if idx < self.slab.len()
            && self.gen[idx] as u64 == token >> 32
            && self.slab[idx].is_some()
        {
            Some(idx)
        } else {
            None
        }
    }

    fn conn_event(&mut self, token: u64, ev: PollEvent) {
        let Some(idx) = self.resolve(token) else {
            return; // stale event for a recycled slot
        };
        if ev.writable {
            let has_out = {
                let conn = self.slab[idx].as_mut().expect("resolved");
                conn.writable = true;
                !conn.out.is_empty()
            };
            if has_out {
                self.mark_pending(idx);
            }
        }
        if ev.readable {
            self.conn_readable(idx);
        }
        // Flush progress (and any close-on-flush transition) right away.
        self.pump_writes();
        // A hung-up peer with nothing left to flush is reaped immediately;
        // streams rely on write errors so a half-closed reader still gets
        // its tokens.
        if ev.hangup {
            let reap = self
                .slab
                .get(idx)
                .and_then(|c| c.as_ref())
                .is_some_and(|c| matches!(c.state, ConnState::Closing) && c.out.is_empty());
            if reap {
                self.close(idx);
            }
        }
    }

    /// Edge-triggered read: consume until `WouldBlock`, feeding the parser
    /// while the connection still awaits a request.
    fn conn_readable(&mut self, idx: usize) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let conn = match self.slab[idx].as_mut() {
                Some(c) => c,
                None => return, // closed mid-loop (error response etc.)
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF. A streaming/closing peer may only have shut its
                    // write side down; the write path handles true death.
                    if matches!(conn.state, ConnState::Reading) {
                        self.close(idx);
                    }
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    if !matches!(conn.state, ConnState::Reading) {
                        continue; // pipelined bytes after the request: ignore
                    }
                    match conn.parser.feed(&buf[..n]) {
                        Ok(Some(req)) => {
                            self.route(idx, req.method, req.target, req.body);
                            // One request per connection: keep draining the
                            // socket (ET) but no further routing.
                        }
                        Ok(None) => {}
                        Err(e) => {
                            let (code, reason) = e.status();
                            let body = api::error_body("invalid_request", e.detail());
                            self.respond(idx, code, reason, "application/json", &body, &[]);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    fn route(&mut self, idx: usize, method: String, target: String, body: Vec<u8>) {
        let path = target.split('?').next().unwrap_or("");
        match (method.as_str(), path) {
            ("GET", "/healthz") => {
                let _ = self.ctl.send(Ctl::Note(Endpoint::Healthz));
                self.respond(idx, 200, "OK", "text/plain", "ok\n", &[]);
            }
            ("GET", "/metrics") => {
                let _ = self.ctl.send(Ctl::Note(Endpoint::Metrics));
                self.nudge_stale_snapshot();
                let text = self.snapshot.lock().expect("snapshot lock").clone();
                self.respond(idx, 200, "OK", "text/plain; version=0.0.4", &text, &[]);
            }
            ("GET", "/v1/slo") => {
                let _ = self.ctl.send(Ctl::Note(Endpoint::Slo));
                self.nudge_stale_snapshot();
                let json = self.slo_snapshot.lock().expect("slo snapshot lock").clone();
                self.respond(idx, 200, "OK", "application/json", &json, &[]);
            }
            ("POST", "/v1/completions") => self.route_completion(idx, &body),
            (_, "/healthz" | "/metrics" | "/v1/completions" | "/v1/slo") => {
                self.respond(
                    idx,
                    405,
                    "Method Not Allowed",
                    "application/json",
                    &api::error_body("method_not_allowed", "wrong method for this endpoint"),
                    &[],
                );
            }
            _ => {
                self.respond(
                    idx,
                    404,
                    "Not Found",
                    "application/json",
                    &api::error_body("not_found", "no such endpoint"),
                    &[],
                );
            }
        }
    }

    /// Staleness guard for scrape endpoints: the sim thread only re-renders
    /// snapshots on its own loop iterations, so a scrape can observe a
    /// snapshot arbitrarily older than [`METRICS_REFRESH`] while the loop
    /// idles. When that happens, post a [`Ctl::ForceRender`] (and a ping is
    /// implicit — the ctl recv wakes the sim thread) so the next scrape is
    /// at most one loop iteration stale.
    fn nudge_stale_snapshot(&self) {
        let age = self.render_stamp.lock().expect("render stamp lock").elapsed();
        if age >= METRICS_REFRESH {
            let _ = self.ctl.send(Ctl::ForceRender);
        }
    }

    fn route_completion(&mut self, idx: usize, body: &[u8]) {
        let params = match api::parse_completion(body, self.n_models) {
            Ok(p) => p,
            Err(ApiError::Bad(msg)) => {
                return self.respond(
                    idx,
                    400,
                    "Bad Request",
                    "application/json",
                    &api::error_body("invalid_request", &msg),
                    &[],
                );
            }
            Err(ApiError::UnknownModel(m)) => {
                return self.respond(
                    idx,
                    404,
                    "Not Found",
                    "application/json",
                    &api::error_body("model_not_found", &format!("model {m} is not deployed")),
                    &[],
                );
            }
        };
        if self.shared.draining.load(Ordering::SeqCst) {
            return self.respond(
                idx,
                503,
                "Service Unavailable",
                "application/json",
                &api::error_body("unavailable", "gateway is draining"),
                &[],
            );
        }
        // Admission control: over-quota requests are turned away with a
        // backoff hint and never reach the simulation. The quota book is
        // shared across reactors; the lock is taken once per request
        // lifecycle (admit/release), never per token.
        let admit = self
            .admission
            .lock()
            .expect("admission lock")
            .try_admit(params.model);
        if let Err(retry_after) = admit {
            let _ = self.ctl.send(Ctl::Rejection);
            let retry = retry_after.to_string();
            return self.respond(
                idx,
                429,
                "Too Many Requests",
                "application/json",
                &api::error_body("rate_limit_exceeded", "per-model quota exhausted"),
                &[("Retry-After", retry.as_str())],
            );
        }
        let _ = self.ctl.send(Ctl::Note(Endpoint::Completions));
        // The ring holds the request's entire output, so the sim thread
        // can fast-forward an arbitrary backlog without ever blocking on
        // this reactor; the tag pins the delivery to this (gen, slot).
        let tag = RingTag::new(self.id as u32, self.gen[idx], idx as u32);
        let (prod, cons) = ring::ring::<TokenEv>(params.output_tokens as usize, tag);
        let not_before = self.clock.sim_at(self.epoch.elapsed());
        self.injector.send(
            not_before,
            LiveRequest {
                model: params.model,
                input_tokens: params.input_tokens,
                output_tokens: params.output_tokens,
                session: params.session,
                turn_index: params.turn_index,
                prefix_tokens: params.prefix_tokens,
                sink: Some(Box::new(RingSink {
                    prod,
                    board: Arc::clone(&self.board),
                })),
            },
        );
        // The sim thread may be idle-sleeping on its control channel.
        let _ = self.ctl.send(Ctl::Ping);
        let conn = self.slab[idx].as_mut().expect("routed conn");
        // The head is finite and the queue is empty here; cap-exempt so a
        // test-sized cap can never truncate the protocol preamble.
        conn.out.push_unchecked(&http::sse_head());
        conn.state = ConnState::Streaming {
            ring: cons,
            model: params.model,
            done: false,
        };
        self.streaming.push(idx);
        self.mark_pending(idx);
    }

    /// Queue a complete response and transition to `Closing`.
    fn respond(
        &mut self,
        idx: usize,
        code: u16,
        reason: &str,
        content_type: &str,
        body: &str,
        extra: &[(&str, &str)],
    ) {
        let bytes = http::response(code, reason, content_type, body, extra);
        let conn = self.slab[idx].as_mut().expect("responding conn");
        // Cap-exempt: a one-shot response is bounded by its own size and
        // the connection closes once it flushes — the cap exists to bound
        // *streams*, not to reject a `/metrics` body larger than a
        // test-sized cap.
        conn.out.push_unchecked(&bytes);
        conn.state = ConnState::Closing;
        self.mark_pending(idx);
    }

    fn mark_pending(&mut self, idx: usize) {
        let conn = self.slab[idx].as_mut().expect("pending conn");
        if !conn.queued {
            conn.queued = true;
            self.pending_write.push(idx);
        }
    }

    /// Drain every streaming connection's token ring into its output
    /// queue. Overflow = slow reader = drop (the backpressure contract).
    fn pump_tokens(&mut self) {
        let mut j = 0;
        while j < self.streaming.len() {
            let idx = self.streaming[j];
            j += 1;
            enum Outcome {
                Keep,
                Done,
                SlowDrop,
            }
            let mut outcome = Outcome::Keep;
            let mut newly_queued = false;
            {
                let Some(conn) = self.slab[idx].as_mut() else {
                    continue;
                };
                let ConnState::Streaming { ring, model, done } = &mut conn.state else {
                    continue;
                };
                if *done {
                    continue;
                }
                loop {
                    match ring.pop() {
                        Some(tok) => {
                            let chunk = api::completion_chunk(
                                tok.req.0,
                                *model,
                                tok.index,
                                tok.at.as_nanos(),
                                tok.done,
                                tok.prefix_hit,
                            );
                            let mut frame = sse::event(&chunk);
                            if tok.done {
                                frame.push_str(sse::DONE_FRAME);
                            }
                            if conn.out.push(frame.as_bytes()).is_err() {
                                outcome = Outcome::SlowDrop;
                                break;
                            }
                            newly_queued = true;
                            if tok.done {
                                outcome = Outcome::Done;
                                break;
                            }
                        }
                        // Producer gone with the ring empty: truncated
                        // stream (session finished/halted mid-stream), no
                        // DONE sentinel; flush what was queued and close.
                        None if ring.is_drained() => {
                            outcome = Outcome::Done;
                            break;
                        }
                        None => break,
                    }
                }
            }
            match outcome {
                Outcome::Keep => {
                    if newly_queued {
                        self.mark_pending(idx);
                    }
                }
                Outcome::Done => {
                    let conn = self.slab[idx].as_mut().expect("streaming conn");
                    if let ConnState::Streaming { model, done, .. } = &mut conn.state {
                        self.admission
                            .lock()
                            .expect("admission lock")
                            .release(*model);
                        *done = true;
                    }
                    self.mark_pending(idx);
                }
                Outcome::SlowDrop => {
                    let _ = self.ctl.send(Ctl::SlowDrop(self.id));
                    self.close(idx);
                }
            }
        }
        // Compact the worklist: drop closed and finished entries.
        let slab = &self.slab;
        self.streaming.retain(|&i| {
            matches!(
                slab[i].as_ref().map(|c| &c.state),
                Some(ConnState::Streaming { done: false, .. })
            )
        });
    }

    /// Flush pending output queues on writable connections; close the ones
    /// that finished their lifecycle.
    fn pump_writes(&mut self) {
        let mut work = std::mem::take(&mut self.pending_write);
        for idx in work.drain(..) {
            let should_close = {
                let Some(conn) = self.slab[idx].as_mut() else {
                    continue;
                };
                conn.queued = false;
                if !conn.writable {
                    continue; // re-queued by the next writable edge
                }
                match conn.out.pump(&mut conn.stream) {
                    Ok(true) => {
                        conn.last_activity = Instant::now();
                        // Fully flushed: is the connection finished?
                        matches!(
                            conn.state,
                            ConnState::Closing | ConnState::Streaming { done: true, .. }
                        )
                    }
                    Ok(false) => {
                        conn.last_activity = Instant::now();
                        conn.writable = false;
                        false
                    }
                    Err(_) => true,
                }
            };
            if should_close {
                self.close(idx);
            }
        }
        // Reuse the allocation.
        if self.pending_write.is_empty() {
            self.pending_write = work;
        }
    }

    /// Reap connections that have sat idle without completing a request
    /// (or without flushing their final response).
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        for idx in 0..self.slab.len() {
            let Some(conn) = self.slab[idx].as_ref() else {
                continue;
            };
            let stale = now.duration_since(conn.last_activity) >= IDLE_TIMEOUT;
            if stale && !matches!(conn.state, ConnState::Streaming { .. }) {
                self.close(idx);
            }
        }
    }

    fn close(&mut self, idx: usize) {
        let Some(conn) = self.slab[idx].take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if let ConnState::Streaming { model, done: false, .. } = conn.state {
            self.admission
                .lock()
                .expect("admission lock")
                .release(model);
        }
        // Bumping the generation retires every outstanding tag for this
        // slot: stale poller events and stale ring deliveries both fail
        // the generation check. Dropping the ring consumer (inside `conn`)
        // tells the sim-side producer to stop pushing.
        self.gen[idx] = self.gen[idx].wrapping_add(1);
        self.free.push(idx);
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
        self.local_active = self.local_active.saturating_sub(1);
        // Dropping `conn.stream` closes the fd; the session keeps feeding
        // any still-live sink into a closed ring, which is harmless.
    }
}
