//! The gateway server: a single-threaded nonblocking reactor that owns the
//! [`ServingSession`], the listener, and every connection.
//!
//! # Threading model
//!
//! One **reactor thread** owns everything: the [`Poller`] (epoll on Linux),
//! the open [`ServingSession`], the [`ClockDriver`], admission control, and
//! a generation-tagged connection slab. There are no per-connection
//! threads and no locks on the request path — thread count is *independent
//! of connection count*, which is what lets the gateway hold tens of
//! thousands of concurrent SSE streams. The only cross-thread surfaces are
//! the [`Waker`] (shutdown pokes) and two atomics (`active`, `draining`).
//!
//! # Reactor cycle
//!
//! Each iteration: step simulated time toward the wall-clock target in
//! bounded event chunks (so a burst of sim work cannot starve socket
//! readiness), drain the per-request token channels into per-connection
//! output queues, pump writable sockets, then block on the poller until
//! the next simulated event is due or an fd becomes ready. Edge-triggered
//! readiness means every fd is read/written **until `WouldBlock`** before
//! the reactor sleeps again.
//!
//! # Backpressure contract
//!
//! Token write-back is buffered through a bounded [`WriteQueue`] per
//! connection ([`GatewayConfig::max_conn_buffer`] unsent bytes). A reader
//! that falls so far behind that its queue would overflow is **dropped**:
//! the connection closes without the `[DONE]` sentinel, the admission slot
//! is released, and the drop is counted (`gateway_slow_drops` in
//! `/metrics`, [`GatewayReport::slow_drops`] at shutdown). Memory per
//! connection is therefore strictly bounded; a slow reader can never back
//! up into the simulation or other streams.
//!
//! # Graceful drain
//!
//! [`Gateway::shutdown`] sets the drain flag and wakes the reactor, which
//! stops accepting, fast-forwards the session to quiescence (stepping
//! speed never changes simulation outcomes), flushes every in-flight SSE
//! stream through its output queue, and only then finishes the session.
//! In-flight clients observe complete streams, not resets.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use aegaeon::proxy::{Admission, AdmissionPolicy};
use aegaeon::session::{Endpoint, LiveRequest, ServingSession};
use aegaeon::{AegaeonConfig, AuditReport, InvariantAuditor, RunResult, TokenEv};
use aegaeon_model::{ModelId, ModelSpec};
use aegaeon_sim::queue::Injector;
use aegaeon_sim::SimTime;
use aegaeon_telemetry::prometheus_text;
use aegaeon_workload::Trace;

use crate::api::{self, ApiError};
use crate::clock::{ClockDriver, ClockMode};
use crate::http::HttpParser;
use crate::outbuf::WriteQueue;
use crate::poll::{self, PollEvent, Poller, Waker, WAKE_TOKEN};
use crate::{http, sse};

/// Poller token for the listening socket.
const LISTEN_TOKEN: u64 = u64::MAX - 1;
/// Simulation events dispatched per reactor iteration before readiness is
/// re-checked; bounds how long sockets can starve behind sim work.
const STEP_CHUNK: u64 = 8192;
/// Longest the reactor sleeps with nothing due (keeps gauges fresh).
const MAX_WAIT: Duration = Duration::from_millis(100);
/// Idle connections (no complete request, or unflushed response with a
/// dead peer) are reaped after this long.
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// Cadence of the idle-reap sweep.
const SWEEP_EVERY: Duration = Duration::from_secs(5);
/// Hard cap on the graceful-drain flush phase.
const DRAIN_DEADLINE: Duration = Duration::from_secs(60);

/// Gateway deployment settings.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Sim↔wall mapping.
    pub mode: ClockMode,
    /// Fault/hard-stop horizon for the open session.
    pub live_horizon: SimTime,
    /// Admission quotas.
    pub admission: AdmissionPolicy,
    /// Install the invariant auditor (observer only).
    pub audit: bool,
    /// Hard cap on simultaneously open connections; excess accepts are
    /// shed immediately (fd budget guard).
    pub max_connections: usize,
    /// Bounded unsent bytes per connection — the backpressure threshold at
    /// which a slow reader is dropped.
    pub max_conn_buffer: usize,
    /// Shrink each accepted socket's kernel send buffer (Linux only).
    /// Tests use this to make app-level backpressure observable without
    /// hundreds of kilobytes of kernel buffering in the way.
    pub sock_sndbuf: Option<u32>,
}

impl GatewayConfig {
    /// Loopback on an ephemeral port, a 1-hour horizon, default admission,
    /// auditor on, 16k connection cap, 256 KiB write buffers.
    pub fn local(mode: ClockMode) -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            mode,
            live_horizon: SimTime::from_secs_f64(3600.0),
            admission: AdmissionPolicy::default_gateway(),
            audit: true,
            max_connections: 16 * 1024,
            max_conn_buffer: 256 * 1024,
            sock_sndbuf: None,
        }
    }
}

/// Everything the reactor hands back at shutdown.
#[derive(Debug)]
pub struct GatewayReport {
    /// The run result, fingerprint-comparable with an offline replay of
    /// [`GatewayReport::trace`].
    pub result: RunResult,
    /// Audit report (when [`GatewayConfig::audit`] was set), including the
    /// gateway rejection book.
    pub audit: Option<AuditReport>,
    /// Every admitted request with its simulated arrival stamp — replay it
    /// with [`ServingSession::replay`] to reproduce the run offline.
    pub trace: Trace,
    /// Streams dropped by write-back backpressure (slow readers).
    pub slow_drops: u64,
}

/// State shared between the reactor thread and the [`Gateway`] handle.
struct Shared {
    active: AtomicUsize,
    peak: AtomicUsize,
    draining: AtomicBool,
}

/// A running gateway; dropping it without [`Gateway::shutdown`] leaves the
/// reactor thread serving (detached).
pub struct Gateway {
    addr: SocketAddr,
    shared: Arc<Shared>,
    waker: Waker,
    reactor: Option<JoinHandle<(RunResult, Option<AuditReport>, Trace, u64)>>,
}

impl Gateway {
    /// Binds, spawns the reactor thread, and returns immediately; the
    /// gateway is serving once this returns.
    pub fn start(
        sys_cfg: &AegaeonConfig,
        models: &[ModelSpec],
        gw: GatewayConfig,
    ) -> io::Result<Gateway> {
        let listener = TcpListener::bind(&gw.addr)?;
        listener.set_nonblocking(true)?;
        // Best-effort: std's 128-deep backlog overflows under swarm-rate
        // connect bursts while the reactor is inside a simulation step.
        let _ = poll::widen_listen_backlog(listener.as_raw_fd(), 4096);
        let addr = listener.local_addr()?;
        // `/metrics` needs live instruments; telemetry is observer-only
        // (excluded from fingerprints), so forcing it on cannot perturb
        // the simulation or break replay equivalence.
        let mut sys_cfg = sys_cfg.clone();
        sys_cfg.telemetry = aegaeon_telemetry::TelemetrySpec::enabled();
        let mut session = ServingSession::open(&sys_cfg, models, gw.live_horizon);
        if gw.audit {
            session.install_auditor(Box::new(InvariantAuditor::new()));
        }
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTEN_TOKEN)?;
        let waker = poller.waker();
        let shared = Arc::new(Shared {
            active: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        });
        let injector = session.injector();
        let reactor = {
            let shared = Arc::clone(&shared);
            let n_models = models.len() as u32;
            let reactor = Reactor {
                listener,
                poller,
                session,
                injector,
                clock: ClockDriver::new(gw.mode),
                epoch: Instant::now(),
                n_models,
                admission: Admission::new(gw.admission),
                max_connections: gw.max_connections,
                max_conn_buffer: gw.max_conn_buffer,
                sock_sndbuf: gw.sock_sndbuf,
                shared,
                slab: Vec::new(),
                gen: Vec::new(),
                free: Vec::new(),
                streaming: Vec::new(),
                pending_write: Vec::new(),
            };
            thread::Builder::new()
                .name("gw-reactor".into())
                .spawn(move || reactor.run())?
        };
        Ok(Gateway {
            addr,
            shared,
            waker,
            reactor: Some(reactor),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently open connections.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// High-water mark of simultaneously open connections.
    pub fn peak_connections(&self) -> usize {
        self.shared.peak.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop accepting, complete every admitted request
    /// (fast-forwarded — wall pacing no longer applies), flush all token
    /// streams, and return the final report.
    pub fn shutdown(mut self) -> GatewayReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.waker.wake();
        let (result, audit, trace, slow_drops) = self
            .reactor
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("gateway reactor panicked");
        GatewayReport {
            result,
            audit,
            trace,
            slow_drops,
        }
    }
}

/// Per-connection protocol state.
enum ConnState {
    /// Accumulating the request head/body.
    Reading,
    /// SSE stream in flight; tokens arrive on `rx`.
    Streaming {
        rx: Receiver<TokenEv>,
        model: ModelId,
        /// Final token seen (or channel closed) and admission released;
        /// the connection closes once the output queue drains.
        done: bool,
    },
    /// Response fully queued; close once flushed.
    Closing,
}

struct Conn {
    stream: TcpStream,
    out: WriteQueue,
    /// Last readiness edge said the socket accepts writes.
    writable: bool,
    /// Queued in `pending_write` (dedupe flag).
    queued: bool,
    parser: HttpParser,
    state: ConnState,
    last_activity: Instant,
}

struct Reactor {
    listener: TcpListener,
    poller: Poller,
    session: ServingSession,
    injector: Injector<LiveRequest>,
    clock: ClockDriver,
    epoch: Instant,
    n_models: u32,
    admission: Admission,
    max_connections: usize,
    max_conn_buffer: usize,
    sock_sndbuf: Option<u32>,
    shared: Arc<Shared>,
    /// Generation-tagged connection slab: token = (gen << 32) | idx, so a
    /// stale readiness event for a recycled slot can never touch the new
    /// occupant.
    slab: Vec<Option<Conn>>,
    gen: Vec<u32>,
    free: Vec<usize>,
    /// Slab indices currently in `Streaming` state (token-pump worklist).
    streaming: Vec<usize>,
    /// Slab indices with queued output awaiting a pump (deduped).
    pending_write: Vec<usize>,
}

impl Reactor {
    fn run(mut self) -> (RunResult, Option<AuditReport>, Trace, u64) {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut last_sweep = Instant::now();
        loop {
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            let target = self.clock.sim_at(self.epoch.elapsed());
            let (dispatched, truncated) = self.session.step_bounded(target, STEP_CHUNK);
            self.session
                .set_wall_lag(self.clock.lag_secs(self.session.now(), self.epoch.elapsed()));
            if dispatched > 0 {
                self.pump_tokens();
            }
            self.pump_writes();
            self.session
                .set_reactor_gauges(self.poller.registered(), events.len());
            let timeout = if truncated {
                Duration::ZERO
            } else {
                match self.session.next_due() {
                    Some(t) => self.clock.delay_for(t, self.epoch.elapsed()).min(MAX_WAIT),
                    None => MAX_WAIT,
                }
            };
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }
            for i in 0..events.len() {
                let ev = events[i];
                match ev.token {
                    WAKE_TOKEN => {}
                    LISTEN_TOKEN => self.accept_ready(),
                    tok => self.conn_event(tok, ev),
                }
            }
            if last_sweep.elapsed() >= SWEEP_EVERY {
                self.sweep_idle();
                last_sweep = Instant::now();
            }
        }
        self.drain()
    }

    /// Graceful drain: fast-forward the session to quiescence while
    /// flushing every stream, then force-close stragglers and finish.
    fn drain(mut self) -> (RunResult, Option<AuditReport>, Trace, u64) {
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        let deadline = Instant::now() + DRAIN_DEADLINE;
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            let (dispatched, _) = self.session.step_bounded(SimTime::MAX, u64::MAX);
            if dispatched > 0 || !self.streaming.is_empty() {
                self.pump_tokens();
            }
            self.pump_writes();
            let flushed = self.slab.iter().flatten().all(|c| {
                c.out.is_empty() && !matches!(c.state, ConnState::Streaming { done: false, .. })
            });
            if (self.session.quiescent() && flushed) || Instant::now() >= deadline {
                break;
            }
            // Only writability can unblock us now; wait briefly for it.
            if self.poller.wait(&mut events, Some(Duration::from_millis(20))).is_err() {
                break;
            }
            for i in 0..events.len() {
                let ev = events[i];
                if ev.token != WAKE_TOKEN && ev.token != LISTEN_TOKEN {
                    self.conn_event(ev.token, ev);
                }
            }
        }
        for idx in 0..self.slab.len() {
            self.close(idx);
        }
        let trace = self.session.injected_trace();
        let slow_drops = self.session.slow_drops();
        let (result, audit) = self.session.finish();
        (result, audit, trace, slow_drops)
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.draining.load(Ordering::SeqCst)
                        || self.shared.active.load(Ordering::SeqCst) >= self.max_connections
                    {
                        drop(stream); // shed: over the fd budget
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    if let Some(snd) = self.sock_sndbuf {
                        let _ =
                            poll::shrink_socket_buffers(stream.as_raw_fd(), Some(snd), None);
                    }
                    let idx = match self.free.pop() {
                        Some(i) => i,
                        None => {
                            self.slab.push(None);
                            self.gen.push(0);
                            self.slab.len() - 1
                        }
                    };
                    let token = ((self.gen[idx] as u64) << 32) | idx as u64;
                    if self.poller.register(stream.as_raw_fd(), token).is_err() {
                        self.free.push(idx);
                        continue;
                    }
                    self.slab[idx] = Some(Conn {
                        stream,
                        out: WriteQueue::new(self.max_conn_buffer),
                        writable: true,
                        queued: false,
                        parser: HttpParser::new(),
                        state: ConnState::Reading,
                        last_activity: Instant::now(),
                    });
                    let now_active = self.shared.active.fetch_add(1, Ordering::SeqCst) + 1;
                    self.shared.peak.fetch_max(now_active, Ordering::SeqCst);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Resolve a generation-tagged token to a live slab index.
    fn resolve(&self, token: u64) -> Option<usize> {
        let idx = (token & 0xFFFF_FFFF) as usize;
        if idx < self.slab.len()
            && self.gen[idx] as u64 == token >> 32
            && self.slab[idx].is_some()
        {
            Some(idx)
        } else {
            None
        }
    }

    fn conn_event(&mut self, token: u64, ev: PollEvent) {
        let Some(idx) = self.resolve(token) else {
            return; // stale event for a recycled slot
        };
        if ev.writable {
            let has_out = {
                let conn = self.slab[idx].as_mut().expect("resolved");
                conn.writable = true;
                !conn.out.is_empty()
            };
            if has_out {
                self.mark_pending(idx);
            }
        }
        if ev.readable {
            self.conn_readable(idx);
        }
        // Flush progress (and any close-on-flush transition) right away.
        self.pump_writes();
        // A hung-up peer with nothing left to flush is reaped immediately;
        // streams rely on write errors so a half-closed reader still gets
        // its tokens.
        if ev.hangup {
            let reap = self
                .slab
                .get(idx)
                .and_then(|c| c.as_ref())
                .is_some_and(|c| matches!(c.state, ConnState::Closing) && c.out.is_empty());
            if reap {
                self.close(idx);
            }
        }
    }

    /// Edge-triggered read: consume until `WouldBlock`, feeding the parser
    /// while the connection still awaits a request.
    fn conn_readable(&mut self, idx: usize) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let conn = match self.slab[idx].as_mut() {
                Some(c) => c,
                None => return, // closed mid-loop (error response etc.)
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF. A streaming/closing peer may only have shut its
                    // write side down; the write path handles true death.
                    if matches!(conn.state, ConnState::Reading) {
                        self.close(idx);
                    }
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    if !matches!(conn.state, ConnState::Reading) {
                        continue; // pipelined bytes after the request: ignore
                    }
                    match conn.parser.feed(&buf[..n]) {
                        Ok(Some(req)) => {
                            self.route(idx, req.method, req.target, req.body);
                            // One request per connection: keep draining the
                            // socket (ET) but no further routing.
                        }
                        Ok(None) => {}
                        Err(e) => {
                            let (code, reason) = e.status();
                            let body = api::error_body("invalid_request", e.detail());
                            self.respond(idx, code, reason, "application/json", &body, &[]);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    fn route(&mut self, idx: usize, method: String, target: String, body: Vec<u8>) {
        let path = target.split('?').next().unwrap_or("");
        match (method.as_str(), path) {
            ("GET", "/healthz") => {
                self.session.note_endpoint(Endpoint::Healthz);
                self.respond(idx, 200, "OK", "text/plain", "ok\n", &[]);
            }
            ("GET", "/metrics") => {
                self.session.note_endpoint(Endpoint::Metrics);
                let text = prometheus_text(self.session.metrics());
                self.respond(idx, 200, "OK", "text/plain; version=0.0.4", &text, &[]);
            }
            ("POST", "/v1/completions") => self.route_completion(idx, &body),
            (_, "/healthz" | "/metrics" | "/v1/completions") => {
                self.respond(
                    idx,
                    405,
                    "Method Not Allowed",
                    "application/json",
                    &api::error_body("method_not_allowed", "wrong method for this endpoint"),
                    &[],
                );
            }
            _ => {
                self.respond(
                    idx,
                    404,
                    "Not Found",
                    "application/json",
                    &api::error_body("not_found", "no such endpoint"),
                    &[],
                );
            }
        }
    }

    fn route_completion(&mut self, idx: usize, body: &[u8]) {
        let params = match api::parse_completion(body, self.n_models) {
            Ok(p) => p,
            Err(ApiError::Bad(msg)) => {
                return self.respond(
                    idx,
                    400,
                    "Bad Request",
                    "application/json",
                    &api::error_body("invalid_request", &msg),
                    &[],
                );
            }
            Err(ApiError::UnknownModel(m)) => {
                return self.respond(
                    idx,
                    404,
                    "Not Found",
                    "application/json",
                    &api::error_body("model_not_found", &format!("model {m} is not deployed")),
                    &[],
                );
            }
        };
        if self.shared.draining.load(Ordering::SeqCst) {
            return self.respond(
                idx,
                503,
                "Service Unavailable",
                "application/json",
                &api::error_body("unavailable", "gateway is draining"),
                &[],
            );
        }
        // Admission control: over-quota requests are turned away with a
        // backoff hint and never reach the simulation.
        if let Err(retry_after) = self.admission.try_admit(params.model) {
            self.session.note_rejection();
            let retry = retry_after.to_string();
            return self.respond(
                idx,
                429,
                "Too Many Requests",
                "application/json",
                &api::error_body("rate_limit_exceeded", "per-model quota exhausted"),
                &[("Retry-After", retry.as_str())],
            );
        }
        self.session.note_endpoint(Endpoint::Completions);
        let (tx, rx) = std::sync::mpsc::channel();
        let not_before = self.clock.sim_at(self.epoch.elapsed());
        self.injector.send(
            not_before,
            LiveRequest {
                model: params.model,
                input_tokens: params.input_tokens,
                output_tokens: params.output_tokens,
                sink: Some(tx),
            },
        );
        let conn = self.slab[idx].as_mut().expect("routed conn");
        // The head is finite and the queue is empty here; cap-exempt so a
        // test-sized cap can never truncate the protocol preamble.
        conn.out.push_unchecked(&http::sse_head());
        conn.state = ConnState::Streaming {
            rx,
            model: params.model,
            done: false,
        };
        self.streaming.push(idx);
        self.mark_pending(idx);
    }

    /// Queue a complete response and transition to `Closing`.
    fn respond(
        &mut self,
        idx: usize,
        code: u16,
        reason: &str,
        content_type: &str,
        body: &str,
        extra: &[(&str, &str)],
    ) {
        let bytes = http::response(code, reason, content_type, body, extra);
        let conn = self.slab[idx].as_mut().expect("responding conn");
        // Cap-exempt: a one-shot response is bounded by its own size and
        // the connection closes once it flushes — the cap exists to bound
        // *streams*, not to reject a `/metrics` body larger than a
        // test-sized cap.
        conn.out.push_unchecked(&bytes);
        conn.state = ConnState::Closing;
        self.mark_pending(idx);
    }

    fn mark_pending(&mut self, idx: usize) {
        let conn = self.slab[idx].as_mut().expect("pending conn");
        if !conn.queued {
            conn.queued = true;
            self.pending_write.push(idx);
        }
    }

    /// Drain every streaming connection's token channel into its output
    /// queue. Overflow = slow reader = drop (the backpressure contract).
    fn pump_tokens(&mut self) {
        let mut j = 0;
        while j < self.streaming.len() {
            let idx = self.streaming[j];
            j += 1;
            enum Outcome {
                Keep,
                Done,
                SlowDrop,
            }
            let mut outcome = Outcome::Keep;
            let mut newly_queued = false;
            {
                let Some(conn) = self.slab[idx].as_mut() else {
                    continue;
                };
                let ConnState::Streaming { rx, model, done } = &mut conn.state else {
                    continue;
                };
                if *done {
                    continue;
                }
                loop {
                    match rx.try_recv() {
                        Ok(tok) => {
                            let chunk = api::completion_chunk(
                                tok.req.0,
                                *model,
                                tok.index,
                                tok.at.as_nanos(),
                                tok.done,
                            );
                            let mut frame = sse::event(&chunk);
                            if tok.done {
                                frame.push_str(sse::DONE_FRAME);
                            }
                            if conn.out.push(frame.as_bytes()).is_err() {
                                outcome = Outcome::SlowDrop;
                                break;
                            }
                            newly_queued = true;
                            if tok.done {
                                outcome = Outcome::Done;
                                break;
                            }
                        }
                        Err(TryRecvError::Empty) => break,
                        // Session gone mid-stream: truncated stream, no
                        // DONE sentinel; flush what was queued and close.
                        Err(TryRecvError::Disconnected) => {
                            outcome = Outcome::Done;
                            break;
                        }
                    }
                }
            }
            match outcome {
                Outcome::Keep => {
                    if newly_queued {
                        self.mark_pending(idx);
                    }
                }
                Outcome::Done => {
                    let conn = self.slab[idx].as_mut().expect("streaming conn");
                    if let ConnState::Streaming { model, done, .. } = &mut conn.state {
                        self.admission.release(*model);
                        *done = true;
                    }
                    self.mark_pending(idx);
                }
                Outcome::SlowDrop => {
                    self.session.note_slow_drop();
                    self.close(idx);
                }
            }
        }
        // Compact the worklist: drop closed and finished entries.
        let slab = &self.slab;
        self.streaming.retain(|&i| {
            matches!(
                slab[i].as_ref().map(|c| &c.state),
                Some(ConnState::Streaming { done: false, .. })
            )
        });
    }

    /// Flush pending output queues on writable connections; close the ones
    /// that finished their lifecycle.
    fn pump_writes(&mut self) {
        let mut work = std::mem::take(&mut self.pending_write);
        for idx in work.drain(..) {
            let should_close = {
                let Some(conn) = self.slab[idx].as_mut() else {
                    continue;
                };
                conn.queued = false;
                if !conn.writable {
                    continue; // re-queued by the next writable edge
                }
                match conn.out.pump(&mut conn.stream) {
                    Ok(true) => {
                        conn.last_activity = Instant::now();
                        // Fully flushed: is the connection finished?
                        matches!(
                            conn.state,
                            ConnState::Closing | ConnState::Streaming { done: true, .. }
                        )
                    }
                    Ok(false) => {
                        conn.last_activity = Instant::now();
                        conn.writable = false;
                        false
                    }
                    Err(_) => true,
                }
            };
            if should_close {
                self.close(idx);
            }
        }
        // Reuse the allocation.
        if self.pending_write.is_empty() {
            self.pending_write = work;
        }
    }

    /// Reap connections that have sat idle without completing a request
    /// (or without flushing their final response).
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        for idx in 0..self.slab.len() {
            let Some(conn) = self.slab[idx].as_ref() else {
                continue;
            };
            let stale = now.duration_since(conn.last_activity) >= IDLE_TIMEOUT;
            if stale && !matches!(conn.state, ConnState::Streaming { .. }) {
                self.close(idx);
            }
        }
    }

    fn close(&mut self, idx: usize) {
        let Some(conn) = self.slab[idx].take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        if let ConnState::Streaming { model, done: false, .. } = conn.state {
            self.admission.release(model);
        }
        self.gen[idx] = self.gen[idx].wrapping_add(1);
        self.free.push(idx);
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
        // Dropping `conn.stream` closes the fd; the session keeps feeding
        // any still-live sink into a dropped receiver, which is harmless.
    }
}
