//! The OpenAI-style completions API surface: request parsing and streaming
//! chunk serialization.
//!
//! The simulator serves synthetic models (`m0`, `m1`, …) and synthetic
//! tokens, so the API keeps the OpenAI *shape* — `model`, `prompt`,
//! `max_tokens` in; `text_completion`-chunk SSE frames out — while the
//! payloads are simulation artifacts.

use aegaeon_model::ModelId;
use aegaeon_workload::SessionId;
use serde_json::Value;

/// A parsed `POST /v1/completions` body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionParams {
    /// Target model.
    pub model: ModelId,
    /// Prompt length in tokens.
    pub input_tokens: u32,
    /// Tokens to generate (the simulator's oracle output length).
    pub output_tokens: u32,
    /// Agentic session this turn belongs to ([`SessionId::NONE`] for
    /// standalone completions).
    pub session: SessionId,
    /// Zero-based turn index within the session.
    pub turn_index: u32,
    /// Leading prompt tokens shared verbatim with the session's previous
    /// turn (clamped to leave at least one fresh token).
    pub prefix_tokens: u32,
}

/// Why a completions body was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// Malformed JSON or wrong field types (400).
    Bad(String),
    /// Well-formed request for a model this deployment does not serve (404).
    UnknownModel(String),
}

/// Default generation length when `max_tokens` is omitted.
pub const DEFAULT_MAX_TOKENS: u32 = 16;
/// Upper bound on requested generation length.
pub const MAX_MAX_TOKENS: u32 = 4096;
/// Upper bound on the prompt length.
pub const MAX_INPUT_TOKENS: u32 = 32768;

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
        _ => None,
    }
}

/// Parses a completions body against a deployment serving models
/// `m0..m{n_models-1}`. The model field accepts `"m3"`, `"3"`, or a bare
/// integer; the prompt length is `input_tokens` when given, otherwise the
/// whitespace token count of `prompt` (minimum 1).
pub fn parse_completion(body: &[u8], n_models: u32) -> Result<CompletionParams, ApiError> {
    let text = std::str::from_utf8(body).map_err(|_| ApiError::Bad("body is not UTF-8".into()))?;
    let value: Value =
        serde_json::from_str(text).map_err(|e| ApiError::Bad(format!("invalid JSON: {e:?}")))?;
    let Value::Object(obj) = value else {
        return Err(ApiError::Bad("body must be a JSON object".into()));
    };

    let model_field = obj
        .get("model")
        .ok_or_else(|| ApiError::Bad("missing field: model".into()))?;
    let idx: u64 = match model_field {
        Value::String(s) => {
            let digits = s.strip_prefix('m').unwrap_or(s);
            digits
                .parse::<u64>()
                .map_err(|_| ApiError::UnknownModel(s.clone()))?
        }
        other => as_u64(other).ok_or_else(|| ApiError::Bad("model must be a string or index".into()))?,
    };
    if idx >= n_models as u64 {
        return Err(ApiError::UnknownModel(format!("m{idx}")));
    }

    let input_tokens = match obj.get("input_tokens") {
        Some(v) => {
            let n = as_u64(v).ok_or_else(|| ApiError::Bad("input_tokens must be a non-negative integer".into()))?;
            n.clamp(1, MAX_INPUT_TOKENS as u64) as u32
        }
        None => match obj.get("prompt") {
            Some(Value::String(p)) => {
                (p.split_whitespace().count().max(1) as u64).min(MAX_INPUT_TOKENS as u64) as u32
            }
            Some(_) => return Err(ApiError::Bad("prompt must be a string".into())),
            None => 1,
        },
    };

    let output_tokens = match obj.get("max_tokens") {
        Some(v) => {
            let n = as_u64(v).ok_or_else(|| ApiError::Bad("max_tokens must be a non-negative integer".into()))?;
            n.clamp(1, MAX_MAX_TOKENS as u64) as u32
        }
        None => DEFAULT_MAX_TOKENS,
    };

    // Optional agentic-session fields: `session_id` ties consecutive turns
    // together for KV reuse; `turn_index` / `prefix_tokens` describe this
    // turn's place in the conversation. Absent `session_id`, the other two
    // are ignored (a standalone completion has no prefix to reuse).
    let session = match obj.get("session_id") {
        Some(v) => {
            let s = match v {
                Value::String(s) => s
                    .parse::<u64>()
                    .map_err(|_| ApiError::Bad("session_id must be a non-negative integer".into()))?,
                other => as_u64(other)
                    .ok_or_else(|| ApiError::Bad("session_id must be a non-negative integer".into()))?,
            };
            if s == u64::MAX {
                return Err(ApiError::Bad("session_id is reserved".into()));
            }
            SessionId(s)
        }
        None => SessionId::NONE,
    };
    let (turn_index, prefix_tokens) = if session.is_some() {
        let turn = match obj.get("turn_index") {
            Some(v) => as_u64(v)
                .ok_or_else(|| ApiError::Bad("turn_index must be a non-negative integer".into()))?
                .min(u32::MAX as u64) as u32,
            None => 0,
        };
        let prefix = match obj.get("prefix_tokens") {
            Some(v) => as_u64(v)
                .ok_or_else(|| ApiError::Bad("prefix_tokens must be a non-negative integer".into()))?
                as u32,
            None => 0,
        };
        // The prompt must keep at least one fresh token past the shared
        // prefix (same clamp the serving system applies on admission).
        (turn, prefix.min(input_tokens.saturating_sub(1)))
    } else {
        (0, 0)
    };

    Ok(CompletionParams {
        model: ModelId(idx as u32),
        input_tokens,
        output_tokens,
        session,
        turn_index,
        prefix_tokens,
    })
}

/// Serializes one streaming completion chunk (OpenAI `text_completion`
/// shape; timestamps are simulated nanoseconds). The final frame (`done`)
/// additionally reports whether the turn prefilled only its delta off a
/// retained session prefix (`prefix_hit`) — observer data copied from the
/// token tap, so surfacing it cannot perturb the simulation.
pub fn completion_chunk(
    request_id: u64,
    model: ModelId,
    index: u32,
    at_ns: u64,
    done: bool,
    prefix_hit: bool,
) -> String {
    let finish = if done { "\"stop\"" } else { "null" };
    let hit = if done {
        if prefix_hit {
            ",\"prefix_hit\":true"
        } else {
            ",\"prefix_hit\":false"
        }
    } else {
        ""
    };
    format!(
        "{{\"id\":\"cmpl-{request_id}\",\"object\":\"text_completion\",\"created_ns\":{at_ns},\
         \"model\":\"{model}\",\"choices\":[{{\"index\":0,\"text\":\"tok{index} \",\
         \"finish_reason\":{finish}}}]{hit}}}"
    )
}

/// Serializes a JSON error body.
pub fn error_body(kind: &str, message: &str) -> String {
    let value = serde_json::to_value(message);
    let msg = serde_json::to_string(&value).unwrap_or_else(|_| "\"error\"".into());
    format!("{{\"error\":{{\"type\":\"{kind}\",\"message\":{msg}}}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_model_string_prompt_and_max_tokens() {
        let p = parse_completion(
            br#"{"model":"m2","prompt":"the quick brown fox","max_tokens":8}"#,
            4,
        )
        .unwrap();
        assert_eq!(p.model, ModelId(2));
        assert_eq!(p.input_tokens, 4);
        assert_eq!(p.output_tokens, 8);
        assert!(p.session.is_none());
        assert_eq!((p.turn_index, p.prefix_tokens), (0, 0));
    }

    #[test]
    fn parses_session_fields_and_clamps_prefix() {
        let p = parse_completion(
            br#"{"model":"m0","input_tokens":100,"session_id":7,"turn_index":2,"prefix_tokens":60}"#,
            1,
        )
        .unwrap();
        assert_eq!(p.session, SessionId(7));
        assert_eq!(p.turn_index, 2);
        assert_eq!(p.prefix_tokens, 60);
        // The prefix can never swallow the whole prompt.
        let p = parse_completion(
            br#"{"model":"m0","input_tokens":10,"session_id":"7","prefix_tokens":500}"#,
            1,
        )
        .unwrap();
        assert_eq!(p.prefix_tokens, 9);
        // Without a session the turn/prefix fields are ignored.
        let p = parse_completion(
            br#"{"model":"m0","input_tokens":10,"turn_index":3,"prefix_tokens":5}"#,
            1,
        )
        .unwrap();
        assert!(p.session.is_none());
        assert_eq!((p.turn_index, p.prefix_tokens), (0, 0));
        // The reserved NONE id is refused.
        assert!(matches!(
            parse_completion(
                br#"{"model":"m0","session_id":18446744073709551615}"#,
                1
            ),
            Err(ApiError::Bad(_))
        ));
    }

    #[test]
    fn accepts_bare_index_and_explicit_lengths() {
        let p = parse_completion(br#"{"model":1,"input_tokens":100,"max_tokens":3}"#, 2).unwrap();
        assert_eq!(p.model, ModelId(1));
        assert_eq!(p.input_tokens, 100);
        assert_eq!(p.output_tokens, 3);
    }

    #[test]
    fn unknown_model_is_distinguished_from_bad_json() {
        assert!(matches!(
            parse_completion(br#"{"model":"m9"}"#, 3),
            Err(ApiError::UnknownModel(_))
        ));
        assert!(matches!(
            parse_completion(br#"{"model":"bogus"}"#, 3),
            Err(ApiError::UnknownModel(_))
        ));
        assert!(matches!(
            parse_completion(b"not json", 3),
            Err(ApiError::Bad(_))
        ));
        assert!(matches!(
            parse_completion(br#"{"prompt":"x"}"#, 3),
            Err(ApiError::Bad(_))
        ));
    }

    #[test]
    fn defaults_apply_and_bounds_clamp() {
        let p = parse_completion(br#"{"model":"m0"}"#, 1).unwrap();
        assert_eq!(p.input_tokens, 1);
        assert_eq!(p.output_tokens, DEFAULT_MAX_TOKENS);
        let p = parse_completion(br#"{"model":"m0","max_tokens":999999}"#, 1).unwrap();
        assert_eq!(p.output_tokens, MAX_MAX_TOKENS);
    }

    #[test]
    fn chunks_are_valid_json() {
        let c = completion_chunk(7, ModelId(2), 3, 123, false, false);
        let v: Value = serde_json::from_str(&c).expect("chunk must be JSON");
        let Value::Object(o) = v else { panic!("object") };
        assert!(matches!(o.get("choices"), Some(Value::Array(_))));
        assert!(!c.contains("prefix_hit"), "only done frames report reuse");
        let done = completion_chunk(7, ModelId(2), 9, 456, true, true);
        assert!(done.contains("\"finish_reason\":\"stop\""));
        assert!(done.contains("\"prefix_hit\":true"));
        let done_miss = completion_chunk(7, ModelId(2), 9, 456, true, false);
        assert!(done_miss.contains("\"prefix_hit\":false"));
        let _: Value = serde_json::from_str(&done).expect("done frame must stay JSON");
        let err: Value = serde_json::from_str(&error_body("rate_limit", "try later")).unwrap();
        assert!(matches!(err, Value::Object(_)));
    }
}
