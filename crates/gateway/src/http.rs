//! A minimal incremental HTTP/1.1 request parser and response writer.
//!
//! The build environment has no registry access, so the gateway speaks
//! HTTP/1.1 over `std::net` with a hand-rolled parser. It supports exactly
//! what the gateway needs — one request per connection, `Content-Length`
//! bodies — and fails closed on everything else:
//!
//! * header section over 16 KiB → 431;
//! * body over 1 MiB → 413;
//! * malformed request line or header → 400;
//! * `Transfer-Encoding: chunked` → 501.
//!
//! The parser is incremental: [`HttpParser::feed`] accepts arbitrary read
//! slices (bytes may split anywhere, including mid-token) and returns
//! `Ok(None)` until a full request is buffered. Both CRLF and bare-LF line
//! endings are accepted. A property test drives it with arbitrary header
//! orders and split points.

use std::fmt;

/// Maximum request-line + headers size.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum body size.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, as sent (e.g. `GET`).
    pub method: String,
    /// Request target (path + query), as sent.
    pub target: String,
    /// Protocol version (e.g. `HTTP/1.1`).
    pub version: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header value under `name` (case-insensitive lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; maps onto a 4xx/5xx status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically invalid request line, header or length (400).
    BadRequest(&'static str),
    /// Header section exceeded [`MAX_HEAD_BYTES`] (431).
    HeadersTooLarge,
    /// Declared body exceeded [`MAX_BODY_BYTES`] (413).
    BodyTooLarge,
    /// A feature this parser does not speak, e.g. chunked bodies (501).
    NotImplemented(&'static str),
}

impl HttpError {
    /// `(status code, reason phrase)` for the error response.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::HeadersTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge => (413, "Payload Too Large"),
            HttpError::NotImplemented(_) => (501, "Not Implemented"),
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> &'static str {
        match self {
            HttpError::BadRequest(d) | HttpError::NotImplemented(d) => d,
            HttpError::HeadersTooLarge => "header section too large",
            HttpError::BodyTooLarge => "body too large",
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (code, reason) = self.status();
        write!(f, "{code} {reason}: {}", self.detail())
    }
}

/// Incremental request parser; see module docs.
#[derive(Debug, Default)]
pub struct HttpParser {
    buf: Vec<u8>,
    /// Parsed head, once the terminator was seen.
    head: Option<HttpRequest>,
    /// Declared body length (valid once `head` is set).
    body_len: usize,
    /// Bytes of `buf` consumed by the head section.
    body_start: usize,
}

impl HttpParser {
    /// An empty parser.
    pub fn new() -> HttpParser {
        HttpParser::default()
    }

    /// Buffers `data` and attempts to complete a request. Returns
    /// `Ok(None)` until more bytes are needed; errors are terminal (the
    /// connection should answer with [`HttpError::status`] and close).
    pub fn feed(&mut self, data: &[u8]) -> Result<Option<HttpRequest>, HttpError> {
        self.buf.extend_from_slice(data);
        if self.head.is_none() {
            let Some(head_end) = find_head_end(&self.buf) else {
                if self.buf.len() > MAX_HEAD_BYTES {
                    return Err(HttpError::HeadersTooLarge);
                }
                return Ok(None);
            };
            if head_end.head_len > MAX_HEAD_BYTES {
                return Err(HttpError::HeadersTooLarge);
            }
            let head_bytes = self.buf[..head_end.head_len].to_vec();
            let text = String::from_utf8(head_bytes)
                .map_err(|_| HttpError::BadRequest("head is not valid UTF-8"))?;
            let req = parse_head(&text)?;
            self.body_len = declared_body_len(&req)?;
            if self.body_len > MAX_BODY_BYTES {
                return Err(HttpError::BodyTooLarge);
            }
            self.body_start = head_end.total_len;
            self.head = Some(req);
        }
        let have = self.buf.len().saturating_sub(self.body_start);
        if have < self.body_len {
            return Ok(None);
        }
        let mut req = self.head.take().expect("head parsed above");
        req.body = self.buf[self.body_start..self.body_start + self.body_len].to_vec();
        Ok(Some(req))
    }
}

struct HeadEnd {
    /// Length of the head text itself (excludes the blank-line terminator).
    head_len: usize,
    /// Length including the terminator (body starts here).
    total_len: usize,
}

/// Finds the head terminator: `\r\n\r\n` or `\n\n` (whichever comes
/// first), tolerating mixed endings.
fn find_head_end(buf: &[u8]) -> Option<HeadEnd> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // Candidate terminators: "\n\r\n" and "\n\n".
            if buf.len() > i + 2 && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some(HeadEnd {
                    head_len: i + 1,
                    total_len: i + 3,
                });
            }
            if buf.len() > i + 1 && buf[i + 1] == b'\n' {
                return Some(HeadEnd {
                    head_len: i + 1,
                    total_len: i + 2,
                });
            }
        }
        i += 1;
    }
    None
}

fn parse_head(text: &str) -> Result<HttpRequest, HttpError> {
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines
        .next()
        .ok_or(HttpError::BadRequest("empty request"))?;
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or(HttpError::BadRequest("missing method"))?;
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("malformed request line"));
    }
    if !version.starts_with("HTTP/") {
        return Err(HttpError::BadRequest("bad HTTP version"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(HttpError::BadRequest("bad method"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminator's blank line
        }
        let colon = line
            .find(':')
            .ok_or(HttpError::BadRequest("header line without colon"))?;
        let (name, value) = line.split_at(colon);
        if name.is_empty() {
            return Err(HttpError::BadRequest("empty header name"));
        }
        headers.push((
            name.trim().to_ascii_lowercase(),
            value[1..].trim().to_string(),
        ));
    }
    Ok(HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
        version: version.to_string(),
        headers,
        body: Vec::new(),
    })
}

fn declared_body_len(req: &HttpRequest) -> Result<usize, HttpError> {
    if let Some(te) = req.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(HttpError::NotImplemented("transfer-encoding not supported"));
        }
    }
    match req.header("content-length") {
        None => Ok(0),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("invalid content-length")),
    }
}

/// Serializes a complete response with `Connection: close` and a
/// `Content-Length` body.
pub fn response(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> Vec<u8> {
    let mut out = String::with_capacity(128 + body.len());
    out.push_str(&format!("HTTP/1.1 {status} {reason}\r\n"));
    out.push_str(&format!("Content-Type: {content_type}\r\n"));
    out.push_str(&format!("Content-Length: {}\r\n", body.len()));
    for (n, v) in extra_headers {
        out.push_str(&format!("{n}: {v}\r\n"));
    }
    out.push_str("Connection: close\r\n\r\n");
    out.push_str(body);
    out.into_bytes()
}

/// Serializes the response head for an SSE stream (no `Content-Length`;
/// the connection close delimits the stream).
pub fn sse_head() -> Vec<u8> {
    b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n".to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<HttpRequest>, HttpError> {
        HttpParser::new().feed(bytes)
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_split_across_feeds() {
        let raw = b"POST /v1/completions HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
        for cut in 0..raw.len() {
            let mut p = HttpParser::new();
            let first = p.feed(&raw[..cut]).unwrap();
            assert!(first.is_none() || cut == raw.len());
            let req = p.feed(&raw[cut..]).unwrap().expect("complete at end");
            assert_eq!(req.body, b"hello world");
        }
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse_all(b"GET / HTTP/1.1\nHost: y\n\n").unwrap().unwrap();
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req = parse_all(b"GET / HTTP/1.1\r\ncOnTent-LENGTH: 0\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.header("Content-Length"), Some("0"));
    }

    #[test]
    fn oversized_head_is_431() {
        let mut p = HttpParser::new();
        let mut line = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        line.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        assert_eq!(p.feed(&line), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse_all(raw.as_bytes()), Err(HttpError::BodyTooLarge));
    }

    #[test]
    fn chunked_transfer_is_501() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(
            parse_all(raw),
            Err(HttpError::NotImplemented("transfer-encoding not supported"))
        );
    }

    #[test]
    fn malformed_requests_are_400() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / NOTHTTP\r\n\r\n"[..],
            &b"G=T / HTTP/1.1\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbadheader\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n"[..],
        ] {
            match parse_all(raw) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("expected 400 for {raw:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn response_writer_includes_length_and_close() {
        let bytes = response(429, "Too Many Requests", "text/plain", "slow down\n", &[("Retry-After", "2")]);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Content-Length: 10\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("slow down\n"));
    }
}
