//! Server-Sent Events framing (the OpenAI streaming convention).
//!
//! Each payload is one `data: <json>\n\n` frame; the stream ends with the
//! literal `data: [DONE]\n\n` sentinel followed by connection close.

/// Frames one payload as an SSE data event.
pub fn event(payload: &str) -> String {
    format!("data: {payload}\n\n")
}

/// The terminal sentinel frame.
pub const DONE_FRAME: &str = "data: [DONE]\n\n";

/// The sentinel payload (what [`parse_data_lines`] yields for the final
/// frame).
pub const DONE: &str = "[DONE]";

/// Extracts the `data:` payloads from a raw SSE byte stream (client side:
/// the bench harness and tests). Frames are separated by blank lines;
/// non-`data:` fields are ignored.
pub fn parse_data_lines(raw: &str) -> Vec<String> {
    raw.lines()
        .filter_map(|l| l.strip_prefix("data:").map(|p| p.trim_start().to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let raw = format!("{}{}{}", event("{\"a\":1}"), event("{\"b\":2}"), DONE_FRAME);
        let payloads = parse_data_lines(&raw);
        assert_eq!(payloads, vec!["{\"a\":1}", "{\"b\":2}", DONE]);
    }

    #[test]
    fn ignores_comment_and_event_fields() {
        let raw = ": keepalive\nevent: tick\ndata: x\n\n";
        assert_eq!(parse_data_lines(raw), vec!["x"]);
    }
}
