//! Server-Sent Events framing (the OpenAI streaming convention).
//!
//! Each payload is one `data: <json>\n\n` frame; the stream ends with the
//! literal `data: [DONE]\n\n` sentinel followed by connection close.

/// Frames one payload as an SSE data event.
pub fn event(payload: &str) -> String {
    format!("data: {payload}\n\n")
}

/// The terminal sentinel frame.
pub const DONE_FRAME: &str = "data: [DONE]\n\n";

/// The sentinel payload (what [`parse_data_lines`] yields for the final
/// frame).
pub const DONE: &str = "[DONE]";

/// Extracts the `data:` payloads from a raw SSE byte stream (client side:
/// the bench harness and tests). Frames are separated by blank lines;
/// non-`data:` fields are ignored.
pub fn parse_data_lines(raw: &str) -> Vec<String> {
    raw.lines()
        .filter_map(|l| l.strip_prefix("data:").map(|p| p.trim_start().to_string()))
        .collect()
}

/// Incremental SSE scanner for nonblocking clients: feed arbitrary byte
/// chunks (however the socket split them) and collect complete `data:`
/// payloads as they close. Equivalent to [`parse_data_lines`] over the
/// concatenation of all chunks, minus any trailing unterminated line.
#[derive(Debug, Default)]
pub struct SseScanner {
    partial: Vec<u8>,
}

impl SseScanner {
    /// A scanner with no buffered partial line.
    pub fn new() -> SseScanner {
        SseScanner::default()
    }

    /// Consume one chunk, appending any newly completed payloads to `out`.
    pub fn feed(&mut self, chunk: &[u8], out: &mut Vec<String>) {
        for &b in chunk {
            if b == b'\n' {
                let line = String::from_utf8_lossy(&self.partial);
                let line = line.strip_suffix('\r').unwrap_or(&line);
                if let Some(p) = line.strip_prefix("data:") {
                    out.push(p.trim_start().to_string());
                }
                self.partial.clear();
            } else {
                self.partial.push(b);
            }
        }
    }

    /// Bytes of the current unterminated line (diagnostics).
    pub fn pending(&self) -> usize {
        self.partial.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_matches_batch_parser_across_splits() {
        let raw = format!(
            "{}{}: keepalive\n{}{}",
            event("{\"a\":1}"),
            event("{\"b\":2}"),
            event("x"),
            DONE_FRAME
        );
        let want = parse_data_lines(&raw);
        for cut in 0..raw.len() {
            let mut sc = SseScanner::new();
            let mut got = Vec::new();
            sc.feed(&raw.as_bytes()[..cut], &mut got);
            sc.feed(&raw.as_bytes()[cut..], &mut got);
            assert_eq!(got, want, "split at {cut}");
        }
    }

    #[test]
    fn frames_round_trip() {
        let raw = format!("{}{}{}", event("{\"a\":1}"), event("{\"b\":2}"), DONE_FRAME);
        let payloads = parse_data_lines(&raw);
        assert_eq!(payloads, vec!["{\"a\":1}", "{\"b\":2}", DONE]);
    }

    #[test]
    fn ignores_comment_and_event_fields() {
        let raw = ": keepalive\nevent: tick\ndata: x\n\n";
        assert_eq!(parse_data_lines(raw), vec!["x"]);
    }
}
