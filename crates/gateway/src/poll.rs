//! Minimal nonblocking readiness poller — the reactor's only OS surface.
//!
//! Same vendoring discipline as the rest of the gateway: no `libc` crate,
//! no async runtime. On Linux this wraps epoll (edge-triggered) plus an
//! `eventfd` waker; on other unixes it falls back to `poll(2)` plus a
//! self-pipe. Both backends present the identical [`Poller`] API, so the
//! reactor in `server.rs` is platform-agnostic.
//!
//! Edge-triggered contract: after a [`PollEvent`] reports an fd readable or
//! writable, the owner must read/write/accept **until `WouldBlock`** before
//! the next readiness edge will be reported. The `poll(2)` fallback is
//! level-triggered underneath, which only means spurious extra events — the
//! drain-until-`WouldBlock` discipline is correct under both.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Token reserved for the internal waker; never hand this to `register`.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token passed at registration ([`WAKE_TOKEN`] for waker pokes).
    pub token: u64,
    /// Reading will make progress (data, EOF, or a pending accept).
    pub readable: bool,
    /// Writing will make progress.
    pub writable: bool,
    /// Peer closed or the fd errored; the connection should be torn down
    /// after draining whatever is still readable.
    pub hangup: bool,
}

/// A cloneable, thread-safe handle that interrupts a blocked
/// [`Poller::wait`]. The fd behind it stays valid until the `Poller` is
/// dropped — the gateway keeps the reactor thread (and thus the poller)
/// alive until after the last `wake()` during shutdown.
#[derive(Debug, Clone)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Wake the poller. Best-effort: an already-pending wake is fine, and a
    /// full pipe/counter just means a wake is already queued.
    pub fn wake(&self) {
        sys::waker_signal(self.fd);
    }
}

/// Readiness poller over a set of registered fds. Single-owner: lives on
/// the reactor thread; only [`Waker`] handles escape it.
#[derive(Debug)]
pub struct Poller {
    inner: sys::Backend,
    registered: usize,
}

impl Poller {
    /// Build a poller plus its internal waker fd.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Backend::new()?,
            registered: 0,
        })
    }

    /// Register `fd` under `token` with read+write interest, edge-triggered.
    /// The fd must already be nonblocking.
    pub fn register(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        assert!(token != WAKE_TOKEN, "WAKE_TOKEN is reserved");
        self.inner.register(fd, token)?;
        self.registered += 1;
        Ok(())
    }

    /// Remove `fd` from the interest set. Must be called before the fd is
    /// closed (closing first is usually benign with epoll but leaks slots
    /// in the poll fallback).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)?;
        self.registered = self.registered.saturating_sub(1);
        Ok(())
    }

    /// Count of currently registered fds (excluding the waker).
    pub fn registered(&self) -> usize {
        self.registered
    }

    /// Handle for waking a blocked `wait` from another thread.
    pub fn waker(&self) -> Waker {
        Waker {
            fd: self.inner.waker_fd(),
        }
    }

    /// Block until readiness or timeout, filling `out` (cleared first).
    /// `None` blocks indefinitely; `Some(0)` polls without blocking.
    /// Waker pokes surface as events with [`WAKE_TOKEN`] and are already
    /// drained. EINTR retries internally.
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let ms: i32 = match timeout {
            None => -1,
            Some(d) if d.is_zero() => 0,
            // Round up so a sub-millisecond timeout still sleeps.
            Some(d) => d
                .as_millis()
                .saturating_add(1)
                .min(i32::MAX as u128) as i32,
        };
        self.inner.wait(out, ms)
    }
}

/// Shrink a socket's kernel buffers (Linux only; no-op elsewhere). Used by
/// tests that need a slow reader to exert real backpressure without
/// hundreds of kilobytes of kernel buffering absorbing the stream. The
/// kernel doubles the value it is given and enforces a floor, so the
/// effective size is "small", not exact.
pub fn shrink_socket_buffers(fd: RawFd, sndbuf: Option<u32>, rcvbuf: Option<u32>) -> io::Result<()> {
    sys::shrink_socket_buffers(fd, sndbuf, rcvbuf)
}

/// Deepen the accept backlog of an already-listening socket.
///
/// `std::net::TcpListener::bind` hardcodes a backlog of 128, which a swarm
/// connecting at thousands of sockets per second overflows in ~100 ms if
/// the reactor is mid-way through a long simulation step. On Linux,
/// calling `listen(2)` again on a listening socket updates the backlog in
/// place (the kernel clamps to `net.core.somaxconn`). Best-effort on other
/// unixes, where re-listen may be a no-op.
pub fn widen_listen_backlog(fd: RawFd, backlog: u32) -> io::Result<()> {
    extern "C" {
        fn listen(fd: i32, backlog: i32) -> i32;
    }
    let ret = unsafe { listen(fd, backlog.min(i32::MAX as u32) as i32) };
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// Effective accept backlog of a listening socket, read back from the
/// kernel. On Linux this comes from `getsockopt(IPPROTO_TCP, TCP_INFO)`:
/// for sockets in `LISTEN` state the kernel reports
/// `sk_max_ack_backlog` in the `tcpi_sacked` field, which is exactly the
/// (somaxconn-clamped) value the last `listen(2)` installed. Unsupported
/// elsewhere — callers treat that as "cannot verify", not as failure.
pub fn listen_backlog(fd: RawFd) -> io::Result<u32> {
    sys::listen_backlog(fd)
}

/// Builds `n` nonblocking listeners bound to the same address via
/// `SO_REUSEPORT`, so the kernel shards incoming connections across them
/// by 4-tuple hash — one listener per I/O reactor, zero user-space accept
/// locking. The option must be set **before** `bind(2)`, which
/// `std::net::TcpListener` gives no hook for, hence the raw
/// `socket`/`setsockopt`/`bind`/`listen` FFI (same no-`libc` discipline as
/// the epoll backend above).
///
/// Port 0 is resolved once: the first listener binds ephemeral, and the
/// remaining `n - 1` join its group on the concrete port returned by
/// `getsockname(2)`. Every listener starts with the kernel-default backlog;
/// callers widen each one via [`widen_listen_backlog`].
///
/// Returns the listeners plus the resolved local address. With `n == 1`
/// on non-Linux unixes this falls back to a plain `TcpListener::bind`;
/// `n > 1` requires Linux.
pub fn reuseport_listener_group(
    addr: SocketAddr,
    n: usize,
) -> io::Result<(Vec<TcpListener>, SocketAddr)> {
    assert!(n >= 1, "listener group needs at least one member");
    sys::reuseport_listener_group(addr, n)
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{PollEvent, WAKE_TOKEN};
    use std::io;
    use std::net::{SocketAddr, TcpListener};
    use std::os::unix::io::{FromRawFd, RawFd};

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    const EFD_NONBLOCK: i32 = 0o4000;
    const EFD_CLOEXEC: i32 = 0o2000000;

    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;
    const SO_REUSEPORT: i32 = 15;

    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_NONBLOCK: i32 = 0o4000;
    const SOCK_CLOEXEC: i32 = 0o2000000;

    const IPPROTO_TCP: i32 = 6;
    const TCP_INFO: i32 = 11;

    /// Kernel epoll_event. Packed on x86 so the 64-bit payload sits at
    /// offset 4, matching the kernel ABI; naturally aligned elsewhere.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
        fn getsockopt(fd: i32, level: i32, optname: i32, optval: *mut u8, optlen: *mut u32) -> i32;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn bind(fd: i32, addr: *const u8, addrlen: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn getsockname(fd: i32, addr: *mut u8, addrlen: *mut u32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    #[derive(Debug)]
    pub struct Backend {
        epfd: RawFd,
        efd: RawFd,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let efd = match cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let b = Backend { epfd, efd };
            let mut ev = EpollEvent {
                events: EPOLLIN | EPOLLET,
                data: WAKE_TOKEN,
            };
            cvt(unsafe { epoll_ctl(b.epfd, EPOLL_CTL_ADD, b.efd, &mut ev) })?;
            Ok(b)
        }

        pub fn register(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) })?;
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
            Ok(())
        }

        pub fn waker_fd(&self) -> RawFd {
            self.efd
        }

        fn drain_waker(&self) {
            let mut buf = [0u8; 8];
            loop {
                let n = unsafe { read(self.efd, buf.as_mut_ptr(), 8) };
                if n <= 0 {
                    break;
                }
            }
        }

        pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
            const CAP: usize = 1024;
            let mut buf = [EpollEvent { events: 0, data: 0 }; CAP];
            loop {
                let n = unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), CAP as i32, timeout_ms) };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                for ev in buf.iter().take(n as usize) {
                    // Copy out of the (possibly packed) struct first.
                    let events = ev.events;
                    let token = ev.data;
                    if token == WAKE_TOKEN {
                        self.drain_waker();
                    }
                    out.push(PollEvent {
                        token,
                        readable: events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                        writable: events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                        hangup: events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                    });
                }
                return Ok(());
            }
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe {
                close(self.efd);
                close(self.epfd);
            }
        }
    }

    pub fn waker_signal(fd: RawFd) {
        let one: u64 = 1;
        unsafe { write(fd, &one as *const u64 as *const u8, 8) };
    }

    pub fn shrink_socket_buffers(
        fd: RawFd,
        sndbuf: Option<u32>,
        rcvbuf: Option<u32>,
    ) -> io::Result<()> {
        for (opt, val) in [(SO_SNDBUF, sndbuf), (SO_RCVBUF, rcvbuf)] {
            if let Some(v) = val {
                let v = v as i32;
                cvt(unsafe {
                    setsockopt(
                        fd,
                        SOL_SOCKET,
                        opt,
                        &v as *const i32 as *const u8,
                        std::mem::size_of::<i32>() as u32,
                    )
                })?;
            }
        }
        Ok(())
    }

    /// Linux `sockaddr_in` / `sockaddr_in6` wire layout, built by hand.
    /// Returns (bytes, length).
    fn encode_sockaddr(addr: SocketAddr) -> ([u8; 28], u32) {
        let mut buf = [0u8; 28];
        match addr {
            SocketAddr::V4(v4) => {
                buf[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
                buf[2..4].copy_from_slice(&v4.port().to_be_bytes());
                buf[4..8].copy_from_slice(&v4.ip().octets());
                (buf, 16)
            }
            SocketAddr::V6(v6) => {
                buf[0..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
                buf[2..4].copy_from_slice(&v6.port().to_be_bytes());
                buf[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
                buf[8..24].copy_from_slice(&v6.ip().octets());
                buf[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                (buf, 28)
            }
        }
    }

    /// Reads the bound port back out of `getsockname(2)`.
    fn bound_port(fd: RawFd) -> io::Result<u16> {
        let mut buf = [0u8; 28];
        let mut len = buf.len() as u32;
        cvt(unsafe { getsockname(fd, buf.as_mut_ptr(), &mut len) })?;
        // Port sits at the same offset (2) in sockaddr_in and sockaddr_in6.
        Ok(u16::from_be_bytes([buf[2], buf[3]]))
    }

    fn set_opt_one(fd: RawFd, level: i32, opt: i32) -> io::Result<()> {
        let one: i32 = 1;
        cvt(unsafe {
            setsockopt(
                fd,
                level,
                opt,
                &one as *const i32 as *const u8,
                std::mem::size_of::<i32>() as u32,
            )
        })?;
        Ok(())
    }

    pub fn reuseport_listener_group(
        addr: SocketAddr,
        n: usize,
    ) -> io::Result<(Vec<TcpListener>, SocketAddr)> {
        let family = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
        let mut listeners = Vec::with_capacity(n);
        let mut bound = addr;
        for _ in 0..n {
            let fd = cvt(unsafe {
                socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0)
            })?;
            // From-raw before anything fallible so the fd is owned (closed
            // on error drop) from here on.
            let listener = unsafe { TcpListener::from_raw_fd(fd) };
            set_opt_one(fd, SOL_SOCKET, SO_REUSEADDR)?;
            set_opt_one(fd, SOL_SOCKET, SO_REUSEPORT)?;
            let (sa, sa_len) = encode_sockaddr(bound);
            cvt(unsafe { bind(fd, sa.as_ptr(), sa_len) })?;
            cvt(unsafe { listen(fd, 128) })?;
            if bound.port() == 0 {
                // First member resolved the ephemeral port; the rest join
                // its group on the concrete port.
                bound.set_port(bound_port(fd)?);
            }
            listeners.push(listener);
        }
        Ok((listeners, bound))
    }

    pub fn listen_backlog(fd: RawFd) -> io::Result<u32> {
        // struct tcp_info: 8 one-byte fields, then u32 rto/ato/snd_mss/
        // rcv_mss, then tcpi_unacked @24 and tcpi_sacked @28. For LISTEN
        // sockets the kernel fills unacked = current queue depth and
        // sacked = max backlog (sk_max_ack_backlog).
        let mut info = [0u8; 128];
        let mut len = info.len() as u32;
        cvt(unsafe { getsockopt(fd, IPPROTO_TCP, TCP_INFO, info.as_mut_ptr(), &mut len) })?;
        if len < 32 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "tcp_info too short for tcpi_sacked",
            ));
        }
        Ok(u32::from_ne_bytes([info[28], info[29], info[30], info[31]]))
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{PollEvent, WAKE_TOKEN};
    use std::io;
    use std::os::unix::io::RawFd;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    const F_SETFL: i32 = 4;
    // BSD/macOS O_NONBLOCK (this module never compiles on Linux).
    const O_NONBLOCK: i32 = 0x0004;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    #[derive(Debug)]
    pub struct Backend {
        /// (fd, token) interest set; the waker pipe read end is entry 0.
        slots: Vec<(RawFd, u64)>,
        pipe_r: RawFd,
        pipe_w: RawFd,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                    let e = io::Error::last_os_error();
                    unsafe {
                        close(fds[0]);
                        close(fds[1]);
                    }
                    return Err(e);
                }
            }
            Ok(Backend {
                slots: vec![(fds[0], WAKE_TOKEN)],
                pipe_r: fds[0],
                pipe_w: fds[1],
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
            self.slots.push((fd, token));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            match self.slots.iter().rposition(|&(f, _)| f == fd) {
                Some(i) if i > 0 => {
                    self.slots.swap_remove(i);
                    Ok(())
                }
                _ => Err(io::Error::from(io::ErrorKind::NotFound)),
            }
        }

        pub fn waker_fd(&self) -> RawFd {
            self.pipe_w
        }

        fn drain_waker(&self) {
            let mut buf = [0u8; 64];
            loop {
                let n = unsafe { read(self.pipe_r, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }

        pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .slots
                .iter()
                .map(|&(fd, token)| PollFd {
                    fd,
                    events: if token == WAKE_TOKEN {
                        POLLIN
                    } else {
                        POLLIN | POLLOUT
                    },
                    revents: 0,
                })
                .collect();
            loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms) };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                for (pfd, &(_, token)) in fds.iter().zip(self.slots.iter()) {
                    let r = pfd.revents;
                    if r == 0 {
                        continue;
                    }
                    if token == WAKE_TOKEN {
                        self.drain_waker();
                    }
                    out.push(PollEvent {
                        token,
                        readable: r & (POLLIN | POLLHUP | POLLERR) != 0,
                        writable: r & (POLLOUT | POLLHUP | POLLERR) != 0,
                        hangup: r & (POLLHUP | POLLERR) != 0,
                    });
                }
                return Ok(());
            }
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe {
                close(self.pipe_r);
                close(self.pipe_w);
            }
        }
    }

    pub fn waker_signal(fd: RawFd) {
        let one = [1u8];
        unsafe { write(fd, one.as_ptr(), 1) };
    }

    pub fn shrink_socket_buffers(
        _fd: RawFd,
        _sndbuf: Option<u32>,
        _rcvbuf: Option<u32>,
    ) -> io::Result<()> {
        Ok(())
    }

    pub fn reuseport_listener_group(
        addr: std::net::SocketAddr,
        n: usize,
    ) -> io::Result<(Vec<std::net::TcpListener>, std::net::SocketAddr)> {
        if n > 1 {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "SO_REUSEPORT listener groups require Linux",
            ));
        }
        let l = std::net::TcpListener::bind(addr)?;
        l.set_nonblocking(true)?;
        let bound = l.local_addr()?;
        Ok((vec![l], bound))
    }

    pub fn listen_backlog(_fd: RawFd) -> io::Result<u32> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollEvent;
    use std::io;
    use std::os::unix::io::RawFd;

    #[derive(Debug)]
    pub struct Backend;

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "gateway reactor requires a unix poller",
            ))
        }
        pub fn register(&mut self, _fd: RawFd, _token: u64) -> io::Result<()> {
            unreachable!()
        }
        pub fn deregister(&mut self, _fd: RawFd) -> io::Result<()> {
            unreachable!()
        }
        pub fn waker_fd(&self) -> RawFd {
            unreachable!()
        }
        pub fn wait(&mut self, _out: &mut Vec<PollEvent>, _ms: i32) -> io::Result<()> {
            unreachable!()
        }
    }

    pub fn waker_signal(_fd: RawFd) {}

    pub fn shrink_socket_buffers(
        _fd: RawFd,
        _sndbuf: Option<u32>,
        _rcvbuf: Option<u32>,
    ) -> io::Result<()> {
        Ok(())
    }

    pub fn reuseport_listener_group(
        _addr: std::net::SocketAddr,
        _n: usize,
    ) -> io::Result<(Vec<std::net::TcpListener>, std::net::SocketAddr)> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }

    pub fn listen_backlog(_fd: RawFd) -> io::Result<u32> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn listener_accept_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(listener.as_raw_fd(), 7).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| !e.readable || e.token != 7));

        let _client = TcpStream::connect(addr).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let (s, _) = listener.accept().unwrap();
        drop(s);
    }

    #[test]
    fn edge_triggered_write_then_read() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(client.as_raw_fd(), 1).unwrap();

        // Fresh socket: writable edge reported.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Data arrives: readable edge reported.
        server.write_all(b"ping").unwrap();
        server.flush().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_read = false;
        while Instant::now() < deadline && !saw_read {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            saw_read = events.iter().any(|e| e.token == 1 && e.readable);
        }
        assert!(saw_read);
        let mut buf = [0u8; 4];
        let mut c = &client;
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        poller.deregister(client.as_raw_fd()).unwrap();
        assert_eq!(poller.registered(), 0);
    }

    #[test]
    fn waker_interrupts_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(30))).unwrap();
        assert!(start.elapsed() < Duration::from_secs(10));
        assert!(events.iter().any(|e| e.token == WAKE_TOKEN));
        t.join().unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reuseport_group_shares_one_port_and_accepts() {
        let (listeners, addr) =
            reuseport_listener_group("127.0.0.1:0".parse().unwrap(), 4).unwrap();
        assert_eq!(listeners.len(), 4);
        for l in &listeners {
            assert_eq!(l.local_addr().unwrap().port(), addr.port());
        }
        // Every connection lands on exactly one group member.
        let clients: Vec<TcpStream> =
            (0..32).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut accepted = 0;
        while accepted < clients.len() && Instant::now() < deadline {
            let mut progressed = false;
            for l in &listeners {
                match l.accept() {
                    Ok((s, _)) => {
                        drop(s);
                        accepted += 1;
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("accept failed: {e}"),
                }
            }
            if !progressed {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        assert_eq!(accepted, clients.len());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn widened_backlog_is_observable_via_getsockopt() {
        let somaxconn: u32 = std::fs::read_to_string("/proc/sys/net/core/somaxconn")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(4096);
        let (listeners, _addr) =
            reuseport_listener_group("127.0.0.1:0".parse().unwrap(), 2).unwrap();
        for l in &listeners {
            let want = 1024.min(somaxconn);
            widen_listen_backlog(l.as_raw_fd(), 1024).unwrap();
            let got = listen_backlog(l.as_raw_fd()).unwrap();
            assert_eq!(
                got, want,
                "listen(2) backlog did not take effect (somaxconn={somaxconn})"
            );
            // Widen again to prove re-listen updates in place.
            let want2 = 2048.min(somaxconn);
            widen_listen_backlog(l.as_raw_fd(), 2048).unwrap();
            assert_eq!(listen_backlog(l.as_raw_fd()).unwrap(), want2);
        }
    }

    #[test]
    fn zero_timeout_polls_without_blocking() {
        let mut poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(1));
        assert!(events.is_empty());
    }
}
