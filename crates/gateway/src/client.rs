//! A small blocking HTTP/1.1 client over `std::net` for the load harness
//! and integration tests (one request per connection, `Connection: close`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A buffered, non-streaming response.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Whole body (read to EOF).
    pub body: Vec<u8>,
}

impl Response {
    /// First header value under `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: gateway\r\nConnection: close\r\n");
    if let Some(b) = body {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(b) = body {
        stream.write_all(b.as_bytes())?;
    }
    stream.flush()
}

fn read_head(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, Vec<(String, String)>)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(colon) = line.find(':') {
            headers.push((
                line[..colon].trim().to_ascii_lowercase(),
                line[colon + 1..].trim().to_string(),
            ));
        }
    }
    Ok((status, headers))
}

/// Sends one request and reads the whole response (suits non-streaming
/// endpoints; also usable on SSE endpoints when only the final transcript
/// matters).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_request(&mut stream, method, path, body)?;
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader)?;
    let mut body = Vec::new();
    reader.read_to_end(&mut body)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// An open SSE response being read incrementally (for first-token /
/// inter-token latency measurements).
pub struct SseStream {
    /// Status code of the response head.
    pub status: u16,
    /// Response headers.
    pub headers: Vec<(String, String)>,
    reader: BufReader<TcpStream>,
}

impl SseStream {
    /// Opens a POST and reads the response head; the body is then consumed
    /// event by event via [`SseStream::next_data`].
    pub fn post(
        addr: SocketAddr,
        path: &str,
        body: &str,
        timeout: Duration,
    ) -> std::io::Result<SseStream> {
        let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        write_request(&mut stream, "POST", path, Some(body))?;
        let mut reader = BufReader::new(stream);
        let (status, headers) = read_head(&mut reader)?;
        Ok(SseStream {
            status,
            headers,
            reader,
        })
    }

    /// First header value under `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Next `data:` payload, or `None` at end of stream. Non-`data` lines
    /// are skipped.
    pub fn next_data(&mut self) -> std::io::Result<Option<String>> {
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Ok(None);
            }
            let line = line.trim_end();
            if let Some(payload) = line.strip_prefix("data:") {
                return Ok(Some(payload.trim_start().to_string()));
            }
        }
    }

    /// Reads the rest of the body (non-streaming fallback, e.g. on a 4xx).
    pub fn read_remaining(mut self) -> std::io::Result<String> {
        let mut rest = String::new();
        self.reader.read_to_string(&mut rest)?;
        Ok(rest)
    }
}
