//! The sim↔wall clock driver.
//!
//! A live gateway must decide *when* to dispatch the next simulated event:
//! the clock driver maps elapsed wall time to a simulated-time target and
//! back. Two modes:
//!
//! * **Realtime** — one simulated second per wall second; token streams
//!   pace exactly as the simulation times them.
//! * **Timewarp(f)** — `f` simulated seconds per wall second (`f > 1`
//!   fast-forwards, `f < 1` slow-motions). Because stepping cadence never
//!   affects simulation outcomes (see `aegaeon::session`), timewarp runs
//!   are fingerprint-identical to realtime runs of the same arrivals.
//!
//! The driver is deliberately free of `Instant` state: callers pass the
//! elapsed wall duration, which keeps every method a pure function and the
//! whole mapping unit-testable without sleeping.

use std::time::Duration;

use aegaeon_sim::SimTime;

/// How simulated time tracks wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockMode {
    /// 1 simulated second per wall second.
    Realtime,
    /// `factor` simulated seconds per wall second.
    Timewarp(f64),
}

/// Pure sim↔wall mapper (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct ClockDriver {
    factor: f64,
}

impl ClockDriver {
    /// Creates a driver; panics on a non-positive or non-finite factor.
    pub fn new(mode: ClockMode) -> ClockDriver {
        let factor = match mode {
            ClockMode::Realtime => 1.0,
            ClockMode::Timewarp(f) => f,
        };
        assert!(
            factor.is_finite() && factor > 0.0,
            "clock factor must be positive and finite, got {factor}"
        );
        ClockDriver { factor }
    }

    /// Simulated seconds advanced per wall second.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The simulated instant the session should have reached after
    /// `elapsed` wall time.
    pub fn sim_at(&self, elapsed: Duration) -> SimTime {
        SimTime::from_nanos((elapsed.as_nanos() as f64 * self.factor) as u64)
    }

    /// How much longer to sleep (from `elapsed` wall time) until simulated
    /// instant `sim` is due; zero when it is already due.
    pub fn delay_for(&self, sim: SimTime, elapsed: Duration) -> Duration {
        let due = Duration::from_nanos((sim.as_nanos() as f64 / self.factor) as u64);
        due.saturating_sub(elapsed)
    }

    /// How far simulated time trails its wall target, in simulated seconds
    /// (0.0 when the session is caught up or ahead).
    pub fn lag_secs(&self, sim_now: SimTime, elapsed: Duration) -> f64 {
        let target = self.sim_at(elapsed);
        if target > sim_now {
            (target - sim_now).as_secs_f64()
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realtime_is_identity() {
        let c = ClockDriver::new(ClockMode::Realtime);
        let e = Duration::from_millis(1500);
        assert_eq!(c.sim_at(e), SimTime::from_secs_f64(1.5));
        assert_eq!(
            c.delay_for(SimTime::from_secs_f64(2.0), e),
            Duration::from_millis(500)
        );
        assert_eq!(c.delay_for(SimTime::from_secs_f64(1.0), e), Duration::ZERO);
    }

    #[test]
    fn timewarp_compresses_wall_time() {
        let c = ClockDriver::new(ClockMode::Timewarp(10.0));
        let e = Duration::from_secs(2);
        assert_eq!(c.sim_at(e), SimTime::from_secs_f64(20.0));
        // 30 simulated seconds are due 3 wall seconds in: 1 s left.
        assert_eq!(
            c.delay_for(SimTime::from_secs_f64(30.0), e),
            Duration::from_secs(1)
        );
    }

    #[test]
    fn slow_motion_stretches_wall_time() {
        let c = ClockDriver::new(ClockMode::Timewarp(0.5));
        assert_eq!(c.sim_at(Duration::from_secs(4)), SimTime::from_secs_f64(2.0));
        assert_eq!(
            c.delay_for(SimTime::from_secs_f64(3.0), Duration::from_secs(4)),
            Duration::from_secs(2)
        );
    }

    #[test]
    fn lag_is_zero_when_caught_up() {
        let c = ClockDriver::new(ClockMode::Realtime);
        let e = Duration::from_secs(5);
        assert_eq!(c.lag_secs(SimTime::from_secs_f64(5.0), e), 0.0);
        assert_eq!(c.lag_secs(SimTime::from_secs_f64(9.0), e), 0.0);
        assert!((c.lag_secs(SimTime::from_secs_f64(3.0), e) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "clock factor")]
    fn zero_factor_is_rejected() {
        ClockDriver::new(ClockMode::Timewarp(0.0));
    }
}
