//! Bounded SPSC rings — the only channel between the sim thread and the
//! I/O reactors' token path.
//!
//! One ring per in-flight request: the sim thread (single producer) pushes
//! [`TokenEv`]-shaped payloads as decode events dispatch; the reactor that
//! owns the connection (single consumer) drains them into the connection's
//! `WriteQueue`. Capacity is fixed at creation to the request's maximum
//! output length, so a well-formed stream can **never** overflow its ring —
//! `push` returning `Full` indicates a protocol bug, not backpressure
//! (client backpressure is the `WriteQueue`'s job, downstream of here).
//!
//! Every producer handle carries a [`RingTag`] naming its destination
//! `(reactor, generation, slot)`. The reactor resolves a tag against its
//! connection slab before touching the slot: a recycled connection bumps
//! the slot's generation, so a stale tag — one minted for a connection that
//! has since been closed and its slot reused — fails the generation check
//! and the delivery is dropped instead of corrupting an unrelated stream.
//!
//! No `libc`, no locks: `std::sync::atomic` only. The implementation is the
//! textbook single-producer/single-consumer ring (Lamport queue) with
//! acquire/release pairs on `head`/`tail` and power-of-two indexing.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Destination of a token ring: which reactor owns the consumer, and the
/// generation-tagged slab token of the connection it feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RingTag {
    /// Index of the owning I/O reactor.
    pub reactor: u32,
    /// The reactor's slab token for the connection: `(generation << 32) | slot`.
    pub conn: u64,
}

impl RingTag {
    /// Builds a tag from a reactor index and a `(generation, slot)` pair.
    pub fn new(reactor: u32, generation: u32, slot: u32) -> RingTag {
        RingTag {
            reactor,
            conn: ((generation as u64) << 32) | slot as u64,
        }
    }

    /// Slab slot index the tag points at.
    pub fn slot(&self) -> usize {
        (self.conn & 0xffff_ffff) as usize
    }

    /// Generation the slot had when the tag was minted.
    pub fn generation(&self) -> u32 {
        (self.conn >> 32) as u32
    }

    /// True when the tag still names the live occupant of a slot: the
    /// slot's current generation must equal the one baked into the tag.
    pub fn is_current(&self, slot_generation: u32) -> bool {
        self.generation() == slot_generation
    }
}

struct Inner<T> {
    /// Power-of-two slot array; index = position & mask.
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next position to pop (consumer-owned, producer reads).
    head: AtomicUsize,
    /// Next position to push (producer-owned, consumer reads).
    tail: AtomicUsize,
    producer_gone: AtomicBool,
    consumer_gone: AtomicBool,
}

// The ring hands each T from exactly one thread to exactly one other.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drop whatever was pushed but not popped.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut pos = head;
        while pos != tail {
            unsafe { (*self.buf[pos & self.mask].get()).assume_init_drop() };
            pos = pos.wrapping_add(1);
        }
    }
}

/// Why a push did not land; the payload is handed back either way.
#[derive(Debug)]
pub enum PushError<T> {
    /// Ring is at capacity. With capacity sized to the request's maximum
    /// output this indicates a bug upstream, not a slow client.
    Full(T),
    /// Consumer dropped its handle (connection closed); stop producing.
    Closed(T),
}

/// Producer half: owned by the sim thread, one per in-flight request.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Where deliveries go; carried so the sim thread can mark the right
    /// reactor dirty and the reactor can reject stale tags.
    pub tag: RingTag,
}

/// Consumer half: owned by the reactor connection the ring feeds.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

/// Builds a bounded SPSC ring able to hold at least `capacity` items,
/// tagged with its destination. Capacity is rounded up to a power of two.
pub fn ring<T>(capacity: usize, tag: RingTag) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        producer_gone: AtomicBool::new(false),
        consumer_gone: AtomicBool::new(false),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            tag,
        },
        Consumer { inner },
    )
}

impl<T> Producer<T> {
    /// Push one item. Fails `Closed` once the consumer handle is dropped
    /// and `Full` at capacity; both return the item.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let inner = &*self.inner;
        if inner.consumer_gone.load(Ordering::Acquire) {
            return Err(PushError::Closed(item));
        }
        let tail = inner.tail.load(Ordering::Relaxed);
        let head = inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > inner.mask {
            return Err(PushError::Full(item));
        }
        unsafe { (*inner.buf[tail & inner.mask].get()).write(item) };
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// True once the consumer dropped its handle — further pushes are
    /// pointless and the producer should release the request's resources.
    pub fn is_closed(&self) -> bool {
        self.inner.consumer_gone.load(Ordering::Acquire)
    }

    /// Slots currently queued (approximate from the producer side).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.inner.producer_gone.store(true, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest item, or `None` when the ring is momentarily empty.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        let tail = inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let item = unsafe { (*inner.buf[head & inner.mask].get()).assume_init_read() };
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// True once the producer is gone **and** everything it pushed has been
    /// popped — the stream is over (normally via a final `done` token;
    /// without one the stream was truncated, e.g. the session halted).
    pub fn is_drained(&self) -> bool {
        if !self.inner.producer_gone.load(Ordering::Acquire) {
            return false;
        }
        // Re-check emptiness *after* observing producer_gone: the producer
        // stores tail before the Drop flag, so this order cannot miss a
        // final push.
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        head == tail
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.inner.consumer_gone.store(true, Ordering::Release);
    }
}

/// One dirty flag per reactor, shared between the sim thread's token sinks
/// and the sim loop: a sink marks its reactor when it lands a token, and
/// the loop wakes exactly the reactors whose flags it swaps off. Flag
/// traffic is sim-thread-local except for the reactor-side `take` in
/// drain paths, so contention is nil.
pub struct DirtyBoard {
    flags: Vec<AtomicBool>,
}

impl DirtyBoard {
    /// A board covering `reactors` flags, all clean.
    pub fn new(reactors: usize) -> DirtyBoard {
        DirtyBoard {
            flags: (0..reactors).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Mark a reactor as having pending ring deliveries.
    pub fn mark(&self, reactor: usize) {
        self.flags[reactor].store(true, Ordering::Release);
    }

    /// Clear and return a reactor's flag.
    pub fn take(&self, reactor: usize) -> bool {
        self.flags[reactor].swap(false, Ordering::AcqRel)
    }

    /// Number of reactors covered.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// True when the board covers no reactors.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_and_capacity() {
        let (p, c) = ring::<u32>(4, RingTag::new(0, 0, 0));
        for i in 0..4 {
            p.push(i).unwrap();
        }
        assert!(matches!(p.push(99), Err(PushError::Full(99))));
        for i in 0..4 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn wraps_around_many_times() {
        let (p, c) = ring::<u64>(2, RingTag::new(0, 0, 0));
        for round in 0..1000u64 {
            p.push(round * 2).unwrap();
            p.push(round * 2 + 1).unwrap();
            assert_eq!(c.pop(), Some(round * 2));
            assert_eq!(c.pop(), Some(round * 2 + 1));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn consumer_drop_closes_producer() {
        let (p, c) = ring::<u8>(2, RingTag::new(1, 7, 3));
        drop(c);
        assert!(p.is_closed());
        assert!(matches!(p.push(1), Err(PushError::Closed(1))));
    }

    #[test]
    fn producer_drop_then_drained() {
        let (p, c) = ring::<u8>(4, RingTag::new(0, 0, 0));
        p.push(1).unwrap();
        p.push(2).unwrap();
        drop(p);
        assert!(!c.is_drained(), "queued items not yet popped");
        assert_eq!(c.pop(), Some(1));
        assert_eq!(c.pop(), Some(2));
        assert!(c.is_drained());
    }

    #[test]
    fn unpopped_items_are_dropped_with_ring() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Probe;
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (p, c) = ring::<Probe>(8, RingTag::new(0, 0, 0));
        for _ in 0..5 {
            p.push(Probe).unwrap();
        }
        drop(c.pop()); // one popped and dropped by us
        drop(p);
        drop(c);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn tag_generation_staleness() {
        let tag = RingTag::new(3, 41, 9);
        assert_eq!(tag.reactor, 3);
        assert_eq!(tag.slot(), 9);
        assert_eq!(tag.generation(), 41);
        assert!(tag.is_current(41));
        // Slot recycled: generation bumped, old tag must not resolve.
        assert!(!tag.is_current(42));
    }

    #[test]
    fn cross_thread_handoff() {
        let (p, c) = ring::<u64>(64, RingTag::new(0, 0, 0));
        let producer = thread::spawn(move || {
            let mut i = 0u64;
            while i < 10_000 {
                match p.push(i) {
                    Ok(()) => i += 1,
                    Err(PushError::Full(_)) => thread::yield_now(),
                    Err(PushError::Closed(_)) => panic!("consumer vanished"),
                }
            }
        });
        let mut expect = 0u64;
        while expect < 10_000 {
            match c.pop() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                None => thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert!(c.is_drained());
    }

    #[test]
    fn dirty_board_marks_and_takes() {
        let board = DirtyBoard::new(3);
        assert_eq!(board.len(), 3);
        assert!(!board.take(1));
        board.mark(1);
        assert!(board.take(1));
        assert!(!board.take(1), "take clears the flag");
        assert!(!board.take(0));
    }
}
