//! Minimal SIGTERM/SIGINT handling without any FFI crate.
//!
//! The handler only stores into an [`AtomicBool`] (async-signal-safe); the
//! gateway's main loop polls [`shutdown_requested`] and performs the
//! graceful drain on the ordinary control path. On non-Unix targets the
//! flag simply never trips.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM or SIGINT was delivered (or [`request_shutdown`] was
/// called).
pub fn shutdown_requested() -> bool {
    TERM.load(Ordering::SeqCst)
}

/// Trips the shutdown flag programmatically (tests, non-Unix fallbacks).
pub fn request_shutdown() {
    TERM.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::*;

    extern "C" fn on_signal(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    // libc is linked by std on every Unix target; declaring the one symbol
    // we need avoids a dependency the offline build cannot fetch.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the handler for SIGTERM (15) and SIGINT (2).
    pub fn install() {
        unsafe {
            signal(15, on_signal as *const () as usize);
            signal(2, on_signal as *const () as usize);
        }
    }
}

#[cfg(unix)]
pub use imp::install;

/// No-op on targets without Unix signals.
#[cfg(not(unix))]
pub fn install() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_shutdown_trips_the_flag() {
        install();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
