//! # aegaeon-gateway — live serving front-end for the Aegaeon simulator
//!
//! This crate turns the discrete-event simulator into a *live* service:
//! real clients connect over HTTP/1.1, their requests are injected into an
//! open [`ServingSession`](aegaeon::session::ServingSession), and
//! generated tokens stream back as server-sent events while the simulated
//! cluster schedules, preempts, and auto-scales exactly as it does
//! offline.
//!
//! Two execution modes map simulated time onto the wall clock
//! ([`ClockMode`]):
//!
//! * **Realtime** — one simulated second per wall second; latencies feel
//!   like the real deployment the simulator models.
//! * **Timewarp(k)** — simulated time runs `k`× faster than the wall
//!   clock; a day of traffic plays out in minutes while clients still
//!   interact live.
//!
//! Determinism is preserved: every admitted request is recorded with its
//! simulated arrival stamp, and replaying that trace offline through
//! [`ServingSession::replay`](aegaeon::session::ServingSession::replay)
//! reproduces the live run fingerprint-identically. The whole stack is
//! std-only — no async runtime, no HTTP framework.

pub mod api;
pub mod client;
pub mod clock;
pub mod http;
pub mod outbuf;
pub mod poll;
pub mod ring;
pub mod server;
pub mod signal;
pub mod sse;
pub mod swarm;

pub use clock::{ClockDriver, ClockMode};
pub use server::{Gateway, GatewayConfig, GatewayReport};
