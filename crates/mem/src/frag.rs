//! Fragmentation accounting for Figure 16.
//!
//! The paper reports, per KV-cache block shape and overall, the ratio of
//! unused memory to peak allocated memory in the unified CPU cache during
//! serving. [`FragSampler`] takes periodic, time-weighted samples of a
//! [`crate::SlabPool`]'s usage and aggregates exactly that statistic.

use crate::slab::ShapeUsage;

#[derive(Debug, Clone, Default)]
struct ShapeAgg {
    label: String,
    weighted_alloc: f64,
    weighted_used: f64,
    weight: f64,
    peak_alloc: u64,
}

/// Time-weighted fragmentation aggregator.
#[derive(Debug, Clone, Default)]
pub struct FragSampler {
    shapes: Vec<ShapeAgg>,
}

/// One row of the Figure 16 report.
#[derive(Debug, Clone)]
pub struct FragRow {
    /// Shape label (`"S0"`, …) or `"All"`.
    pub label: String,
    /// Time-averaged fraction of assigned memory actually used.
    pub utilized: f64,
    /// Time-averaged fraction of assigned memory left unused.
    pub fragmentation: f64,
    /// Peak bytes ever assigned.
    pub peak_alloc_bytes: u64,
}

impl FragSampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        FragSampler::default()
    }

    /// Records a snapshot with the given time weight (seconds the snapshot
    /// represents). Shapes are matched positionally across samples.
    pub fn sample(&mut self, weight: f64, usage: &[ShapeUsage]) {
        if weight <= 0.0 {
            return;
        }
        if self.shapes.len() < usage.len() {
            self.shapes.resize_with(usage.len(), ShapeAgg::default);
        }
        for (agg, u) in self.shapes.iter_mut().zip(usage) {
            if agg.label.is_empty() {
                agg.label = u.label.clone();
            }
            // Idle shapes (nothing assigned) do not contribute to the
            // average: fragmentation is only meaningful while memory is held.
            if u.allocated_bytes > 0 {
                agg.weighted_alloc += weight * u.allocated_bytes as f64;
                agg.weighted_used += weight * u.used_bytes as f64;
                agg.weight += weight;
            }
            agg.peak_alloc = agg.peak_alloc.max(u.peak_allocated_bytes);
        }
    }

    /// Per-shape rows followed by the `"All"` aggregate.
    pub fn report(&self) -> Vec<FragRow> {
        let mut rows: Vec<FragRow> = self
            .shapes
            .iter()
            .map(|a| {
                let util = if a.weighted_alloc > 0.0 {
                    a.weighted_used / a.weighted_alloc
                } else {
                    1.0
                };
                FragRow {
                    label: a.label.clone(),
                    utilized: util,
                    fragmentation: 1.0 - util,
                    peak_alloc_bytes: a.peak_alloc,
                }
            })
            .collect();
        let alloc: f64 = self.shapes.iter().map(|a| a.weighted_alloc).sum();
        let used: f64 = self.shapes.iter().map(|a| a.weighted_used).sum();
        let util = if alloc > 0.0 { used / alloc } else { 1.0 };
        rows.push(FragRow {
            label: "All".to_string(),
            utilized: util,
            fragmentation: 1.0 - util,
            peak_alloc_bytes: self.shapes.iter().map(|a| a.peak_alloc).sum(),
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slab::{SlabPool, SlabPoolConfig};

    #[test]
    fn report_matches_hand_computation() {
        let mut s = FragSampler::new();
        let usage = vec![
            ShapeUsage {
                label: "S0".into(),
                allocated_bytes: 100,
                used_bytes: 80,
                peak_allocated_bytes: 100,
            },
            ShapeUsage {
                label: "S1".into(),
                allocated_bytes: 200,
                used_bytes: 100,
                peak_allocated_bytes: 300,
            },
        ];
        s.sample(1.0, &usage);
        s.sample(1.0, &usage);
        let rows = s.report();
        assert_eq!(rows.len(), 3);
        assert!((rows[0].fragmentation - 0.2).abs() < 1e-9);
        assert!((rows[1].fragmentation - 0.5).abs() < 1e-9);
        // All: used 180 / alloc 300.
        assert!((rows[2].utilized - 0.6).abs() < 1e-9);
        assert_eq!(rows[2].peak_alloc_bytes, 400);
    }

    #[test]
    fn idle_periods_do_not_dilute() {
        let mut s = FragSampler::new();
        let busy = vec![ShapeUsage {
            label: "S0".into(),
            allocated_bytes: 100,
            used_bytes: 50,
            peak_allocated_bytes: 100,
        }];
        let idle = vec![ShapeUsage {
            label: "S0".into(),
            allocated_bytes: 0,
            used_bytes: 0,
            peak_allocated_bytes: 100,
        }];
        s.sample(1.0, &busy);
        s.sample(100.0, &idle);
        let rows = s.report();
        assert!((rows[0].fragmentation - 0.5).abs() < 1e-9);
    }

    #[test]
    fn integrates_with_slab_pool() {
        let mut pool = SlabPool::new(SlabPoolConfig {
            capacity_bytes: 64 << 20,
            slab_bytes: 16 << 20,
        });
        let k = pool.register_shape("S0", 4 << 20);
        let blocks = pool.alloc(k, 2).unwrap();
        let mut s = FragSampler::new();
        s.sample(1.0, &pool.usage());
        pool.free(k, &blocks);
        s.sample(1.0, &pool.usage());
        let rows = s.report();
        // Only the busy second counts: 8 MB used of 16 MB assigned.
        assert!((rows[0].fragmentation - 0.5).abs() < 1e-9);
    }
}
