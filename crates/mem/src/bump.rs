//! The self-managed VRAM buffer with bump allocation.
//!
//! At instance startup Aegaeon requests all the VRAM it will manage (weights
//! plus the unified GPU KV cache region) in one allocation, then hands out
//! extents by bumping a pointer. Deallocation is wholesale: resetting the
//! pointer (or rewinding to a [`BumpMark`]) frees everything allocated after
//! it in O(1), which is what removes the garbage-collection stage from the
//! auto-scaling critical path (§5.2, Figure 8).

use std::fmt;

/// A contiguous extent inside a [`BumpBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Offset from the start of the buffer.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Extent {
    /// One-past-the-end offset.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// A snapshot of the bump pointer, used to rewind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BumpMark(u64);

/// Error returned when an allocation does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes available at the time of the request.
    pub available: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bump buffer out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A bump allocator over a fixed-capacity region.
///
/// # Examples
///
/// ```
/// use aegaeon_mem::BumpBuffer;
///
/// let mut buf = BumpBuffer::new(1 << 30);
/// let weights = buf.alloc(14 << 20, 256).unwrap();
/// let mark = buf.mark();
/// let prefetched = buf.alloc(28 << 20, 256).unwrap();
/// assert!(prefetched.offset >= weights.end());
/// buf.rewind(mark); // drop the prefetched extent in O(1)
/// assert_eq!(buf.used(), weights.end());
/// ```
#[derive(Debug, Clone)]
pub struct BumpBuffer {
    capacity: u64,
    cursor: u64,
    allocs: u64,
    resets: u64,
}

impl BumpBuffer {
    /// Creates a buffer managing `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        BumpBuffer {
            capacity,
            cursor: 0,
            allocs: 0,
            resets: 0,
        }
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated (everything below the bump pointer).
    pub fn used(&self) -> u64 {
        self.cursor
    }

    /// Bytes still available.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.cursor
    }

    /// Allocates `len` bytes aligned to `align` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    pub fn alloc(&mut self, len: u64, align: u64) -> Result<Extent, OutOfMemory> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let offset = (self.cursor + align - 1) & !(align - 1);
        let end = offset.checked_add(len).ok_or(OutOfMemory {
            requested: len,
            available: self.remaining(),
        })?;
        if end > self.capacity {
            return Err(OutOfMemory {
                requested: len,
                available: self.capacity.saturating_sub(offset),
            });
        }
        self.cursor = end;
        self.allocs += 1;
        Ok(Extent { offset, len })
    }

    /// Returns true if an allocation of `len`/`align` would currently succeed.
    pub fn would_fit(&self, len: u64, align: u64) -> bool {
        let offset = (self.cursor + align - 1) & !(align - 1);
        offset.checked_add(len).is_some_and(|end| end <= self.capacity)
    }

    /// Snapshots the bump pointer.
    pub fn mark(&self) -> BumpMark {
        BumpMark(self.cursor)
    }

    /// Rewinds to a previous mark, freeing everything allocated after it.
    ///
    /// # Panics
    ///
    /// Panics if the mark is ahead of the current pointer (i.e. taken after
    /// a rewind that already invalidated it).
    pub fn rewind(&mut self, mark: BumpMark) {
        assert!(
            mark.0 <= self.cursor,
            "rewinding to a mark ({}) ahead of the cursor ({})",
            mark.0,
            self.cursor
        );
        self.cursor = mark.0;
        self.resets += 1;
    }

    /// Frees everything: the O(1) wholesale deallocation used at scale-down.
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.resets += 1;
    }

    /// Lifetime allocation count (for reporting).
    pub fn alloc_count(&self) -> u64 {
        self.allocs
    }

    /// Lifetime reset/rewind count (for reporting).
    pub fn reset_count(&self) -> u64 {
        self.resets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocations_do_not_overlap() {
        let mut b = BumpBuffer::new(1000);
        let a = b.alloc(100, 1).unwrap();
        let c = b.alloc(200, 1).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(c.offset, 100);
        assert_eq!(b.used(), 300);
    }

    #[test]
    fn alignment_is_respected() {
        let mut b = BumpBuffer::new(1024);
        b.alloc(3, 1).unwrap();
        let e = b.alloc(10, 256).unwrap();
        assert_eq!(e.offset, 256);
    }

    #[test]
    fn oom_reports_availability() {
        let mut b = BumpBuffer::new(100);
        b.alloc(60, 1).unwrap();
        let err = b.alloc(50, 1).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.available, 40);
        // The failed allocation must not move the cursor.
        assert_eq!(b.used(), 60);
    }

    #[test]
    fn rewind_frees_suffix_only() {
        let mut b = BumpBuffer::new(1000);
        let running = b.alloc(300, 1).unwrap();
        let m = b.mark();
        b.alloc(400, 1).unwrap();
        b.rewind(m);
        assert_eq!(b.used(), running.end());
        // Space is reusable after rewind.
        let again = b.alloc(400, 1).unwrap();
        assert_eq!(again.offset, 300);
    }

    #[test]
    fn reset_is_total() {
        let mut b = BumpBuffer::new(1000);
        b.alloc(999, 1).unwrap();
        b.reset();
        assert_eq!(b.used(), 0);
        assert!(b.alloc(1000, 1).is_ok());
    }

    #[test]
    fn would_fit_matches_alloc() {
        let mut b = BumpBuffer::new(128);
        assert!(b.would_fit(128, 1));
        assert!(!b.would_fit(129, 1));
        b.alloc(1, 1).unwrap();
        assert!(!b.would_fit(128, 64));
        assert!(b.would_fit(64, 64));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        let mut b = BumpBuffer::new(10);
        let _ = b.alloc(1, 3);
    }
}
