//! Move lists: deferring block reuse until transfers complete (§5.3 rule ❸).
//!
//! When KV cache blocks in the unified CPU cache are the *source* of an
//! asynchronous copy, they cannot be reallocated even after their logical
//! owner releases them — the DMA may still be reading. Aegaeon therefore
//! parks such blocks in a *move list* together with the CUDA event guarding
//! the transfer; a daemon periodically polls the events
//! (`cudaEventQuery`-style) and returns completed blocks to the allocator.
//! This removes rule-❸ synchronization from the auto-scaling critical path.
//!
//! The list is generic over the event handle type `H` so it can be unit
//! tested without the GPU fabric.

/// Blocks awaiting transfer completion, keyed by an event handle.
#[derive(Debug, Clone)]
pub struct MoveList<B, H> {
    entries: Vec<(H, Vec<B>)>,
    parked: usize,
    peak_parked: usize,
    reclaimed: u64,
}

impl<B, H> Default for MoveList<B, H> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B, H> MoveList<B, H> {
    /// Creates an empty move list.
    pub fn new() -> Self {
        MoveList {
            entries: Vec::new(),
            parked: 0,
            peak_parked: 0,
            reclaimed: 0,
        }
    }

    /// Parks `blocks` until the transfer guarded by `event` completes.
    pub fn park(&mut self, event: H, blocks: Vec<B>) {
        self.parked += blocks.len();
        self.peak_parked = self.peak_parked.max(self.parked);
        self.entries.push((event, blocks));
    }

    /// Polls all guarded transfers with `query` (true = complete) and
    /// returns every block whose transfer has finished.
    ///
    /// This is what the daemon thread runs (Figure 10, step ⑧).
    pub fn reclaim(&mut self, mut query: impl FnMut(&H) -> bool) -> Vec<B> {
        let mut out = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        for (h, blocks) in self.entries.drain(..) {
            if query(&h) {
                self.parked -= blocks.len();
                self.reclaimed += blocks.len() as u64;
                out.extend(blocks);
            } else {
                kept.push((h, blocks));
            }
        }
        self.entries = kept;
        out
    }

    /// Iterates the parked entries (event handle plus its blocks), for
    /// external accounting such as the invariant auditor.
    pub fn iter(&self) -> impl Iterator<Item = (&H, &[B])> {
        self.entries.iter().map(|(h, b)| (h, b.as_slice()))
    }

    /// Number of blocks currently parked (unavailable for allocation).
    pub fn parked(&self) -> usize {
        self.parked
    }

    /// Peak number of simultaneously parked blocks.
    pub fn peak_parked(&self) -> usize {
        self.peak_parked
    }

    /// Total blocks ever reclaimed.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// True if nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reclaim_returns_only_completed_transfers() {
        let mut ml: MoveList<u32, &'static str> = MoveList::new();
        ml.park("done", vec![1, 2, 3]);
        ml.park("pending", vec![4]);
        let got = ml.reclaim(|h| *h == "done");
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(ml.parked(), 1);
        assert!(!ml.is_empty());
        let rest = ml.reclaim(|_| true);
        assert_eq!(rest, vec![4]);
        assert!(ml.is_empty());
        assert_eq!(ml.reclaimed(), 4);
    }

    #[test]
    fn peak_parked_is_monotonic() {
        let mut ml: MoveList<u32, u32> = MoveList::new();
        ml.park(0, vec![1, 2]);
        ml.park(1, vec![3, 4, 5]);
        assert_eq!(ml.peak_parked(), 5);
        ml.reclaim(|_| true);
        assert_eq!(ml.peak_parked(), 5);
        assert_eq!(ml.parked(), 0);
    }
}
