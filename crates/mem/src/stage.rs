//! Page-locked stage buffers and the pipelined-copy time model.
//!
//! Host-to-device DMA only reaches near-peak PCIe bandwidth from page-locked
//! (pinned) memory. Aegaeon dedicates a pinned *Stage Buffer* to each GPU
//! (Figure 9: 2 GB) and streams model weights through it in a
//! multi-threaded, chunked, pipelined fashion: while chunk *k* is DMA'd to
//! the device, chunk *k+1* is memcpy'd from the pageable Model Cache into
//! the other half of the stage buffer.

/// Geometry and throughput of one GPU's stage buffer.
#[derive(Debug, Clone, Copy)]
pub struct StageBufferSpec {
    /// Total pinned bytes (split into ping/pong halves).
    pub bytes: u64,
    /// Chunk size used for the pipeline.
    pub chunk_bytes: u64,
    /// Host memcpy bandwidth into pinned memory (multi-threaded), bytes/s.
    pub host_copy_bw: f64,
}

impl StageBufferSpec {
    /// The production-like default: 2 GB buffer, 64 MB chunks, 25 GB/s
    /// multi-threaded host memcpy.
    pub fn default_spec() -> Self {
        StageBufferSpec {
            bytes: 2 << 30,
            chunk_bytes: 64 << 20,
            host_copy_bw: 25e9,
        }
    }
}

/// Time for a chunked, pipelined host→device copy of `total_bytes`.
///
/// The pipeline overlaps the host-side staging memcpy with the DMA: steady
/// state is limited by the slower stage, plus one chunk of fill latency for
/// the faster stage.
///
/// `dma_bw` is the bandwidth the DMA stage actually obtains (the caller
/// derives it from the PCIe link, possibly shared).
///
/// # Examples
///
/// ```
/// use aegaeon_mem::{pipelined_copy_time, StageBufferSpec};
///
/// let spec = StageBufferSpec::default_spec();
/// // 26 GB (a 13B model) at 25.6 GB/s effective DMA:
/// let t = pipelined_copy_time(26_000_000_000, &spec, 25.6e9);
/// assert!(t > 26.0 / 25.6 && t < 26.0 / 25.6 * 1.1);
/// ```
pub fn pipelined_copy_time(total_bytes: u64, spec: &StageBufferSpec, dma_bw: f64) -> f64 {
    assert!(dma_bw > 0.0 && spec.host_copy_bw > 0.0);
    if total_bytes == 0 {
        return 0.0;
    }
    let chunk = spec.chunk_bytes.min(total_bytes) as f64;
    let total = total_bytes as f64;
    let bottleneck = spec.host_copy_bw.min(dma_bw);
    // Fill: the first chunk must be staged before any DMA starts. Drain and
    // steady state proceed at the bottleneck rate.
    chunk / spec.host_copy_bw + total / bottleneck.min(dma_bw) + chunk / dma_bw
        - chunk / bottleneck
}

/// Effective-bandwidth penalty when the pinned stage buffer is unavailable
/// (fault injection: staging-buffer OOM) and the copy falls back to pageable
/// host memory. Pageable DMA bounces through an internal driver buffer, so
/// it reaches roughly a third of pinned throughput.
pub const UNPINNED_FALLBACK_EFFICIENCY: f64 = 0.35;

/// Time for a host→device copy while the stage buffer is exhausted: the
/// pipeline cannot run, so the copy degrades to sequential pageable DMA at
/// [`UNPINNED_FALLBACK_EFFICIENCY`] of the link rate, with no host-side
/// overlap to hide the staging memcpy.
pub fn unpinned_copy_time(total_bytes: u64, spec: &StageBufferSpec, dma_bw: f64) -> f64 {
    assert!(dma_bw > 0.0 && spec.host_copy_bw > 0.0);
    if total_bytes == 0 {
        return 0.0;
    }
    let total = total_bytes as f64;
    total / spec.host_copy_bw + total / (dma_bw * UNPINNED_FALLBACK_EFFICIENCY)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> StageBufferSpec {
        StageBufferSpec {
            bytes: 2 << 30,
            chunk_bytes: 64 << 20,
            host_copy_bw: 25e9,
        }
    }

    #[test]
    fn small_copy_is_dominated_by_fill() {
        let s = spec();
        let t = pipelined_copy_time(64 << 20, &s, 32e9);
        // One chunk: staging + DMA in sequence.
        let expect = (64 << 20) as f64 / 25e9 + (64 << 20) as f64 / 32e9;
        assert!((t - expect).abs() / expect < 1e-9, "t={t} expect={expect}");
    }

    #[test]
    fn large_copy_approaches_bottleneck_bandwidth() {
        let s = spec();
        let total: u64 = 26_000_000_000;
        let t = pipelined_copy_time(total, &s, 25.6e9);
        let ideal = total as f64 / 25e9; // host memcpy is the bottleneck here
        assert!(t >= ideal);
        assert!(t < ideal * 1.05, "pipeline overhead too large: {t} vs {ideal}");
    }

    #[test]
    fn faster_dma_shifts_bottleneck_to_host() {
        let s = spec();
        let slow = pipelined_copy_time(1 << 30, &s, 10e9);
        let fast = pipelined_copy_time(1 << 30, &s, 100e9);
        assert!(slow > fast);
        // Beyond the host bandwidth, more DMA speed barely helps.
        let faster = pipelined_copy_time(1 << 30, &s, 200e9);
        assert!((fast - faster) / fast < 0.05);
    }

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(pipelined_copy_time(0, &spec(), 32e9), 0.0);
        assert_eq!(unpinned_copy_time(0, &spec(), 32e9), 0.0);
    }

    #[test]
    fn unpinned_fallback_is_strictly_slower() {
        let s = spec();
        for &bytes in &[64u64 << 20, 1 << 30, 26_000_000_000] {
            let pinned = pipelined_copy_time(bytes, &s, 32e9);
            let fallback = unpinned_copy_time(bytes, &s, 32e9);
            assert!(
                fallback > pinned * 1.5,
                "fallback {fallback} not much slower than pinned {pinned} for {bytes} bytes"
            );
        }
    }
}
