//! Slab allocation for the unified KV caches.
//!
//! The KV cache shape — and therefore the natural block size — varies across
//! models (Table 1: 128 KB to 2560 KB per token). Pre-allocating fixed pools
//! per shape would fragment badly, so Aegaeon divides each cache region
//! (VRAM or DRAM) into fixed-size *slabs*; each slab is dynamically assigned
//! to one shape and serves as a pool of that shape's blocks. Allocation
//! prefers free blocks in already-assigned slabs, acquiring fresh slabs only
//! when needed; a slab whose last block is freed returns to the shared free
//! list and can be re-assigned to any shape (§5.2, Figure 9 bottom).

use std::fmt;

/// A registered KV-cache shape class within one [`SlabPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeKey(pub u32);

/// A block handle: slab index plus block index within the slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockRef {
    /// Slab index within the pool.
    pub slab: u32,
    /// Block index within the slab.
    pub index: u32,
}

/// Pool geometry.
#[derive(Debug, Clone, Copy)]
pub struct SlabPoolConfig {
    /// Total bytes managed by the pool.
    pub capacity_bytes: u64,
    /// Size of each slab; the fragmentation/management-overhead knob.
    pub slab_bytes: u64,
}

/// Error: the pool cannot satisfy a block allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabExhausted {
    /// Shape that failed to allocate.
    pub shape: ShapeKey,
    /// Blocks requested.
    pub requested: usize,
    /// Blocks that were available for this shape (free blocks plus blocks
    /// materializable from free slabs).
    pub available: usize,
}

impl fmt::Display for SlabExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slab pool exhausted for shape {:?}: requested {} blocks, {} available",
            self.shape, self.requested, self.available
        )
    }
}

impl std::error::Error for SlabExhausted {}

#[derive(Debug, Clone)]
struct ShapeInfo {
    label: String,
    block_bytes: u64,
    blocks_per_slab: u32,
    slabs: Vec<u32>,
    free_blocks: Vec<BlockRef>,
    used_blocks: u64,
    peak_slab_bytes: u64,
}

#[derive(Debug, Clone)]
struct Slab {
    shape: Option<ShapeKey>,
    used: u32,
}

/// Per-shape usage snapshot (drives the Figure 16 fragmentation report).
#[derive(Debug, Clone)]
pub struct ShapeUsage {
    /// Shape label given at registration.
    pub label: String,
    /// Bytes in slabs currently assigned to the shape.
    pub allocated_bytes: u64,
    /// Bytes in blocks currently in use.
    pub used_bytes: u64,
    /// Peak bytes ever assigned to the shape.
    pub peak_allocated_bytes: u64,
}

impl ShapeUsage {
    /// Unused fraction of the currently assigned memory (0 when nothing is
    /// assigned).
    pub fn fragmentation(&self) -> f64 {
        if self.allocated_bytes == 0 {
            0.0
        } else {
            1.0 - self.used_bytes as f64 / self.allocated_bytes as f64
        }
    }
}

/// A multi-shape slab allocator.
///
/// # Examples
///
/// ```
/// use aegaeon_mem::{SlabPool, SlabPoolConfig};
///
/// let mut pool = SlabPool::new(SlabPoolConfig {
///     capacity_bytes: 64 << 20,
///     slab_bytes: 16 << 20,
/// });
/// let qwen = pool.register_shape("qwen-7b", 512 * 1024 * 16); // 16-token blocks
/// let blocks = pool.alloc(qwen, 3).unwrap();
/// assert_eq!(blocks.len(), 3);
/// pool.free(qwen, &blocks);
/// assert_eq!(pool.slabs_in_use(), 0); // empty slab reclaimed
/// ```
#[derive(Debug, Clone)]
pub struct SlabPool {
    cfg: SlabPoolConfig,
    shapes: Vec<ShapeInfo>,
    slabs: Vec<Slab>,
    free_slabs: Vec<u32>,
}

impl SlabPool {
    /// Creates a pool; the capacity is rounded down to whole slabs.
    ///
    /// # Panics
    ///
    /// Panics if `slab_bytes` is zero.
    pub fn new(cfg: SlabPoolConfig) -> Self {
        assert!(cfg.slab_bytes > 0, "slab size must be positive");
        let n = (cfg.capacity_bytes / cfg.slab_bytes) as u32;
        SlabPool {
            cfg,
            shapes: Vec::new(),
            slabs: (0..n)
                .map(|_| Slab {
                    shape: None,
                    used: 0,
                })
                .collect(),
            free_slabs: (0..n).rev().collect(),
        }
    }

    /// Registers a shape class with the given block size.
    ///
    /// # Panics
    ///
    /// Panics if a block does not fit in one slab.
    pub fn register_shape(&mut self, label: impl Into<String>, block_bytes: u64) -> ShapeKey {
        assert!(
            block_bytes > 0 && block_bytes <= self.cfg.slab_bytes,
            "block size must be in (0, slab_bytes]"
        );
        let blocks_per_slab = (self.cfg.slab_bytes / block_bytes) as u32;
        let key = ShapeKey(self.shapes.len() as u32);
        self.shapes.push(ShapeInfo {
            label: label.into(),
            block_bytes,
            blocks_per_slab,
            slabs: Vec::new(),
            free_blocks: Vec::new(),
            used_blocks: 0,
            peak_slab_bytes: 0,
        });
        key
    }

    /// Allocates `n` blocks of `shape`, acquiring fresh slabs as needed.
    ///
    /// On failure the pool is left unchanged.
    pub fn alloc(&mut self, shape: ShapeKey, n: usize) -> Result<Vec<BlockRef>, SlabExhausted> {
        let si = shape.0 as usize;
        let (free_now, per_slab) = {
            let s = &self.shapes[si];
            (s.free_blocks.len(), s.blocks_per_slab as usize)
        };
        let available = free_now + self.free_slabs.len() * per_slab;
        if n > available {
            return Err(SlabExhausted {
                shape,
                requested: n,
                available,
            });
        }
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            if let Some(b) = self.shapes[si].free_blocks.pop() {
                self.slabs[b.slab as usize].used += 1;
                self.shapes[si].used_blocks += 1;
                out.push(b);
            } else {
                let slab_idx = self
                    .free_slabs
                    .pop()
                    .expect("availability was pre-checked");
                self.assign_slab(slab_idx, shape);
            }
        }
        Ok(out)
    }

    /// Frees blocks back to their shape; slabs that become empty return to
    /// the shared free list immediately.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on double free or on freeing a block whose
    /// slab is not assigned to `shape`.
    pub fn free(&mut self, shape: ShapeKey, blocks: &[BlockRef]) {
        let si = shape.0 as usize;
        let mut emptied: Vec<u32> = Vec::new();
        for &b in blocks {
            let slab = &mut self.slabs[b.slab as usize];
            debug_assert_eq!(
                slab.shape,
                Some(shape),
                "freeing block {b:?} into the wrong shape"
            );
            debug_assert!(slab.used > 0, "double free of {b:?}");
            slab.used -= 1;
            self.shapes[si].used_blocks -= 1;
            self.shapes[si].free_blocks.push(b);
            if slab.used == 0 {
                emptied.push(b.slab);
            }
        }
        for slab_idx in emptied {
            // A freed slab may have been refilled by an interleaved alloc of
            // the same call? No allocation happens during `free`, but the
            // same slab can appear twice in `emptied` only if `blocks` holds
            // duplicates, which the double-free assert rejects.
            if self.slabs[slab_idx as usize].used == 0 {
                self.unassign_slab(slab_idx, shape);
            }
        }
    }

    fn assign_slab(&mut self, slab_idx: u32, shape: ShapeKey) {
        let si = shape.0 as usize;
        let s = &mut self.shapes[si];
        self.slabs[slab_idx as usize].shape = Some(shape);
        s.slabs.push(slab_idx);
        for i in 0..s.blocks_per_slab {
            s.free_blocks.push(BlockRef {
                slab: slab_idx,
                index: i,
            });
        }
        let assigned = s.slabs.len() as u64 * self.cfg.slab_bytes;
        s.peak_slab_bytes = s.peak_slab_bytes.max(assigned);
    }

    fn unassign_slab(&mut self, slab_idx: u32, shape: ShapeKey) {
        let si = shape.0 as usize;
        let s = &mut self.shapes[si];
        s.free_blocks.retain(|b| b.slab != slab_idx);
        s.slabs.retain(|&x| x != slab_idx);
        self.slabs[slab_idx as usize].shape = None;
        self.free_slabs.push(slab_idx);
    }

    /// Number of slabs currently assigned to any shape.
    pub fn slabs_in_use(&self) -> usize {
        self.slabs.len() - self.free_slabs.len()
    }

    /// Total slab count.
    pub fn total_slabs(&self) -> usize {
        self.slabs.len()
    }

    /// Free blocks currently materialized for `shape` plus blocks obtainable
    /// from free slabs.
    pub fn available_blocks(&self, shape: ShapeKey) -> usize {
        let s = &self.shapes[shape.0 as usize];
        s.free_blocks.len() + self.free_slabs.len() * s.blocks_per_slab as usize
    }

    /// Blocks of `shape` currently in use.
    pub fn used_blocks(&self, shape: ShapeKey) -> u64 {
        self.shapes[shape.0 as usize].used_blocks
    }

    /// Total bytes in blocks currently in use across every shape.
    ///
    /// Allocation-free (unlike [`usage`](Self::usage)), so the telemetry
    /// poller can read it every sampling interval.
    pub fn total_used_bytes(&self) -> u64 {
        self.shapes.iter().map(|s| s.used_blocks * s.block_bytes).sum()
    }

    /// Total bytes in slabs currently assigned to any shape.
    pub fn total_allocated_bytes(&self) -> u64 {
        self.slabs_in_use() as u64 * self.cfg.slab_bytes
    }

    /// Usage snapshot for every registered shape (Figure 16 input).
    pub fn usage(&self) -> Vec<ShapeUsage> {
        self.shapes
            .iter()
            .map(|s| ShapeUsage {
                label: s.label.clone(),
                allocated_bytes: s.slabs.len() as u64 * self.cfg.slab_bytes,
                used_bytes: s.used_blocks * s.block_bytes,
                peak_allocated_bytes: s.peak_slab_bytes,
            })
            .collect()
    }

    /// Block size of a registered shape.
    pub fn block_bytes(&self, shape: ShapeKey) -> u64 {
        self.shapes[shape.0 as usize].block_bytes
    }

    /// Checks the pool's internal bookkeeping; returns a description of the
    /// first inconsistency, or `None` when every invariant holds.
    ///
    /// Invariants: free and assigned slab sets are disjoint and together
    /// cover the pool; per-slab used counts agree with per-shape used-block
    /// totals; used + free blocks never exceed the capacity of the slabs
    /// assigned to the shape; free-block handles point into slabs owned by
    /// their shape.
    pub fn audit(&self) -> Option<String> {
        let mut seen = vec![false; self.slabs.len()];
        for &idx in &self.free_slabs {
            let i = idx as usize;
            if seen[i] {
                return Some(format!("slab {idx} appears twice in the free list"));
            }
            seen[i] = true;
            if self.slabs[i].shape.is_some() || self.slabs[i].used != 0 {
                return Some(format!("free slab {idx} is still assigned or in use"));
            }
        }
        for (key, s) in self.shapes.iter().enumerate() {
            let shape = ShapeKey(key as u32);
            let mut used_sum = 0u64;
            for &idx in &s.slabs {
                let i = idx as usize;
                if seen[i] {
                    return Some(format!("slab {idx} owned by two shapes or also free"));
                }
                seen[i] = true;
                if self.slabs[i].shape != Some(shape) {
                    return Some(format!(
                        "shape {} lists slab {idx} but the slab belongs to {:?}",
                        s.label, self.slabs[i].shape
                    ));
                }
                used_sum += self.slabs[i].used as u64;
            }
            if used_sum != s.used_blocks {
                return Some(format!(
                    "shape {}: per-slab used sum {} != used_blocks {}",
                    s.label, used_sum, s.used_blocks
                ));
            }
            let cap = s.slabs.len() as u64 * s.blocks_per_slab as u64;
            if s.used_blocks + s.free_blocks.len() as u64 != cap {
                return Some(format!(
                    "shape {}: used {} + free {} != assigned capacity {}",
                    s.label,
                    s.used_blocks,
                    s.free_blocks.len(),
                    cap
                ));
            }
            for b in &s.free_blocks {
                if self.slabs[b.slab as usize].shape != Some(shape) {
                    return Some(format!(
                        "shape {}: free block {b:?} lives in a foreign slab",
                        s.label
                    ));
                }
                if b.index >= s.blocks_per_slab {
                    return Some(format!(
                        "shape {}: free block {b:?} out of slab range",
                        s.label
                    ));
                }
            }
        }
        if let Some(idx) = seen.iter().position(|&s| !s) {
            return Some(format!("slab {idx} is neither free nor assigned"));
        }
        None
    }

    /// Pool configuration.
    pub fn config(&self) -> SlabPoolConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity_mb: u64, slab_mb: u64) -> SlabPool {
        SlabPool::new(SlabPoolConfig {
            capacity_bytes: capacity_mb << 20,
            slab_bytes: slab_mb << 20,
        })
    }

    #[test]
    fn alloc_prefers_existing_slabs() {
        let mut p = pool(64, 16);
        let k = p.register_shape("a", 1 << 20);
        let b1 = p.alloc(k, 3).unwrap();
        assert_eq!(p.slabs_in_use(), 1);
        let _b2 = p.alloc(k, 10).unwrap();
        assert_eq!(p.slabs_in_use(), 1, "16 blocks fit in one 16 MB slab");
        let _b3 = p.alloc(k, 4).unwrap();
        assert_eq!(p.slabs_in_use(), 2);
        p.free(k, &b1);
        assert_eq!(p.slabs_in_use(), 2, "partially used slabs stay assigned");
    }

    #[test]
    fn empty_slab_is_reclaimed_and_reassignable() {
        let mut p = pool(16, 16);
        let a = p.register_shape("a", 4 << 20);
        let b = p.register_shape("b", 2 << 20);
        let ba = p.alloc(a, 4).unwrap();
        assert!(p.alloc(b, 1).is_err(), "single slab is owned by shape a");
        p.free(a, &ba);
        assert_eq!(p.slabs_in_use(), 0);
        assert!(p.alloc(b, 8).is_ok(), "slab reassigned to shape b");
    }

    #[test]
    fn failed_alloc_leaves_pool_unchanged() {
        let mut p = pool(32, 16);
        let k = p.register_shape("a", 1 << 20);
        let got = p.alloc(k, 20).unwrap();
        let err = p.alloc(k, 13).unwrap_err();
        assert_eq!(err.available, 12);
        assert_eq!(p.used_blocks(k), 20);
        assert_eq!(got.len(), 20);
        assert_eq!(p.available_blocks(k), 12);
    }

    #[test]
    fn blocks_are_never_double_allocated() {
        let mut p = pool(64, 8);
        let a = p.register_shape("a", 1 << 20);
        let b = p.register_shape("b", 3 << 20);
        let mut live = std::collections::HashSet::new();
        let xa = p.alloc(a, 10).unwrap();
        let xb = p.alloc(b, 5).unwrap();
        for blk in xa.iter().chain(xb.iter()) {
            assert!(live.insert(*blk), "duplicate block {blk:?}");
        }
        p.free(a, &xa[..5]);
        let ya = p.alloc(a, 5).unwrap();
        for blk in &ya {
            assert!(!xa[5..].contains(blk), "reissued a live block");
        }
    }

    #[test]
    fn usage_reports_fragmentation() {
        let mut p = pool(64, 16);
        let k = p.register_shape("qwen", 4 << 20);
        let blocks = p.alloc(k, 1).unwrap();
        let u = &p.usage()[0];
        assert_eq!(u.allocated_bytes, 16 << 20);
        assert_eq!(u.used_bytes, 4 << 20);
        assert!((u.fragmentation() - 0.75).abs() < 1e-9);
        p.free(k, &blocks);
        let u = &p.usage()[0];
        assert_eq!(u.fragmentation(), 0.0);
        assert_eq!(u.peak_allocated_bytes, 16 << 20);
    }

    #[test]
    fn capacity_rounds_down_to_whole_slabs() {
        let p = SlabPool::new(SlabPoolConfig {
            capacity_bytes: 100,
            slab_bytes: 30,
        });
        assert_eq!(p.total_slabs(), 3);
    }

    #[test]
    fn audit_accepts_every_reachable_state() {
        let mut p = pool(64, 8);
        assert!(p.audit().is_none());
        let a = p.register_shape("a", 1 << 20);
        let b = p.register_shape("b", 3 << 20);
        let xa = p.alloc(a, 10).unwrap();
        let xb = p.alloc(b, 5).unwrap();
        assert!(p.audit().is_none(), "{:?}", p.audit());
        p.free(a, &xa[..7]);
        assert!(p.audit().is_none(), "{:?}", p.audit());
        p.free(b, &xb);
        p.free(a, &xa[7..]);
        assert!(p.audit().is_none(), "{:?}", p.audit());
        assert_eq!(p.slabs_in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn oversized_block_panics() {
        let mut p = pool(16, 16);
        let _ = p.register_shape("huge", 17 << 20);
    }
}
