//! Explicit memory management (§5.2 of the paper).
//!
//! Preemptive auto-scaling initializes model weights back-to-back on the same
//! GPU and stores offloaded KV cache of many different shapes in host memory.
//! Left to a general-purpose caching allocator, both cause fragmentation: the
//! paper reports multi-second garbage-collection passes on VRAM and poor host
//! caching efficiency. Aegaeon instead manages memory explicitly:
//!
//! * [`BumpBuffer`] — the self-managed VRAM buffer: one up-front allocation,
//!   bump allocation within it, O(1) wholesale deallocation by pointer reset,
//!   and a mark/rewind facility used by model prefetching.
//! * [`SlabPool`] — the unified KV cache: a region divided into fixed-size
//!   slabs, each dynamically assigned to one KV-cache *shape* and serving as
//!   a pool of fixed-size blocks for that shape; empty slabs return to the
//!   shared free list. Used for both the GPU and the CPU unified caches.
//! * [`ModelCache`] — the shared host-DRAM cache of raw model checkpoints
//!   with LRU eviction and pinning.
//! * [`MoveList`] — the §5.3 "unsafe section" ledger: blocks whose transfers
//!   are still in flight are excluded from reuse until a daemon observes the
//!   transfer events complete.
//! * [`FragSampler`] — time-averaged fragmentation accounting (Figure 16).
//!
//! All sizes are simulated byte counts; no real memory is allocated. The
//! allocator logic (placement, reuse, reclamation) is the real algorithm.

pub mod bump;
pub mod frag;
pub mod model_cache;
pub mod movelist;
pub mod slab;
pub mod stage;

pub use bump::{BumpBuffer, BumpMark, Extent, OutOfMemory};
pub use frag::FragSampler;
pub use model_cache::ModelCache;
pub use movelist::MoveList;
pub use slab::{BlockRef, ShapeKey, SlabPool, SlabPoolConfig};
pub use stage::{
    pipelined_copy_time, unpinned_copy_time, StageBufferSpec, UNPINNED_FALLBACK_EFFICIENCY,
};
