//! The shared host-DRAM Model Cache.
//!
//! Raw tensor chunks of model checkpoints are cached in a shared host-memory
//! region (Figure 9: "Model Cache, 640 GB") so that scale-ups hit DRAM
//! instead of the remote registry. Eviction is LRU; models currently being
//! loaded onto a GPU are pinned and cannot be evicted.

use std::collections::HashMap;

/// LRU cache of model weights in host memory.
///
/// Keys are caller-chosen `u32` model identifiers.
///
/// # Examples
///
/// ```
/// use aegaeon_mem::ModelCache;
///
/// let mut cache = ModelCache::new(40);
/// assert!(cache.insert(0, 26).is_ok());
/// assert!(cache.insert(1, 14).is_ok());
/// assert!(cache.contains(0));
/// // Inserting a third model evicts the least recently used one.
/// cache.touch(0);
/// assert!(cache.insert(2, 14).is_ok());
/// assert!(!cache.contains(1));
/// assert!(cache.contains(0));
/// ```
#[derive(Debug, Clone)]
pub struct ModelCache {
    capacity: u64,
    used: u64,
    entries: HashMap<u32, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    bytes: u64,
    last_use: u64,
    pins: u32,
}

/// Error: a model cannot be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheFull {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes that could be made free by evicting all unpinned entries.
    pub reclaimable: u64,
}

impl std::fmt::Display for CacheFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model cache full: need {} bytes, only {} reclaimable",
            self.requested, self.reclaimable
        )
    }
}

impl std::error::Error for CacheFull {}

impl ModelCache {
    /// Creates a cache with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        ModelCache {
            capacity,
            used: 0,
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// True if `model` is resident. Does not update recency.
    pub fn contains(&self, model: u32) -> bool {
        self.entries.contains_key(&model)
    }

    /// Looks `model` up, updating recency and hit/miss statistics.
    pub fn lookup(&mut self, model: u32) -> bool {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&model) {
            e.last_use = self.clock;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Marks `model` as recently used.
    pub fn touch(&mut self, model: u32) {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&model) {
            e.last_use = self.clock;
        }
    }

    /// Inserts `model` (`bytes` large), evicting LRU unpinned entries as
    /// needed. Inserting a resident model only refreshes recency.
    pub fn insert(&mut self, model: u32, bytes: u64) -> Result<(), CacheFull> {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&model) {
            e.last_use = self.clock;
            return Ok(());
        }
        let reclaimable: u64 = self.capacity - self.used
            + self
                .entries
                .values()
                .filter(|e| e.pins == 0)
                .map(|e| e.bytes)
                .sum::<u64>();
        if bytes > reclaimable {
            return Err(CacheFull {
                requested: bytes,
                reclaimable,
            });
        }
        while self.used + bytes > self.capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| e.pins == 0)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(&k, _)| k)
                .expect("reclaimable check guarantees an unpinned victim");
            let e = self.entries.remove(&victim).expect("victim exists");
            self.used -= e.bytes;
            self.evictions += 1;
        }
        self.used += bytes;
        self.entries.insert(
            model,
            Entry {
                bytes,
                last_use: self.clock,
                pins: 0,
            },
        );
        Ok(())
    }

    /// Pins a resident model against eviction (reference counted).
    ///
    /// Returns false if the model is not resident.
    pub fn pin(&mut self, model: u32) -> bool {
        if let Some(e) = self.entries.get_mut(&model) {
            e.pins += 1;
            true
        } else {
            false
        }
    }

    /// Releases one pin.
    ///
    /// # Panics
    ///
    /// Panics if the model is not resident or not pinned.
    pub fn unpin(&mut self, model: u32) {
        let e = self
            .entries
            .get_mut(&model)
            .expect("unpinning a non-resident model");
        assert!(e.pins > 0, "unpin without matching pin");
        e.pins -= 1;
    }

    /// Bytes in use.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// `(hits, misses, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Hit ratio over all lookups (1.0 when no lookups were made).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        let mut c = ModelCache::new(30);
        c.insert(1, 10).unwrap();
        c.insert(2, 10).unwrap();
        c.insert(3, 10).unwrap();
        c.touch(1); // order now: 2 (oldest), 3, 1
        c.insert(4, 15).unwrap(); // evicts 2 and 3
        assert!(!c.contains(2));
        assert!(!c.contains(3));
        assert!(c.contains(1));
        assert!(c.contains(4));
        assert_eq!(c.stats().2, 2);
    }

    #[test]
    fn pinned_models_survive_eviction() {
        let mut c = ModelCache::new(20);
        c.insert(1, 10).unwrap();
        c.insert(2, 10).unwrap();
        assert!(c.pin(1));
        c.touch(2);
        // 1 is LRU but pinned; 2 must be evicted instead.
        c.insert(3, 10).unwrap();
        assert!(c.contains(1));
        assert!(!c.contains(2));
        c.unpin(1);
    }

    #[test]
    fn insert_fails_when_pins_block_reclaim() {
        let mut c = ModelCache::new(20);
        c.insert(1, 15).unwrap();
        c.pin(1);
        let err = c.insert(2, 10).unwrap_err();
        assert_eq!(err.reclaimable, 5);
        c.unpin(1);
        assert!(c.insert(2, 10).is_ok());
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let mut c = ModelCache::new(20);
        c.insert(1, 10).unwrap();
        c.insert(1, 10).unwrap();
        assert_eq!(c.used(), 10);
    }

    #[test]
    fn hit_ratio_tracks_lookups() {
        let mut c = ModelCache::new(20);
        c.insert(1, 10).unwrap();
        assert!(c.lookup(1));
        assert!(!c.lookup(2));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-9);
    }
}
