//! GPU device specifications.
//!
//! The numbers below are public datasheet values; the `mfu` / `membw_eff`
//! efficiency factors are the fractions of peak that serving kernels
//! realistically achieve and are the main calibration knobs of the
//! reproduction (absolute latencies scale with them; the comparative shapes
//! in the evaluation do not).

/// Capacity and throughput of one GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"H800"`.
    pub name: String,
    /// VRAM capacity in bytes.
    pub vram_bytes: u64,
    /// Peak dense FP16 tensor throughput, FLOP/s.
    pub fp16_flops: f64,
    /// Peak HBM bandwidth, bytes/s.
    pub hbm_bw: f64,
    /// Fraction of peak FLOP/s achieved by prefill-style GEMMs.
    pub mfu: f64,
    /// Fraction of peak HBM bandwidth achieved by decode-style kernels.
    pub membw_eff: f64,
    /// PCIe host link bandwidth per direction, bytes/s.
    pub pcie_bw: f64,
    /// NVLink bandwidth to peers within the node, bytes/s (0 if absent).
    pub nvlink_bw: f64,
}

impl GpuSpec {
    /// NVIDIA H800 80 GB (the paper's main testbed, §7.1).
    pub fn h800() -> GpuSpec {
        GpuSpec {
            name: "H800".into(),
            vram_bytes: 80 << 30,
            fp16_flops: 989e12,
            hbm_bw: 3.35e12,
            mfu: 0.40,
            membw_eff: 0.65,
            // The paper quotes PCIe 4.0 numbers (32 GB/s) for loading.
            pcie_bw: 32e9,
            nvlink_bw: 200e9,
        }
    }

    /// NVIDIA H20 96 GB (the production deployment, §7.5).
    pub fn h20() -> GpuSpec {
        GpuSpec {
            name: "H20".into(),
            vram_bytes: 96 << 30,
            fp16_flops: 148e12,
            hbm_bw: 4.0e12,
            mfu: 0.40,
            membw_eff: 0.65,
            pcie_bw: 32e9,
            nvlink_bw: 450e9,
        }
    }

    /// NVIDIA A10 24 GB (the lower-end sensitivity study, §7.4).
    pub fn a10() -> GpuSpec {
        GpuSpec {
            name: "A10".into(),
            vram_bytes: 24 << 30,
            fp16_flops: 125e12,
            hbm_bw: 600e9,
            mfu: 0.35,
            membw_eff: 0.60,
            pcie_bw: 32e9,
            nvlink_bw: 0.0,
        }
    }

    /// NVIDIA A100 80 GB (used in the paper's §2.3 memory-capacity example).
    pub fn a100() -> GpuSpec {
        GpuSpec {
            name: "A100".into(),
            vram_bytes: 80 << 30,
            fp16_flops: 312e12,
            hbm_bw: 2.0e12,
            mfu: 0.40,
            membw_eff: 0.65,
            pcie_bw: 32e9,
            nvlink_bw: 300e9,
        }
    }

    /// Effective FLOP/s for compute-bound (prefill) work.
    pub fn effective_flops(&self) -> f64 {
        self.fp16_flops * self.mfu
    }

    /// Effective bytes/s for bandwidth-bound (decode) work.
    pub fn effective_hbm_bw(&self) -> f64 {
        self.hbm_bw * self.membw_eff
    }

    /// On-device copy bandwidth (device-to-device within one GPU), bytes/s.
    /// Reads and writes both traverse HBM, so roughly half the bandwidth.
    pub fn device_copy_bw(&self) -> f64 {
        self.hbm_bw / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for g in [GpuSpec::h800(), GpuSpec::h20(), GpuSpec::a10(), GpuSpec::a100()] {
            assert!(g.vram_bytes >= 24 << 30, "{}", g.name);
            assert!(g.effective_flops() > 0.0 && g.effective_flops() < g.fp16_flops);
            assert!(g.effective_hbm_bw() > 0.0 && g.effective_hbm_bw() < g.hbm_bw);
            assert!(g.pcie_bw > 0.0);
        }
    }

    #[test]
    fn paper_memory_example_holds() {
        // §2.3: "at most two 14B models with FP16 weights fit on an A100
        // 80GB". Engines leave ~10% of VRAM for activations and tensor-lib
        // scratch (§5.2), so compare against the usable fraction.
        let a100 = GpuSpec::a100();
        let usable = (a100.vram_bytes as f64 * 0.9) as u64;
        let weights_14b = 14_000_000_000u64 * 2;
        assert!(2 * weights_14b < usable);
        assert!(3 * weights_14b > usable);
    }

    #[test]
    fn h800_pcie_matches_paper_quote() {
        // §4.2: "scaling up a 13B model via PCIe 4.0 takes at least
        // 26GB/32GBps = 0.8125 seconds".
        let g = GpuSpec::h800();
        let t = 26e9 / g.pcie_bw;
        assert!((t - 0.8125).abs() < 1e-3);
    }
}
