//! Streams, events and links: the CUDA-like execution substrate.
//!
//! A [`Fabric`] owns every link and stream in the cluster and advances them
//! in virtual time. Users submit [`StreamOp`]s to streams; ops execute in
//! FIFO order per stream (CUDA stream semantics). Completions carry the
//! caller-provided tag `T`, which is how the serving systems learn that a
//! prefill step finished or a KV block transfer landed.
//!
//! Synchronization reproduces Table 2 of the paper:
//!
//! | CUDA API                  | Fabric equivalent                  |
//! |---------------------------|------------------------------------|
//! | `cudaEventRecord`         | [`Fabric::record_event`]           |
//! | `cudaEventQuery`          | [`Fabric::query_event`]            |
//! | `cudaStreamWaitEvent`     | [`Fabric::wait_event`]             |
//! | `cudaIpcGet/OpenEventHandle` | [`EventId`] is globally valid   |

use std::collections::{HashMap, VecDeque};

use aegaeon_sim::{FairLink, FlowId, SimDur, SimTime, Timeline};

/// Identifies a link (one direction of an interconnect channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Identifies a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// Identifies a CUDA-like event. Valid fabric-wide (IPC-shareable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

/// An operation submitted to a stream.
#[derive(Debug, Clone)]
pub enum StreamOp<T> {
    /// Occupies the stream for a fixed duration (kernels, GC passes, …).
    Compute {
        /// Execution time.
        dur: SimDur,
        /// Completion tag.
        tag: T,
    },
    /// Transfers `bytes` over `link`, contending with other flows.
    Copy {
        /// The link to use.
        link: LinkId,
        /// Transfer size.
        bytes: u64,
        /// Completion tag.
        tag: T,
    },
    /// Fires `event` once all prior work in the stream has completed
    /// (`cudaEventRecord`).
    RecordEvent {
        /// The event to fire.
        event: EventId,
    },
    /// Blocks the stream until `event` fires (`cudaStreamWaitEvent`).
    WaitEvent {
        /// The event to wait for.
        event: EventId,
    },
    /// Completes instantly once reached; useful as a completion callback.
    Marker {
        /// Completion tag.
        tag: T,
    },
}

/// Events the fabric schedules on the simulation timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricEvent {
    /// A fair-share link's earliest completion timer.
    LinkTimer {
        /// Link index.
        link: u32,
        /// Generation guarding against staleness.
        gen: u64,
    },
    /// A compute op finished.
    OpDone {
        /// Stream index.
        stream: u32,
        /// Token guarding against staleness.
        token: u64,
    },
}

/// What the fabric reports back to the orchestrator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion<T> {
    /// A tagged op (compute/copy/marker) finished on `stream`.
    Op {
        /// The stream it ran on.
        stream: StreamId,
        /// The tag supplied at submission.
        tag: T,
    },
    /// An event fired.
    Event {
        /// The event.
        event: EventId,
    },
}

#[derive(Debug)]
enum Running {
    Idle,
    Compute { token: u64 },
    Copy { link: u32, flow: FlowId },
    Parked { event: u32 },
}

#[derive(Debug)]
struct Stream<T> {
    label: String,
    queue: VecDeque<StreamOp<T>>,
    state: Running,
    current_tag: Option<T>,
    op_started: SimTime,
    compute_busy: SimDur,
    copy_busy: SimDur,
}

#[derive(Debug)]
struct EventSlot {
    fired: bool,
    waiters: Vec<u32>,
}

/// The cluster-wide execution fabric.
///
/// `T` is the completion tag type chosen by the orchestrator.
#[derive(Debug)]
pub struct Fabric<T> {
    links: Vec<FairLink>,
    streams: Vec<Stream<T>>,
    events: Vec<EventSlot>,
    flow_owner: HashMap<(u32, FlowId), u32>,
    token: u64,
}

impl<T: Clone> Default for Fabric<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Fabric<T> {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        Fabric {
            links: Vec::new(),
            streams: Vec::new(),
            events: Vec::new(),
            flow_owner: HashMap::new(),
            token: 0,
        }
    }

    /// Adds a link with `bandwidth` bytes/s and returns its id.
    pub fn add_link(&mut self, name: impl Into<String>, bandwidth: f64) -> LinkId {
        self.links.push(FairLink::new(name, bandwidth));
        LinkId(self.links.len() as u32 - 1)
    }

    /// Adds a stream and returns its id.
    pub fn add_stream(&mut self, label: impl Into<String>) -> StreamId {
        self.streams.push(Stream {
            label: label.into(),
            queue: VecDeque::new(),
            state: Running::Idle,
            current_tag: None,
            op_started: SimTime::ZERO,
            compute_busy: SimDur::ZERO,
            copy_busy: SimDur::ZERO,
        });
        StreamId(self.streams.len() as u32 - 1)
    }

    /// Creates an unfired event without recording it into any stream.
    ///
    /// Most callers should use [`Self::record_event`] instead; a detached
    /// event is useful as a manually-fired barrier.
    pub fn create_event(&mut self) -> EventId {
        self.events.push(EventSlot {
            fired: false,
            waiters: Vec::new(),
        });
        EventId(self.events.len() as u32 - 1)
    }

    /// Fires a detached event immediately (manual barrier release).
    pub fn fire_event_now(
        &mut self,
        event: EventId,
        tl: &mut impl Timeline<FabricEvent>,
    ) -> Vec<Completion<T>> {
        let mut out = Vec::new();
        self.fire_event(event.0, tl, &mut out);
        out
    }

    /// Submits an op to a stream; returns any completions that resolve
    /// immediately (markers, instant records, waits on fired events).
    pub fn submit(
        &mut self,
        stream: StreamId,
        op: StreamOp<T>,
        tl: &mut impl Timeline<FabricEvent>,
    ) -> Vec<Completion<T>> {
        self.streams[stream.0 as usize].queue.push_back(op);
        let mut out = Vec::new();
        self.pump(stream.0, tl, &mut out);
        out
    }

    /// `cudaEventRecord`: creates an event that fires when all work
    /// currently in `stream` has completed.
    pub fn record_event(
        &mut self,
        stream: StreamId,
        tl: &mut impl Timeline<FabricEvent>,
    ) -> (EventId, Vec<Completion<T>>) {
        let e = self.create_event();
        let out = self.submit(stream, StreamOp::RecordEvent { event: e }, tl);
        (e, out)
    }

    /// `cudaStreamWaitEvent`: makes future work on `stream` wait for `event`.
    pub fn wait_event(
        &mut self,
        stream: StreamId,
        event: EventId,
        tl: &mut impl Timeline<FabricEvent>,
    ) -> Vec<Completion<T>> {
        self.submit(stream, StreamOp::WaitEvent { event }, tl)
    }

    /// `cudaEventQuery`: non-blocking completion check.
    pub fn query_event(&self, event: EventId) -> bool {
        self.events[event.0 as usize].fired
    }

    /// Handles a fabric event popped from the simulation queue.
    pub fn advance(
        &mut self,
        ev: FabricEvent,
        tl: &mut impl Timeline<FabricEvent>,
    ) -> Vec<Completion<T>> {
        let mut out = Vec::new();
        match ev {
            FabricEvent::OpDone { stream, token } => {
                let s = &mut self.streams[stream as usize];
                match s.state {
                    Running::Compute { token: t } if t == token => {
                        s.state = Running::Idle;
                        let tag = s.current_tag.take().expect("compute op had a tag");
                        out.push(Completion::Op {
                            stream: StreamId(stream),
                            tag,
                        });
                        self.pump(stream, tl, &mut out);
                    }
                    // Stale tokens cannot normally occur (compute ops are
                    // never cancelled), but tolerate them for robustness.
                    _ => {}
                }
            }
            FabricEvent::LinkTimer { link, gen } => {
                let now = tl.now();
                // A stale timer means a newer one is already pending;
                // refreshing here would invalidate it and livelock.
                let Some(done) = self.links[link as usize].expire(now, gen) else {
                    return out;
                };
                for flow in done {
                    let owner = self
                        .flow_owner
                        .remove(&(link, flow))
                        .expect("completed flow has an owning stream");
                    let s = &mut self.streams[owner as usize];
                    debug_assert!(
                        matches!(s.state, Running::Copy { link: l, flow: f } if f == flow && l == link),
                        "stream {} not running flow {flow:?} on link {link}",
                        s.label
                    );
                    s.state = Running::Idle;
                    s.copy_busy += now.saturating_since(s.op_started);
                    let tag = s.current_tag.take().expect("copy op had a tag");
                    out.push(Completion::Op {
                        stream: StreamId(owner),
                        tag,
                    });
                    self.pump(owner, tl, &mut out);
                }
                self.refresh_link(link, tl);
            }
        }
        out
    }

    /// Runs the head of `stream`'s queue as far as it will go.
    fn pump(&mut self, si: u32, tl: &mut impl Timeline<FabricEvent>, out: &mut Vec<Completion<T>>) {
        loop {
            let s = &mut self.streams[si as usize];
            if !matches!(s.state, Running::Idle) {
                return;
            }
            let Some(op) = s.queue.pop_front() else {
                return;
            };
            match op {
                StreamOp::Compute { dur, tag } => {
                    self.token += 1;
                    let token = self.token;
                    s.state = Running::Compute { token };
                    s.current_tag = Some(tag);
                    s.op_started = tl.now();
                    s.compute_busy += dur;
                    tl.schedule_after(dur, FabricEvent::OpDone { stream: si, token });
                    return;
                }
                StreamOp::Copy { link, bytes, tag } => {
                    let now = tl.now();
                    let flow = self.links[link.0 as usize].start_flow(now, bytes);
                    self.flow_owner.insert((link.0, flow), si);
                    let s = &mut self.streams[si as usize];
                    s.state = Running::Copy { link: link.0, flow };
                    s.current_tag = Some(tag);
                    s.op_started = now;
                    self.refresh_link(link.0, tl);
                    return;
                }
                StreamOp::RecordEvent { event } => {
                    // All prior work in this stream has drained, so the
                    // event fires now.
                    self.fire_event(event.0, tl, out);
                }
                StreamOp::WaitEvent { event } => {
                    if self.events[event.0 as usize].fired {
                        continue;
                    }
                    s.state = Running::Parked { event: event.0 };
                    self.events[event.0 as usize].waiters.push(si);
                    return;
                }
                StreamOp::Marker { tag } => {
                    out.push(Completion::Op {
                        stream: StreamId(si),
                        tag,
                    });
                }
            }
        }
    }

    fn fire_event(
        &mut self,
        ei: u32,
        tl: &mut impl Timeline<FabricEvent>,
        out: &mut Vec<Completion<T>>,
    ) {
        let slot = &mut self.events[ei as usize];
        if slot.fired {
            return;
        }
        slot.fired = true;
        out.push(Completion::Event { event: EventId(ei) });
        let waiters = std::mem::take(&mut slot.waiters);
        for w in waiters {
            let s = &mut self.streams[w as usize];
            debug_assert!(
                matches!(s.state, Running::Parked { event } if event == ei),
                "waiter {} not parked on event {ei}",
                s.label
            );
            s.state = Running::Idle;
            self.pump(w, tl, out);
        }
    }

    fn refresh_link(&mut self, li: u32, tl: &mut impl Timeline<FabricEvent>) {
        if let Some((eta, gen)) = self.links[li as usize].deadline(tl.now()) {
            tl.schedule_at(eta, FabricEvent::LinkTimer { link: li, gen });
        }
    }

    /// True if the stream has no queued or running work.
    pub fn stream_idle(&self, stream: StreamId) -> bool {
        let s = &self.streams[stream.0 as usize];
        s.queue.is_empty() && matches!(s.state, Running::Idle)
    }

    /// Queued (not yet started) ops on the stream.
    pub fn stream_depth(&self, stream: StreamId) -> usize {
        self.streams[stream.0 as usize].queue.len()
    }

    /// Accumulated compute-busy time of the stream.
    pub fn stream_compute_busy(&self, stream: StreamId) -> SimDur {
        self.streams[stream.0 as usize].compute_busy
    }

    /// Accumulated copy-busy time of the stream.
    pub fn stream_copy_busy(&self, stream: StreamId) -> SimDur {
        self.streams[stream.0 as usize].copy_busy
    }

    /// Read access to a link (bandwidth/occupancy statistics).
    pub fn link(&self, link: LinkId) -> &FairLink {
        &self.links[link.0 as usize]
    }

    /// Number of streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Number of links (ids are dense: `LinkId(0)..LinkId(n)`).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Cuts a link's bandwidth to `factor` of its nominal rate (fault
    /// injection: transient congestion or a flapping interconnect).
    ///
    /// In-flight flows are settled at the old rate up to `now` and any live
    /// completion timer is reissued at the degraded rate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn degrade_link(
        &mut self,
        link: LinkId,
        factor: f64,
        tl: &mut impl Timeline<FabricEvent>,
    ) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degradation factor must be in (0, 1]"
        );
        let l = &mut self.links[link.0 as usize];
        l.set_bandwidth(tl.now(), l.nominal_bandwidth() * factor);
        self.refresh_link(link.0, tl);
    }

    /// Restores a degraded link to full nominal bandwidth and reissues its
    /// completion timer.
    pub fn restore_link(&mut self, link: LinkId, tl: &mut impl Timeline<FabricEvent>) {
        self.links[link.0 as usize].restore_bandwidth(tl.now());
        self.refresh_link(link.0, tl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_sim::EventQueue;

    type Q = EventQueue<FabricEvent>;

    fn run(fabric: &mut Fabric<&'static str>, q: &mut Q) -> Vec<(SimTime, Completion<&'static str>)> {
        let mut out = Vec::new();
        while let Some((t, ev)) = q.pop() {
            for c in fabric.advance(ev, q) {
                out.push((t, c));
            }
        }
        out
    }

    fn ops_only(
        v: &[(SimTime, Completion<&'static str>)],
    ) -> Vec<(f64, &'static str)> {
        v.iter()
            .filter_map(|(t, c)| match c {
                Completion::Op { tag, .. } => Some((t.as_secs_f64(), *tag)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn compute_ops_serialize_on_one_stream() {
        let mut f: Fabric<&'static str> = Fabric::new();
        let mut q = Q::new();
        let s = f.add_stream("s");
        f.submit(s, StreamOp::Compute { dur: SimDur::from_secs(1), tag: "a" }, &mut q);
        f.submit(s, StreamOp::Compute { dur: SimDur::from_secs(2), tag: "b" }, &mut q);
        let done = ops_only(&run(&mut f, &mut q));
        assert_eq!(done, vec![(1.0, "a"), (3.0, "b")]);
    }

    #[test]
    fn streams_run_in_parallel() {
        let mut f: Fabric<&'static str> = Fabric::new();
        let mut q = Q::new();
        let s1 = f.add_stream("s1");
        let s2 = f.add_stream("s2");
        f.submit(s1, StreamOp::Compute { dur: SimDur::from_secs(3), tag: "long" }, &mut q);
        f.submit(s2, StreamOp::Compute { dur: SimDur::from_secs(1), tag: "short" }, &mut q);
        let done = ops_only(&run(&mut f, &mut q));
        assert_eq!(done, vec![(1.0, "short"), (3.0, "long")]);
    }

    #[test]
    fn copies_contend_on_links() {
        let mut f: Fabric<&'static str> = Fabric::new();
        let mut q = Q::new();
        let l = f.add_link("pcie", 1e9);
        let s1 = f.add_stream("s1");
        let s2 = f.add_stream("s2");
        f.submit(s1, StreamOp::Copy { link: l, bytes: 1_000_000_000, tag: "c1" }, &mut q);
        f.submit(s2, StreamOp::Copy { link: l, bytes: 1_000_000_000, tag: "c2" }, &mut q);
        let done = ops_only(&run(&mut f, &mut q));
        // Fair sharing: both finish at ~2 s instead of 1 s.
        assert_eq!(done.len(), 2);
        for (t, _) in done {
            assert!((t - 2.0).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn record_then_wait_synchronizes_across_streams() {
        let mut f: Fabric<&'static str> = Fabric::new();
        let mut q = Q::new();
        let s1 = f.add_stream("producer");
        let s2 = f.add_stream("consumer");
        f.submit(s1, StreamOp::Compute { dur: SimDur::from_secs(2), tag: "produce" }, &mut q);
        let (e, _) = f.record_event(s1, &mut q);
        assert!(!f.query_event(e), "event must not fire before prior work");
        f.wait_event(s2, e, &mut q);
        f.submit(s2, StreamOp::Compute { dur: SimDur::from_secs(1), tag: "consume" }, &mut q);
        let done = ops_only(&run(&mut f, &mut q));
        assert_eq!(done, vec![(2.0, "produce"), (3.0, "consume")]);
        assert!(f.query_event(e));
    }

    #[test]
    fn wait_on_fired_event_is_instant() {
        let mut f: Fabric<&'static str> = Fabric::new();
        let mut q = Q::new();
        let s1 = f.add_stream("s1");
        let s2 = f.add_stream("s2");
        let (e, _) = f.record_event(s1, &mut q); // empty stream: fires now
        assert!(f.query_event(e));
        f.wait_event(s2, e, &mut q);
        let out = f.submit(s2, StreamOp::Marker { tag: "go" }, &mut q);
        assert!(matches!(&out[0], Completion::Op { tag: "go", .. }));
    }

    #[test]
    fn multiple_waiters_release_together() {
        let mut f: Fabric<&'static str> = Fabric::new();
        let mut q = Q::new();
        let p = f.add_stream("p");
        let a = f.add_stream("a");
        let b = f.add_stream("b");
        f.submit(p, StreamOp::Compute { dur: SimDur::from_secs(1), tag: "p" }, &mut q);
        let (e, _) = f.record_event(p, &mut q);
        f.wait_event(a, e, &mut q);
        f.wait_event(b, e, &mut q);
        f.submit(a, StreamOp::Marker { tag: "a" }, &mut q);
        f.submit(b, StreamOp::Marker { tag: "b" }, &mut q);
        let done = ops_only(&run(&mut f, &mut q));
        assert_eq!(done, vec![(1.0, "p"), (1.0, "a"), (1.0, "b")]);
    }

    #[test]
    fn figure10_swapin_waits_for_swapout() {
        // The running example of §5.3: a decoding instance's KV swap-in for
        // R1 must wait until the prefill instance finishes swapping R1 out
        // (rule ❷), and decode starts only after the swap-in (rule ❶).
        let mut f: Fabric<&'static str> = Fabric::new();
        let mut q = Q::new();
        let d2h = f.add_link("pcie-d2h", 1e9);
        let h2d = f.add_link("pcie-h2d", 1e9);
        let prefill_out = f.add_stream("prefill.kv_out");
        let decode_in = f.add_stream("decode.kv_in");
        let decode = f.add_stream("decode.default");

        // ① record + ② memcpy on the prefill instance.
        f.submit(prefill_out, StreamOp::Copy { link: d2h, bytes: 500_000_000, tag: "kvout" }, &mut q);
        let (e_out, _) = f.record_event(prefill_out, &mut q);
        // ③ the decoding instance pauses its swap-in stream on the event
        // (shared via IPC — EventIds are fabric-global).
        f.wait_event(decode_in, e_out, &mut q);
        // ④⑤ swap-in copy.
        f.submit(decode_in, StreamOp::Copy { link: h2d, bytes: 500_000_000, tag: "kvin" }, &mut q);
        let (e_in, _) = f.record_event(decode_in, &mut q);
        // ⑥⑦ decode waits on the swap-in and then runs.
        f.wait_event(decode, e_in, &mut q);
        f.submit(decode, StreamOp::Compute { dur: SimDur::from_millis(25), tag: "decode" }, &mut q);

        let done = ops_only(&run(&mut f, &mut q));
        assert_eq!(done[0], (0.5, "kvout"));
        assert_eq!(done[1], (1.0, "kvin"));
        assert!((done[2].0 - 1.025).abs() < 1e-6);
        assert_eq!(done[2].1, "decode");
    }

    #[test]
    fn busy_accounting() {
        let mut f: Fabric<&'static str> = Fabric::new();
        let mut q = Q::new();
        let l = f.add_link("pcie", 1e9);
        let s = f.add_stream("s");
        f.submit(s, StreamOp::Compute { dur: SimDur::from_secs(2), tag: "c" }, &mut q);
        f.submit(s, StreamOp::Copy { link: l, bytes: 1_000_000_000, tag: "x" }, &mut q);
        run(&mut f, &mut q);
        assert_eq!(f.stream_compute_busy(s).as_secs_f64(), 2.0);
        assert!((f.stream_copy_busy(s).as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn degraded_link_slows_copy_until_restored() {
        // A 1 GB copy on a 1 GB/s link, degraded to 25% mid-flight.
        let mut f: Fabric<&'static str> = Fabric::new();
        let mut q = Q::new();
        let l = f.add_link("pcie", 1e9);
        let s = f.add_stream("s");
        f.submit(s, StreamOp::Copy { link: l, bytes: 1_000_000_000, tag: "x" }, &mut q);
        // 0.5 GB moves by t=0.5; degrade there. schedule_at clamps to now(),
        // so drive time forward by degrading inside the event loop.
        q.schedule_at(SimTime::from_secs_f64(0.5), FabricEvent::LinkTimer { link: 9999, gen: 0 });
        let mut out = Vec::new();
        while let Some((t, ev)) = q.pop() {
            if let FabricEvent::LinkTimer { link: 9999, .. } = ev {
                f.degrade_link(l, 0.25, &mut q);
                continue;
            }
            for c in f.advance(ev, &mut q) {
                out.push((t, c));
            }
        }
        // Remaining 0.5 GB at 0.25 GB/s -> finishes at 0.5 + 2.0 = 2.5 s.
        let done = ops_only(&out);
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 2.5).abs() < 1e-6, "t={}", done[0].0);
        assert!(f.link(l).audit().is_none());

        // And degradation followed by restore.
        let mut f: Fabric<&'static str> = Fabric::new();
        let mut q = Q::new();
        let l = f.add_link("pcie", 1e9);
        let s = f.add_stream("s");
        f.submit(s, StreamOp::Copy { link: l, bytes: 1_000_000_000, tag: "x" }, &mut q);
        q.schedule_at(SimTime::from_secs_f64(0.5), FabricEvent::LinkTimer { link: 9998, gen: 0 });
        q.schedule_at(SimTime::from_secs_f64(1.5), FabricEvent::LinkTimer { link: 9997, gen: 0 });
        let mut out = Vec::new();
        while let Some((t, ev)) = q.pop() {
            match ev {
                FabricEvent::LinkTimer { link: 9998, .. } => f.degrade_link(l, 0.25, &mut q),
                FabricEvent::LinkTimer { link: 9997, .. } => f.restore_link(l, &mut q),
                _ => {
                    for c in f.advance(ev, &mut q) {
                        out.push((t, c));
                    }
                }
            }
        }
        // 0.5 GB by 0.5 s, 0.25 GB during the 1 s degraded window, and the
        // final 0.25 GB at full rate -> completes at 1.75 s.
        let done = ops_only(&out);
        assert_eq!(done.len(), 1);
        assert!((done[0].0 - 1.75).abs() < 1e-6, "t={}", done[0].0);
    }

    #[test]
    fn manual_barrier_event() {
        let mut f: Fabric<&'static str> = Fabric::new();
        let mut q = Q::new();
        let s = f.add_stream("s");
        let gate = f.create_event();
        f.wait_event(s, gate, &mut q);
        f.submit(s, StreamOp::Marker { tag: "after-gate" }, &mut q);
        assert!(run(&mut f, &mut q).is_empty(), "stream must stay parked");
        let out = f.fire_event_now(gate, &mut q);
        assert!(out
            .iter()
            .any(|c| matches!(c, Completion::Op { tag: "after-gate", .. })));
    }
}
