//! Simulated GPU fabric: devices, interconnect links, CUDA-like streams and
//! events.
//!
//! Aegaeon's §5.3 optimizations are built directly on CUDA stream/event
//! semantics (`cudaEventRecord`, `cudaEventQuery`, `cudaStreamWaitEvent`,
//! `cudaIpcGetEventHandle`). This crate reproduces those semantics over the
//! discrete-event kernel:
//!
//! * a [`Fabric`] owns links ([`aegaeon_sim::FairLink`]), streams and
//!   events; streams execute FIFO queues of [`StreamOp`]s (compute, copies,
//!   event records/waits);
//! * `WaitEvent` parks a stream until the event fires, exactly like
//!   `cudaStreamWaitEvent`; `query_event` is the non-blocking
//!   `cudaEventQuery`; event ids are globally shareable (the moral
//!   equivalent of IPC event handles);
//! * copies contend on fair-share links, so overlapped KV transfers slow
//!   each other down the way PCIe DMA does.
//!
//! Device specs ([`GpuSpec`]) carry the capacity/throughput numbers used by
//! the engine's latency model; [`topology`] assembles multi-node clusters.

pub mod device;
pub mod fabric;
pub mod topology;

pub use device::GpuSpec;
pub use fabric::{Completion, EventId, Fabric, FabricEvent, LinkId, StreamId, StreamOp};
pub use topology::{ClusterSpec, ClusterTopology, GpuHandles, GpuId, NodeId, NodeSpec};
