//! Cluster topology: nodes, GPUs and their streams/links.
//!
//! Mirrors the paper's testbed layout (§7.1): nodes with several GPUs each,
//! PCIe between every GPU and host memory, NVLink within a node, and a NIC
//! between nodes. Each GPU gets the four streams Aegaeon uses (Figure 10):
//! the default compute stream, dedicated KV-in and KV-out streams, and the
//! model prefetch stream.

use crate::device::GpuSpec;
use crate::fabric::{Fabric, LinkId, StreamId};

/// Identifies a GPU within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GpuId(pub u32);

impl std::fmt::Display for GpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Identifies a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Hardware composition of one node.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Number of GPUs.
    pub gpus: u32,
    /// The GPU model installed (homogeneous within a node).
    pub gpu: GpuSpec,
    /// Host DRAM capacity in bytes.
    pub dram_bytes: u64,
    /// NIC bandwidth per direction, bytes/s.
    pub nic_bw: f64,
}

impl NodeSpec {
    /// The paper's H800 node: 8 GPUs, 2 TB DDR5, 2×100 GbE-class NIC.
    pub fn h800_node() -> NodeSpec {
        NodeSpec {
            gpus: 8,
            gpu: GpuSpec::h800(),
            dram_bytes: 2 << 40,
            nic_bw: 25e9,
        }
    }
}

/// Hardware composition of the cluster.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Nodes in the cluster.
    pub nodes: Vec<NodeSpec>,
}

impl ClusterSpec {
    /// `n_nodes` identical nodes.
    pub fn homogeneous(n_nodes: u32, node: NodeSpec) -> ClusterSpec {
        ClusterSpec {
            nodes: vec![node; n_nodes as usize],
        }
    }

    /// The paper's main testbed: two nodes with eight H800s each.
    pub fn paper_testbed() -> ClusterSpec {
        ClusterSpec::homogeneous(2, NodeSpec::h800_node())
    }

    /// Total GPU count.
    pub fn gpu_count(&self) -> u32 {
        self.nodes.iter().map(|n| n.gpus).sum()
    }
}

/// Streams and links belonging to one GPU.
#[derive(Debug, Clone)]
pub struct GpuHandles {
    /// The node hosting this GPU.
    pub node: NodeId,
    /// Device capabilities.
    pub spec: GpuSpec,
    /// Default (compute) stream.
    pub default_stream: StreamId,
    /// KV swap-in stream.
    pub kv_in: StreamId,
    /// KV swap-out stream.
    pub kv_out: StreamId,
    /// Model prefetch stream.
    pub prefetch: StreamId,
    /// Host-to-device PCIe channel.
    pub h2d: LinkId,
    /// Device-to-host PCIe channel.
    pub d2h: LinkId,
}

/// Links belonging to one node.
#[derive(Debug, Clone)]
pub struct NodeHandles {
    /// Outbound NIC channel.
    pub nic_tx: LinkId,
    /// Inbound NIC channel.
    pub nic_rx: LinkId,
    /// GPUs on this node.
    pub gpu_ids: Vec<GpuId>,
    /// Host DRAM capacity.
    pub dram_bytes: u64,
}

/// The built topology: an index from GPUs/nodes to fabric handles.
#[derive(Debug, Clone)]
pub struct ClusterTopology {
    gpus: Vec<GpuHandles>,
    nodes: Vec<NodeHandles>,
}

impl ClusterTopology {
    /// Instantiates every stream and link of `spec` into `fabric`.
    pub fn build<T: Clone>(spec: &ClusterSpec, fabric: &mut Fabric<T>) -> ClusterTopology {
        let mut gpus = Vec::new();
        let mut nodes = Vec::new();
        for (ni, node) in spec.nodes.iter().enumerate() {
            let nic_tx = fabric.add_link(format!("node{ni}.nic_tx"), node.nic_bw);
            let nic_rx = fabric.add_link(format!("node{ni}.nic_rx"), node.nic_bw);
            let mut gpu_ids = Vec::new();
            for gi in 0..node.gpus {
                let gid = GpuId(gpus.len() as u32);
                let tag = format!("n{ni}g{gi}");
                gpus.push(GpuHandles {
                    node: NodeId(ni as u32),
                    spec: node.gpu.clone(),
                    default_stream: fabric.add_stream(format!("{tag}.default")),
                    kv_in: fabric.add_stream(format!("{tag}.kv_in")),
                    kv_out: fabric.add_stream(format!("{tag}.kv_out")),
                    prefetch: fabric.add_stream(format!("{tag}.prefetch")),
                    h2d: fabric.add_link(format!("{tag}.h2d"), node.gpu.pcie_bw),
                    d2h: fabric.add_link(format!("{tag}.d2h"), node.gpu.pcie_bw),
                });
                gpu_ids.push(gid);
            }
            nodes.push(NodeHandles {
                nic_tx,
                nic_rx,
                gpu_ids,
                dram_bytes: node.dram_bytes,
            });
        }
        ClusterTopology { gpus, nodes }
    }

    /// Handles of a GPU.
    pub fn gpu(&self, id: GpuId) -> &GpuHandles {
        &self.gpus[id.0 as usize]
    }

    /// Handles of a node.
    pub fn node(&self, id: NodeId) -> &NodeHandles {
        &self.nodes[id.0 as usize]
    }

    /// All GPU ids.
    pub fn gpu_ids(&self) -> impl Iterator<Item = GpuId> + '_ {
        (0..self.gpus.len() as u32).map(GpuId)
    }

    /// Number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// True if two GPUs share a node (KV handoff avoids the NIC).
    pub fn same_node(&self, a: GpuId, b: GpuId) -> bool {
        self.gpu(a).node == self.gpu(b).node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricEvent;
    use aegaeon_sim::{EventQueue, SimDur, Timeline};

    #[test]
    fn paper_testbed_has_16_gpus_on_2_nodes() {
        let spec = ClusterSpec::paper_testbed();
        assert_eq!(spec.gpu_count(), 16);
        let mut fabric: Fabric<()> = Fabric::new();
        let topo = ClusterTopology::build(&spec, &mut fabric);
        assert_eq!(topo.gpu_count(), 16);
        assert_eq!(topo.node_count(), 2);
        assert!(topo.same_node(GpuId(0), GpuId(7)));
        assert!(!topo.same_node(GpuId(7), GpuId(8)));
        // 4 streams per GPU.
        assert_eq!(fabric.stream_count(), 64);
    }

    #[test]
    fn gpu_links_are_independent_channels() {
        let mut fabric: Fabric<&'static str> = Fabric::new();
        let topo = ClusterTopology::build(&ClusterSpec::paper_testbed(), &mut fabric);
        let g0 = topo.gpu(GpuId(0)).clone();
        let g1 = topo.gpu(GpuId(1)).clone();
        let mut q: EventQueue<FabricEvent> = EventQueue::new();
        // Loads on two different GPUs must not contend.
        fabric.submit(
            g0.prefetch,
            crate::fabric::StreamOp::Copy { link: g0.h2d, bytes: 32_000_000_000, tag: "a" },
            &mut q,
        );
        fabric.submit(
            g1.prefetch,
            crate::fabric::StreamOp::Copy { link: g1.h2d, bytes: 32_000_000_000, tag: "b" },
            &mut q,
        );
        let mut finishes = Vec::new();
        while let Some((t, ev)) = q.pop() {
            for c in fabric.advance(ev, &mut q) {
                if let crate::fabric::Completion::Op { .. } = c {
                    finishes.push(t);
                }
            }
        }
        assert_eq!(finishes.len(), 2);
        for t in finishes {
            assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        }
        let _ = SimDur::ZERO; // keep import used
        let _ = q.now();
    }
}
