//! Property tests for the stream/event/link fabric: arbitrary op soups must
//! preserve CUDA semantics (per-stream FIFO, event ordering, byte
//! conservation) and always drain.

use proptest::prelude::*;

use aegaeon_gpu::{Completion, Fabric, FabricEvent, StreamOp};
use aegaeon_sim::{EventQueue, SimDur, SimTime};

#[derive(Debug, Clone)]
enum GenOp {
    Compute { us: u64 },
    Copy { kb: u64 },
    RecordWait { producer: usize },
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u64..5_000).prop_map(|us| GenOp::Compute { us }),
        (1u64..50_000).prop_map(|kb| GenOp::Copy { kb }),
        (0usize..4).prop_map(|producer| GenOp::RecordWait { producer }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any submission order drains; per-stream completions are FIFO.
    #[test]
    fn fabric_always_drains_in_fifo_order(
        ops in prop::collection::vec((0usize..4, op_strategy()), 1..80)
    ) {
        let mut fabric: Fabric<(usize, usize)> = Fabric::new();
        let mut q: EventQueue<FabricEvent> = EventQueue::new();
        let link = fabric.add_link("l", 1e9);
        let streams: Vec<_> = (0..4).map(|i| fabric.add_stream(format!("s{i}"))).collect();
        let mut submitted = [0usize; 4];
        let mut done: Vec<(usize, usize)> = Vec::new();
        let collect = |cs: Vec<Completion<(usize, usize)>>, done: &mut Vec<(usize, usize)>| {
            for c in cs {
                if let Completion::Op { tag, .. } = c {
                    done.push(tag);
                }
            }
        };
        for (si, op) in &ops {
            let seq = submitted[*si];
            submitted[*si] += 1;
            match op {
                GenOp::Compute { us } => {
                    let cs = fabric.submit(
                        streams[*si],
                        StreamOp::Compute { dur: SimDur::from_micros(*us), tag: (*si, seq) },
                        &mut q,
                    );
                    collect(cs, &mut done);
                }
                GenOp::Copy { kb } => {
                    let cs = fabric.submit(
                        streams[*si],
                        StreamOp::Copy { link, bytes: kb * 1024, tag: (*si, seq) },
                        &mut q,
                    );
                    collect(cs, &mut done);
                }
                GenOp::RecordWait { producer } => {
                    // Record on the producer, wait on this stream, then mark.
                    let (ev, cs) = fabric.record_event(streams[*producer], &mut q);
                    collect(cs, &mut done);
                    let cs = fabric.wait_event(streams[*si], ev, &mut q);
                    collect(cs, &mut done);
                    let cs = fabric.submit(
                        streams[*si],
                        StreamOp::Marker { tag: (*si, seq) },
                        &mut q,
                    );
                    collect(cs, &mut done);
                }
            }
        }
        let mut last_t = SimTime::ZERO;
        while let Some((t, ev)) = q.pop() {
            prop_assert!(t >= last_t);
            last_t = t;
            collect(fabric.advance(ev, &mut q), &mut done);
        }
        // Everything completed exactly once…
        prop_assert_eq!(done.len(), ops.len(), "all ops completed");
        // …and per-stream order is FIFO.
        for si in 0..4 {
            let seqs: Vec<usize> = done.iter().filter(|(s, _)| *s == si).map(|(_, k)| *k).collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(seqs, sorted, "stream {} must complete FIFO", si);
        }
        // Streams end idle.
        for s in &streams {
            prop_assert!(fabric.stream_idle(*s));
        }
    }

    /// Fair-share links deliver every byte: total busy time is at least
    /// total bytes / bandwidth.
    #[test]
    fn link_conserves_bytes(sizes in prop::collection::vec(1u64..10_000_000, 1..40)) {
        let mut fabric: Fabric<usize> = Fabric::new();
        let mut q: EventQueue<FabricEvent> = EventQueue::new();
        let bw = 1e9;
        let link = fabric.add_link("l", bw);
        let s: Vec<_> = (0..sizes.len()).map(|i| fabric.add_stream(format!("s{i}"))).collect();
        for (i, bytes) in sizes.iter().enumerate() {
            fabric.submit(s[i], StreamOp::Copy { link, bytes: *bytes, tag: i }, &mut q);
        }
        let mut end = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, ev)) = q.pop() {
            end = t;
            for c in fabric.advance(ev, &mut q) {
                if matches!(c, Completion::Op { .. }) {
                    count += 1;
                }
            }
        }
        prop_assert_eq!(count, sizes.len());
        let total: u64 = sizes.iter().sum();
        let min_secs = total as f64 / bw;
        prop_assert!(end.as_secs_f64() >= min_secs - 1e-6,
            "finished at {} but needs at least {}", end.as_secs_f64(), min_secs);
        prop_assert!((fabric.link(link).bytes_delivered() - total as f64).abs() < sizes.len() as f64,
            "delivered {} of {}", fabric.link(link).bytes_delivered(), total);
    }
}
