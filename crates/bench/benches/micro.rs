//! Criterion micro-benchmarks for the hot data structures: the event heap,
//! fair-share links, the §5.2 allocators, the quota equations and the
//! Algorithm 1 dispatch path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aegaeon::prefill::PrefillQueue;
use aegaeon::quota::{decode_quotas, QuotaInputs};
use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{market_models, uniform_trace, SEED};
use aegaeon_mem::{BumpBuffer, SlabPool, SlabPoolConfig};
use aegaeon_model::ModelId;
use aegaeon_sim::{BinaryHeapQueue, EventQueue, FairLink, SimDur, SimTime, Timeline};
use aegaeon_workload::{LengthDist, RequestId};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule_after(SimDur::from_nanos((i * 7919) % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    // The same workload on the retained reference implementation, so a bench
    // run directly reports the new heap's speedup.
    c.bench_function("event_queue_ref/push_pop_1k", |b| {
        b.iter(|| {
            let mut q: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
            for i in 0..1000u64 {
                q.schedule_after(SimDur::from_nanos((i * 7919) % 10_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
    // The DES steady state: a standing event population with one push per
    // pop, the shape of the simulator's dispatch loop.
    c.bench_function("event_queue/churn_4k_standing", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..4096u64 {
                q.schedule_after(SimDur::from_nanos((i.wrapping_mul(2654435761)) % 100_000), i);
            }
            let mut acc = 0u64;
            for _ in 0..16_384u64 {
                let (_, e) = q.pop().expect("standing population");
                acc = acc.wrapping_add(e);
                q.schedule_after(SimDur::from_nanos(acc.wrapping_mul(2654435761) % 100_000), e);
            }
            black_box(acc)
        })
    });
    c.bench_function("event_queue_ref/churn_4k_standing", |b| {
        b.iter(|| {
            let mut q: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
            for i in 0..4096u64 {
                q.schedule_after(SimDur::from_nanos((i.wrapping_mul(2654435761)) % 100_000), i);
            }
            let mut acc = 0u64;
            for _ in 0..16_384u64 {
                let (_, e) = q.pop().expect("standing population");
                acc = acc.wrapping_add(e);
                q.schedule_after(SimDur::from_nanos(acc.wrapping_mul(2654435761) % 100_000), e);
            }
            black_box(acc)
        })
    });
}

fn bench_serving_hot_loop(c: &mut Criterion) {
    // A short but complete serving run: the dispatch loop plus scheduler,
    // dominated by the queue, tracing branches and per-event map lookups
    // this PR optimizes.
    let models = market_models(8);
    let trace = uniform_trace(8, 0.25, 60.0, SEED, LengthDist::sharegpt());
    c.bench_function("serving/aegaeon_8m_60s", |b| {
        b.iter(|| {
            let cfg = AegaeonConfig::small_testbed(2, 3);
            black_box(ServingSystem::run(&cfg, &models, &trace).completed)
        })
    });
}

fn bench_fair_link(c: &mut Criterion) {
    c.bench_function("fair_link/64_interleaved_flows", |b| {
        b.iter(|| {
            let mut link = FairLink::new("bench", 32e9);
            let mut now = SimTime::ZERO;
            for i in 0..64u64 {
                link.start_flow(now, 1_000_000 + i * 1000);
                now += SimDur::from_micros(10);
            }
            let mut done = 0;
            while let Some((eta, gen)) = link.deadline(now) {
                now = eta;
                done += link.expire(now, gen).map(|v| v.len()).unwrap_or(0);
            }
            black_box(done)
        })
    });
}

fn bench_bump(c: &mut Criterion) {
    c.bench_function("bump/alloc_reset_cycle", |b| {
        let mut buf = BumpBuffer::new(80 << 30);
        b.iter(|| {
            buf.reset();
            for _ in 0..32 {
                black_box(buf.alloc(1 << 28, 256).expect("fits"));
            }
        })
    });
}

fn bench_slab(c: &mut Criterion) {
    c.bench_function("slab/alloc_free_churn", |b| {
        let mut pool = SlabPool::new(SlabPoolConfig {
            capacity_bytes: 8 << 30,
            slab_bytes: 128 << 20,
        });
        let a = pool.register_shape("a", 8 << 20);
        let bshape = pool.register_shape("b", 2 << 20);
        b.iter(|| {
            let x = pool.alloc(a, 40).expect("capacity");
            let y = pool.alloc(bshape, 100).expect("capacity");
            pool.free(a, &x);
            pool.free(bshape, &y);
        })
    });
}

fn bench_quota(c: &mut Criterion) {
    let inp = QuotaInputs {
        step_times: (0..8).map(|i| 0.01 + 0.002 * i as f64).collect(),
        tbt: 0.1,
        switch_total: 4.5,
        qmax: 4.0,
    };
    c.bench_function("quota/eq2_eq3_8_batches", |b| {
        b.iter(|| black_box(decode_quotas(black_box(&inp))))
    });
}

fn bench_prefill_dispatch(c: &mut Criterion) {
    c.bench_function("prefill/load_estimate_32_groups", |b| {
        let mut q = PrefillQueue::new();
        for i in 0..32u64 {
            q.push_group(ModelId((i % 8) as u32), RequestId(i));
        }
        b.iter(|| {
            black_box(q.load_estimate(Some(ModelId(0)), |_, _| 0.04, |_| 0.6))
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue,
        bench_serving_hot_loop,
        bench_fair_link,
        bench_bump,
        bench_slab,
        bench_quota,
        bench_prefill_dispatch
);
criterion_main!(micro);
