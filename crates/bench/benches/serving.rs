//! Criterion end-to-end benchmarks: whole serving simulations per system.
//!
//! These measure simulator throughput (events/s of the reproduction), not
//! GPU performance; they catch orchestration-path regressions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_baselines::{ServerlessLlm, SllmConfig};
use aegaeon_bench::{market_models, uniform_trace};
use aegaeon_workload::LengthDist;

fn bench_aegaeon(c: &mut Criterion) {
    let models = market_models(12);
    let trace = uniform_trace(12, 0.08, 120.0, 9, LengthDist::sharegpt());
    let cfg = AegaeonConfig::small_testbed(2, 3);
    c.bench_function("serving/aegaeon_12models_120s", |b| {
        b.iter(|| black_box(ServingSystem::run(&cfg, &models, &trace).completed))
    });
}

fn bench_sllm(c: &mut Criterion) {
    let models = market_models(12);
    let trace = uniform_trace(12, 0.08, 120.0, 9, LengthDist::sharegpt());
    let cfg = SllmConfig::new(aegaeon_gpu::ClusterSpec::homogeneous(
        1,
        aegaeon_gpu::NodeSpec {
            gpus: 5,
            gpu: aegaeon_gpu::GpuSpec::h800(),
            dram_bytes: 1 << 40,
            nic_bw: 25e9,
        },
    ));
    c.bench_function("serving/sllm_12models_120s", |b| {
        b.iter(|| black_box(ServerlessLlm::run(&cfg, &models, &trace).completed))
    });
}

criterion_group!(
    name = serving;
    config = Criterion::default().sample_size(10);
    targets = bench_aegaeon, bench_sllm
);
criterion_main!(serving);
