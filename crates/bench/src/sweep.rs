//! Parallel sweep execution for the figure binaries.
//!
//! Every figure sweep evaluates an embarrassingly-parallel grid: each point
//! builds its own trace from a derived seed and runs one simulation, sharing
//! nothing with its neighbours. [`map`] fans those points across a
//! **persistent worker pool** while keeping the output *bit-identical* to a
//! serial run: results are stitched back in input order, and determinism
//! comes from each point being a pure function of its inputs (so thread
//! count and completion order cannot leak into the numbers).
//!
//! The pool is spawned once per process and reused by every sweep, so the
//! per-call cost is a handful of channel sends instead of `nt` thread
//! spawns — the spawn-per-call scheme this replaces lost money on short
//! grids (8 points × sub-second runs) where thread startup rivaled the
//! work itself. Work is claimed in chunks off a shared cursor
//! (work-stealing between the caller and the pool), so a slow point never
//! leaves the other workers idle behind a static partition.
//!
//! # How borrowed sweeps ride a `'static` pool
//!
//! Pool jobs must be `'static`, but a sweep borrows `points` and `f` from
//! the caller's stack. Each enqueued helper job carries an atomic
//! state token (`Pending → Running | Cancelled`) and its borrows are
//! lifetime-erased. Safety rests on two guarantees enforced here:
//!
//! 1. a job only touches borrowed data after winning the `Pending →
//!    Running` CAS, and the caller never returns (or unwinds) before
//!    receiving the final ack of every job that won it;
//! 2. before returning, the caller CASes every remaining job `Pending →
//!    Cancelled`; a cancelled job is dropped by the pool without running,
//!    and its drop glue touches only refcounted heap state.
//!
//! Cancellation is also what makes *nested* sweeps deadlock-free: an inner
//! sweep whose helper jobs never get picked up (all workers busy with
//! outer points) simply does all the work on its own thread, cancels the
//! queued helpers, and returns without waiting on anyone.
//!
//! The thread count defaults to the machine's parallelism and can be pinned
//! with the `AEGAEON_SWEEP_THREADS` environment variable (`1` forces the
//! serial path, useful for timing comparisons).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};

/// Environment variable overriding the sweep thread count.
pub const THREADS_ENV: &str = "AEGAEON_SWEEP_THREADS";

/// Upper bound on pool workers (backstop against absurd `nt` requests).
const MAX_WORKERS: usize = 32;

/// The sweep thread count: `AEGAEON_SWEEP_THREADS` if set (minimum 1),
/// otherwise the machine's available parallelism.
pub fn threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives an independent per-point seed from a base seed (SplitMix64 mix),
/// so sweep points decorrelate without depending on evaluation order.
pub fn derive_seed(base: u64, idx: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add(idx.wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Persistent pool
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    tx: mpsc::Sender<Job>,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    spawned: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (tx, rx) = mpsc::channel::<Job>();
        Pool {
            tx,
            rx: Arc::new(Mutex::new(rx)),
            spawned: AtomicUsize::new(0),
        }
    })
}

impl Pool {
    /// Grows the pool to at least `want` workers (capped). Workers pick
    /// jobs off the shared receiver; pickup is serialized by the mutex but
    /// execution is parallel. Workers live for the process lifetime — the
    /// sender half is never dropped.
    fn ensure(&'static self, want: usize) {
        let want = want.min(MAX_WORKERS);
        loop {
            let have = self.spawned.load(Ordering::Acquire);
            if have >= want {
                return;
            }
            if self
                .spawned
                .compare_exchange(have, have + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let rx = Arc::clone(&self.rx);
            std::thread::Builder::new()
                .name(format!("aegaeon-sweep-{have}"))
                .spawn(move || loop {
                    let job = match rx.lock().unwrap().recv() {
                        Ok(j) => j,
                        Err(_) => break,
                    };
                    job();
                })
                .expect("spawn sweep worker");
        }
    }
}

const PENDING: u8 = 0;
const RUNNING: u8 = 1;
const CANCELLED: u8 = 2;

/// Per-job start/cancel arbitration (see module docs).
struct JobToken {
    state: AtomicU8,
}

impl JobToken {
    fn new() -> JobToken {
        JobToken {
            state: AtomicU8::new(PENDING),
        }
    }

    /// Worker side: claim the right to run. Loses iff the caller already
    /// cancelled.
    fn try_start(&self) -> bool {
        self.state
            .compare_exchange(PENDING, RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Caller side: revoke an unstarted job. Loses iff a worker already
    /// started it (the caller must then wait for its ack).
    fn try_cancel(&self) -> bool {
        self.state
            .compare_exchange(PENDING, CANCELLED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// Evaluates `f` over `points` on [`threads()`] threads, returning results
/// in input order. Equivalent to `points.iter().map(f).collect()` whenever
/// `f` is pure.
pub fn map<P, R, F>(points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    map_with_threads(points, threads(), f)
}

/// [`map`] with an explicit thread count: the calling thread plus up to
/// `nt - 1` pool workers.
pub fn map_with_threads<P, R, F>(points: &[P], nt: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let nt = nt.max(1).min(points.len().max(1));
    if nt == 1 {
        return points.iter().map(f).collect();
    }

    // Shared claim cursor; chunks amortize cursor contention while staying
    // small enough (≥ 4 chunks per worker) that stealing balances skew.
    let next = AtomicUsize::new(0);
    let chunk = (points.len() / (nt * 4)).max(1);
    let claim = |out: &mut Vec<(usize, R)>| loop {
        let start = next.fetch_add(chunk, Ordering::Relaxed);
        if start >= points.len() {
            break;
        }
        let end = (start + chunk).min(points.len());
        for (i, p) in points.iter().enumerate().take(end).skip(start) {
            out.push((i, f(p)));
        }
    };

    let helpers = nt - 1;
    let pool = pool();
    pool.ensure(helpers);
    let (ack_tx, ack_rx) = mpsc::channel::<std::thread::Result<Vec<(usize, R)>>>();
    let mut tokens: Vec<Arc<JobToken>> = Vec::with_capacity(helpers);
    for _ in 0..helpers {
        let token = Arc::new(JobToken::new());
        tokens.push(Arc::clone(&token));
        let ack = ack_tx.clone();
        let claim = &claim;
        let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
            if !token.try_start() {
                return;
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut out = Vec::new();
                claim(&mut out);
                out
            }));
            // The ack doubles as the caller's permission to release the
            // borrows this job holds; a send can only fail if the caller
            // itself panicked, and then it still drains acks before
            // unwinding past the borrowed frame.
            let _ = ack.send(result);
        });
        // SAFETY: the job borrows `points`, `f`, `next`, `claim`, and
        // `ack_rx`'s peer from this frame. The caller below does not leave
        // this frame (return or unwind) until every token it failed to
        // cancel has acked, and a job touches borrows only after winning
        // try_start — which forces try_cancel to fail. A cancelled job is
        // dropped unrun; its drop glue touches only the Arc token and the
        // ack Sender clone, both refcounted heap allocations.
        let job: Job = unsafe { std::mem::transmute(job) };
        pool.tx.send(job).expect("sweep pool is immortal");
    }
    drop(ack_tx);

    // The caller is a full participant — it cannot be starved of work by a
    // busy pool, which is also what makes nested sweeps safe.
    let mine = catch_unwind(AssertUnwindSafe(|| {
        let mut out = Vec::new();
        claim(&mut out);
        out
    }));

    // All points are claimed; revoke helpers that never started and wait
    // for every one that did.
    let started = tokens.iter().filter(|t| !t.try_cancel()).count();
    let mut results: Vec<std::thread::Result<Vec<(usize, R)>>> =
        (0..started).map(|_| ack_rx.recv().expect("started helper acks")).collect();
    results.push(mine);

    let mut slots: Vec<Option<R>> = (0..points.len()).map(|_| None).collect();
    let mut panic_payload = None;
    for r in results {
        match r {
            Ok(pairs) => {
                for (i, v) in pairs {
                    debug_assert!(slots[i].is_none(), "point {i} evaluated twice");
                    slots[i] = Some(v);
                }
            }
            Err(payload) => panic_payload = Some(payload),
        }
    }
    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every point evaluated exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let points: Vec<u64> = (0..97).collect();
        let out = map_with_threads(&points, 8, |&p| p * p);
        assert_eq!(out, points.iter().map(|&p| p * p).collect::<Vec<_>>());
    }

    #[test]
    fn handles_fewer_points_than_threads() {
        let out = map_with_threads(&[1u32, 2], 16, |&p| p + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = map_with_threads(&[] as &[u32], 4, |&p| p);
        assert!(out.is_empty());
    }

    #[test]
    fn pool_is_reused_across_calls() {
        // Many short sweeps through the same process-wide pool: worker
        // count stays bounded by the largest request, results stay ordered.
        for round in 0..50u64 {
            let points: Vec<u64> = (0..13).map(|i| i + round).collect();
            let out = map_with_threads(&points, 4, |&p| p * 3);
            assert_eq!(out, points.iter().map(|&p| p * 3).collect::<Vec<_>>());
        }
        assert!(pool().spawned.load(Ordering::Relaxed) <= MAX_WORKERS);
    }

    #[test]
    fn nested_sweeps_do_not_deadlock() {
        let outer: Vec<u64> = (0..8).collect();
        let out = map_with_threads(&outer, 4, |&o| {
            let inner: Vec<u64> = (0..8).collect();
            map_with_threads(&inner, 4, |&i| o * 100 + i)
                .into_iter()
                .sum::<u64>()
        });
        let expect: Vec<u64> = outer
            .iter()
            .map(|&o| (0..8).map(|i| o * 100 + i).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let points: Vec<u64> = (0..32).collect();
        let r = std::panic::catch_unwind(|| {
            map_with_threads(&points, 4, |&p| {
                if p == 17 {
                    panic!("boom at {p}");
                }
                p
            })
        });
        assert!(r.is_err(), "worker panic must surface on the caller");
        // The pool survives a panicking sweep and keeps serving.
        let out = map_with_threads(&points, 4, |&p| p + 1);
        assert_eq!(out, points.iter().map(|&p| p + 1).collect::<Vec<_>>());
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| derive_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    /// The acceptance property: a real sweep over serving simulations gives
    /// bit-identical attainment whether it runs serially or on N threads.
    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        use crate::{market_models, run_system, uniform_trace, System, SEED};
        use aegaeon_workload::{LengthDist, SloSpec};

        let points: Vec<(usize, f64)> = vec![(1, 0.2), (2, 0.3), (3, 0.4), (2, 0.5)];
        let eval = |&(n, rate): &(usize, f64)| {
            let seed = derive_seed(SEED, (n as u64) << 16 | (rate * 100.0) as u64);
            let models = market_models(n);
            let trace = uniform_trace(n, rate, 60.0, seed, LengthDist::sharegpt());
            run_system(
                System::ServerlessLlm,
                &models,
                &trace,
                SloSpec::paper_default(),
                rate,
            )
            .ratio()
        };
        let serial = map_with_threads(&points, 1, eval);
        let parallel = map_with_threads(&points, 4, eval);
        let serial_bits: Vec<u64> = serial.iter().map(|r| r.to_bits()).collect();
        let parallel_bits: Vec<u64> = parallel.iter().map(|r| r.to_bits()).collect();
        assert_eq!(serial_bits, parallel_bits);
    }
}
