//! Parallel sweep execution for the figure binaries.
//!
//! Every figure sweep evaluates an embarrassingly-parallel grid: each point
//! builds its own trace from a derived seed and runs one simulation, sharing
//! nothing with its neighbours. [`map`] fans those points across OS threads
//! with [`std::thread::scope`] while keeping the output *bit-identical* to a
//! serial run: results are stitched back in input order, and determinism
//! comes from each point being a pure function of its inputs (so thread
//! count and completion order cannot leak into the numbers).
//!
//! The thread count defaults to the machine's parallelism and can be pinned
//! with the `AEGAEON_SWEEP_THREADS` environment variable (`1` forces the
//! serial path, useful for timing comparisons).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable overriding the sweep thread count.
pub const THREADS_ENV: &str = "AEGAEON_SWEEP_THREADS";

/// The sweep thread count: `AEGAEON_SWEEP_THREADS` if set (minimum 1),
/// otherwise the machine's available parallelism.
pub fn threads() -> usize {
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives an independent per-point seed from a base seed (SplitMix64 mix),
/// so sweep points decorrelate without depending on evaluation order.
pub fn derive_seed(base: u64, idx: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e3779b97f4a7c15)
        .wrapping_add(idx.wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Evaluates `f` over `points` on [`threads()`] threads, returning results
/// in input order. Equivalent to `points.iter().map(f).collect()` whenever
/// `f` is pure.
pub fn map<P, R, F>(points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    map_with_threads(points, threads(), f)
}

/// [`map`] with an explicit thread count.
pub fn map_with_threads<P, R, F>(points: &[P], nt: usize, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let nt = nt.max(1).min(points.len().max(1));
    if nt == 1 {
        return points.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..nt {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(p) = points.get(i) else { break };
                    // The receiver outlives the scope; a send can only fail
                    // if the main thread panicked, which ends the scope anyway.
                    if tx.send((i, f(p))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..points.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every point evaluated exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let points: Vec<u64> = (0..97).collect();
        let out = map_with_threads(&points, 8, |&p| p * p);
        assert_eq!(out, points.iter().map(|&p| p * p).collect::<Vec<_>>());
    }

    #[test]
    fn handles_fewer_points_than_threads() {
        let out = map_with_threads(&[1u32, 2], 16, |&p| p + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = map_with_threads(&[] as &[u32], 4, |&p| p);
        assert!(out.is_empty());
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|i| derive_seed(42, i)).collect();
        assert_eq!(seeds.len(), 1000);
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    /// The acceptance property: a real sweep over serving simulations gives
    /// bit-identical attainment whether it runs serially or on N threads.
    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        use crate::{market_models, run_system, uniform_trace, System, SEED};
        use aegaeon_workload::{LengthDist, SloSpec};

        let points: Vec<(usize, f64)> = vec![(1, 0.2), (2, 0.3), (3, 0.4), (2, 0.5)];
        let eval = |&(n, rate): &(usize, f64)| {
            let seed = derive_seed(SEED, (n as u64) << 16 | (rate * 100.0) as u64);
            let models = market_models(n);
            let trace = uniform_trace(n, rate, 60.0, seed, LengthDist::sharegpt());
            run_system(
                System::ServerlessLlm,
                &models,
                &trace,
                SloSpec::paper_default(),
                rate,
            )
            .ratio()
        };
        let serial = map_with_threads(&points, 1, eval);
        let parallel = map_with_threads(&points, 4, eval);
        let serial_bits: Vec<u64> = serial.iter().map(|r| r.to_bits()).collect();
        let parallel_bits: Vec<u64> = parallel.iter().map(|r| r.to_bits()).collect();
        assert_eq!(serial_bits, parallel_bits);
    }
}
