//! Post-run SLO analysis: the library behind `aegaeon-analyze`.
//!
//! Consumes the SLO observatory document (the gateway's `GET /v1/slo` body
//! / [`aegaeon_telemetry::slo_json`] output, or the equivalent
//! [`aegaeon_telemetry::slo_jsonl`] lines) plus, optionally, a gateway
//! bench report (`BENCH_gateway_throughput.json`) and renders one post-run
//! report as markdown and JSON: per-model attainment (cumulative and over
//! time), TTFT/TBT percentile tables, the switch-cost attribution
//! breakdown, and reactor balance.
//!
//! Everything here is deterministic for a given input (rows render in
//! input order, floats with fixed precision), so reports are golden-
//! testable byte for byte. CI runs the consistency gate
//! ([`Analysis::consistency_errors`]) on every soak/sweep artifact:
//! quantiles must be monotone (p50 ≤ p90 ≤ p99), attainment must lie in
//! [0, 1], and met-token counts can never exceed token counts.

use std::fmt::Write as _;

use serde_json::{Map, Value};

/// One model's cumulative SLO standing.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Model name (`m0`, `m1`, …).
    pub model: String,
    /// Completed requests.
    pub requests: u64,
    /// Tokens produced.
    pub tokens: u64,
    /// Tokens produced by their SLO deadline.
    pub tokens_met: u64,
    /// `tokens_met / tokens` (1.0 when no tokens).
    pub attainment: f64,
}

/// One sealed observatory window for one model.
#[derive(Debug, Clone)]
pub struct WindowRow {
    /// Window end, sim nanoseconds.
    pub window_end_ns: u64,
    /// Model name.
    pub model: String,
    /// Requests retired in the window.
    pub requests: u64,
    /// Tokens produced in the window.
    pub tokens: u64,
    /// Tokens on deadline in the window.
    pub tokens_met: u64,
    /// TTFT p50/p90/p99 seconds.
    pub ttft: [f64; 3],
    /// TBT p50/p90/p99 seconds.
    pub tbt: [f64; 3],
    /// Window attainment.
    pub attainment: f64,
    /// Window goodput, tokens per second.
    pub goodput_tps: f64,
}

/// One switch-cost attribution cell.
#[derive(Debug, Clone)]
pub struct AttribRow {
    /// Instance name (`p0`…, `d0`…).
    pub instance: String,
    /// Model name.
    pub model: String,
    /// Cost kind (`model_switch`, `kv_swap_in`, …).
    pub kind: String,
    /// Attributed seconds.
    pub secs: f64,
}

/// One model's cumulative agentic-session standing.
#[derive(Debug, Clone)]
pub struct SessionRow {
    /// Model name.
    pub model: String,
    /// Session turns retired.
    pub turns: u64,
    /// Turns that prefilled only their delta off a retained prefix.
    pub prefix_hits: u64,
    /// Deepest session (turn count) observed.
    pub max_depth: u64,
    /// `prefix_hits / turns`.
    pub hit_rate: f64,
    /// Turn-latency p50/p90/p99 seconds (arrival → final token per turn;
    /// think gaps excluded by construction).
    pub latency: [f64; 3],
}

/// The slice of a gateway bench report the analysis uses.
#[derive(Debug, Clone, Default)]
pub struct BenchRow {
    /// Requests offered by the load generator.
    pub offered: u64,
    /// Streams completed with the DONE sentinel.
    pub completed: u64,
    /// 429 rejections.
    pub rejected: u64,
    /// Client-side goodput, tokens per second.
    pub goodput_tps: f64,
    /// Client-observed TTFT p50/p90/p99 seconds.
    pub ttft: [f64; 3],
    /// Client-observed TBT p50/p90/p99 seconds.
    pub tbt: [f64; 3],
    /// Peak concurrent streams per reactor.
    pub per_reactor_peak: Vec<u64>,
    /// max/min of the per-reactor peaks.
    pub balance: f64,
}

/// A parsed, cross-checked post-run analysis.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Per-model cumulative standing (input order).
    pub models: Vec<ModelRow>,
    /// Sealed windows (input order: time, then model).
    pub windows: Vec<WindowRow>,
    /// Attribution ledger rows (input order: instance, model, kind).
    pub attribution: Vec<AttribRow>,
    /// Per-model agentic-session series (models with no turns omitted).
    pub sessions: Vec<SessionRow>,
    /// Total useful seconds (prefill + decode execution).
    pub useful_secs: f64,
    /// Total overhead seconds (switches + KV swaps).
    pub overhead_secs: f64,
    /// Gateway bench summary, when a bench report was provided.
    pub bench: Option<BenchRow>,
}

// ---- Value accessors for the vendored serde_json's owned tree -------------

fn field<'a>(v: &'a Value, k: &str) -> Option<&'a Value> {
    match v {
        Value::Object(m) => m.get(k),
        _ => None,
    }
}

fn get_f64(v: &Value, k: &str) -> f64 {
    match field(v, k) {
        Some(Value::F64(x)) => *x,
        Some(Value::U64(x)) => *x as f64,
        Some(Value::I64(x)) => *x as f64,
        _ => f64::NAN,
    }
}

fn get_u64(v: &Value, k: &str) -> u64 {
    match field(v, k) {
        Some(Value::U64(x)) => *x,
        _ => 0,
    }
}

fn get_str<'a>(v: &'a Value, k: &str) -> &'a str {
    match field(v, k) {
        Some(Value::String(s)) => s.as_str(),
        _ => "",
    }
}

/// `model` is `"m3"` in the object document but a bare number in JSONL.
fn model_name(v: &Value, k: &str) -> String {
    match field(v, k) {
        Some(Value::String(s)) => s.clone(),
        Some(Value::U64(n)) => format!("m{n}"),
        Some(Value::I64(n)) => format!("m{n}"),
        _ => String::new(),
    }
}

fn quantiles(v: &Value, prefix: &str) -> [f64; 3] {
    [
        get_f64(v, &format!("{prefix}_p50")),
        get_f64(v, &format!("{prefix}_p90")),
        get_f64(v, &format!("{prefix}_p99")),
    ]
}

fn window_row(v: &Value) -> WindowRow {
    WindowRow {
        window_end_ns: get_u64(v, "window_end_ns"),
        model: model_name(v, "model"),
        requests: get_u64(v, "requests"),
        tokens: get_u64(v, "tokens"),
        tokens_met: get_u64(v, "tokens_met"),
        ttft: quantiles(v, "ttft"),
        tbt: quantiles(v, "tbt"),
        attainment: get_f64(v, "attainment"),
        goodput_tps: get_f64(v, "goodput_tps"),
    }
}

fn model_row(v: &Value) -> ModelRow {
    ModelRow {
        model: model_name(v, "model"),
        requests: get_u64(v, "requests"),
        tokens: get_u64(v, "tokens"),
        tokens_met: get_u64(v, "tokens_met"),
        attainment: get_f64(v, "attainment"),
    }
}

fn session_row(v: &Value) -> SessionRow {
    SessionRow {
        model: model_name(v, "model"),
        turns: get_u64(v, "turns"),
        prefix_hits: get_u64(v, "prefix_hits"),
        max_depth: get_u64(v, "max_depth"),
        hit_rate: get_f64(v, "prefix_hit_rate"),
        latency: quantiles(v, "turn_latency"),
    }
}

fn attrib_row(v: &Value) -> AttribRow {
    AttribRow {
        instance: get_str(v, "instance").to_string(),
        model: model_name(v, "model"),
        kind: get_str(v, "kind").to_string(),
        secs: get_f64(v, "secs"),
    }
}

fn push_attain_err(errs: &mut Vec<String>, what: &str, a: f64) {
    if !(0.0..=1.0).contains(&a) {
        errs.push(format!("{what}: attainment {a} outside [0, 1]"));
    }
}

impl Analysis {
    /// Parses the SLO document. Accepts both shapes the telemetry crate
    /// emits: the single-object `/v1/slo` form and the line-delimited
    /// `slo_point`/`slo_cum`/`attrib` form (lines of other types are
    /// ignored, so a full combined JSONL dump works too).
    pub fn from_slo_text(text: &str) -> Result<Analysis, String> {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return Err("empty SLO document".to_string());
        }
        if let Ok(doc) = serde_json::from_str::<Value>(trimmed) {
            if field(&doc, "models").is_some() || field(&doc, "windows").is_some() {
                return Ok(Self::from_slo_value(&doc));
            }
        }
        // JSONL: fold the typed lines into the same shape.
        let mut a = Analysis::default();
        let mut parsed_any = false;
        for (i, line) in trimmed.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v: Value =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            parsed_any = true;
            match get_str(&v, "type") {
                "slo_point" => a.windows.push(window_row(&v)),
                "slo_cum" => a.models.push(model_row(&v)),
                "attrib" => a.attribution.push(attrib_row(&v)),
                "session_turns" => a.sessions.push(session_row(&v)),
                _ => {}
            }
        }
        if !parsed_any {
            return Err("no JSON lines in SLO document".to_string());
        }
        for r in &a.attribution {
            if r.kind == "prefill_exec" || r.kind == "decode_exec" {
                a.useful_secs += r.secs;
            } else {
                a.overhead_secs += r.secs;
            }
        }
        Ok(a)
    }

    /// Builds the analysis from the parsed `/v1/slo` object.
    pub fn from_slo_value(doc: &Value) -> Analysis {
        fn rows<T>(doc: &Value, k: &str, f: fn(&Value) -> T) -> Vec<T> {
            match field(doc, k) {
                Some(Value::Array(items)) => items.iter().map(f).collect(),
                _ => Vec::new(),
            }
        }
        Analysis {
            models: rows(doc, "models", model_row),
            windows: rows(doc, "windows", window_row),
            attribution: rows(doc, "attribution", attrib_row),
            sessions: rows(doc, "sessions", session_row),
            useful_secs: get_f64(doc, "useful_secs"),
            overhead_secs: get_f64(doc, "overhead_secs"),
            bench: None,
        }
    }

    /// Attaches a gateway bench report (`BENCH_gateway_throughput.json`).
    pub fn with_bench_value(mut self, doc: &Value) -> Analysis {
        let q = |k: &str| match field(doc, k) {
            Some(o) => [get_f64(o, "p50"), get_f64(o, "p90"), get_f64(o, "p99")],
            None => [f64::NAN; 3],
        };
        let peaks = match field(doc, "per_reactor_peak_streams") {
            Some(Value::Array(items)) => items
                .iter()
                .filter_map(|v| match v {
                    Value::U64(p) => Some(*p),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        self.bench = Some(BenchRow {
            offered: get_u64(doc, "offered_requests"),
            completed: get_u64(doc, "completed"),
            rejected: get_u64(doc, "rejected"),
            goodput_tps: get_f64(doc, "goodput_tokens_per_sec"),
            ttft: q("ttft_secs"),
            tbt: q("tbt_secs"),
            per_reactor_peak: peaks,
            balance: get_f64(doc, "reactor_balance_max_over_min"),
        });
        self
    }

    /// The CI gate: every internal-consistency violation in the report.
    /// Empty means the artifact is trustworthy.
    pub fn consistency_errors(&self) -> Vec<String> {
        let mut errs = Vec::new();
        for m in &self.models {
            push_attain_err(&mut errs, &format!("model {}", m.model), m.attainment);
            if m.tokens_met > m.tokens {
                errs.push(format!(
                    "model {}: tokens_met {} > tokens {}",
                    m.model, m.tokens_met, m.tokens
                ));
            }
        }
        for w in &self.windows {
            let tag = format!("window {}ns {}", w.window_end_ns, w.model);
            push_attain_err(&mut errs, &tag, w.attainment);
            if w.tokens_met > w.tokens {
                errs.push(format!(
                    "{tag}: tokens_met {} > tokens {}",
                    w.tokens_met, w.tokens
                ));
            }
            for (name, q) in [("ttft", &w.ttft), ("tbt", &w.tbt)] {
                if !(q[0] <= q[1] && q[1] <= q[2]) {
                    errs.push(format!(
                        "{tag}: {name} quantiles not monotone: {} / {} / {}",
                        q[0], q[1], q[2]
                    ));
                }
            }
        }
        for r in &self.attribution {
            if r.secs < 0.0 || !r.secs.is_finite() {
                errs.push(format!(
                    "attribution {}/{}/{}: negative or non-finite seconds {}",
                    r.instance, r.model, r.kind, r.secs
                ));
            }
        }
        for s in &self.sessions {
            let tag = format!("sessions {}", s.model);
            if s.prefix_hits > s.turns {
                errs.push(format!(
                    "{tag}: prefix_hits {} > turns {}",
                    s.prefix_hits, s.turns
                ));
            }
            if !(0.0..=1.0).contains(&s.hit_rate) {
                errs.push(format!("{tag}: hit rate {} outside [0, 1]", s.hit_rate));
            }
            if s.turns > 0 && !(s.latency[0] <= s.latency[1] && s.latency[1] <= s.latency[2]) {
                errs.push(format!(
                    "{tag}: turn-latency quantiles not monotone: {} / {} / {}",
                    s.latency[0], s.latency[1], s.latency[2]
                ));
            }
        }
        if let Some(b) = &self.bench {
            for (name, q) in [("ttft_secs", &b.ttft), ("tbt_secs", &b.tbt)] {
                if !(q[0] <= q[1] && q[1] <= q[2]) {
                    errs.push(format!(
                        "bench: {name} quantiles not monotone: {} / {} / {}",
                        q[0], q[1], q[2]
                    ));
                }
            }
            if b.completed > b.offered {
                errs.push(format!(
                    "bench: completed {} > offered {}",
                    b.completed, b.offered
                ));
            }
            if !b.per_reactor_peak.is_empty()
                && b.per_reactor_peak.iter().all(|&p| p > 0)
                && b.balance < 1.0
            {
                errs.push(format!("bench: reactor balance {} < 1", b.balance));
            }
        }
        errs
    }

    /// Per-kind attribution totals, in the fixed kind order with any
    /// unknown kinds appended (seconds summed across instances and models).
    pub fn kind_totals(&self) -> Vec<(String, f64)> {
        const ORDER: [&str; 5] = [
            "model_switch",
            "kv_swap_out",
            "kv_swap_in",
            "prefill_exec",
            "decode_exec",
        ];
        let mut out: Vec<(String, f64)> = ORDER.iter().map(|k| (k.to_string(), 0.0)).collect();
        for r in &self.attribution {
            match out.iter_mut().find(|(k, _)| *k == r.kind) {
                Some((_, secs)) => *secs += r.secs,
                None => out.push((r.kind.clone(), r.secs)),
            }
        }
        out
    }

    /// Renders the markdown report. Deterministic for a given analysis.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# SLO observatory report\n");

        out.push_str("\n## Per-model SLO attainment (cumulative)\n\n");
        if self.models.is_empty() {
            out.push_str("_no models observed_\n");
        } else {
            out.push_str("| model | requests | tokens | tokens met | attainment |\n");
            out.push_str("|---|---:|---:|---:|---:|\n");
            for m in &self.models {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {:.4} |",
                    m.model, m.requests, m.tokens, m.tokens_met, m.attainment
                );
            }
        }

        out.push_str("\n## Attainment and latency over time\n\n");
        if self.windows.is_empty() {
            out.push_str("_no sealed windows_\n");
        } else {
            out.push_str(
                "| window end (s) | model | requests | attainment | goodput (tok/s) \
                 | ttft p50/p90/p99 (s) | tbt p50/p90/p99 (s) |\n",
            );
            out.push_str("|---:|---|---:|---:|---:|---|---|\n");
            for w in &self.windows {
                let _ = writeln!(
                    out,
                    "| {:.1} | {} | {} | {:.4} | {:.1} | {:.4} / {:.4} / {:.4} | {:.4} / {:.4} / {:.4} |",
                    w.window_end_ns as f64 / 1e9,
                    w.model,
                    w.requests,
                    w.attainment,
                    w.goodput_tps,
                    w.ttft[0],
                    w.ttft[1],
                    w.ttft[2],
                    w.tbt[0],
                    w.tbt[1],
                    w.tbt[2],
                );
            }
        }

        out.push_str("\n## Switch-cost attribution\n\n");
        let total = self.useful_secs + self.overhead_secs;
        if self.attribution.is_empty() {
            out.push_str("_no attributed GPU time_\n");
        } else {
            out.push_str("| kind | seconds | share |\n|---|---:|---:|\n");
            for (kind, secs) in self.kind_totals() {
                let share = if total > 0.0 { secs / total } else { 0.0 };
                let _ = writeln!(out, "| {kind} | {secs:.3} | {:.1}% |", share * 100.0);
            }
            let overhead_share = if total > 0.0 {
                self.overhead_secs / total
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "\nUseful {:.3}s, overhead {:.3}s ({:.1}% of attributed GPU time).\n",
                self.useful_secs,
                self.overhead_secs,
                overhead_share * 100.0
            );
            out.push_str("### Per-instance cells\n\n");
            out.push_str("| instance | model | kind | seconds |\n|---|---|---|---:|\n");
            for r in &self.attribution {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {:.3} |",
                    r.instance, r.model, r.kind, r.secs
                );
            }
        }

        if !self.sessions.is_empty() {
            out.push_str("\n## Agentic sessions\n\n");
            out.push_str(
                "| model | turns | prefix hits | hit rate | max depth \
                 | turn latency p50/p90/p99 (s) |\n",
            );
            out.push_str("|---|---:|---:|---:|---:|---|\n");
            for s in &self.sessions {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {:.4} | {} | {:.4} / {:.4} / {:.4} |",
                    s.model,
                    s.turns,
                    s.prefix_hits,
                    s.hit_rate,
                    s.max_depth,
                    s.latency[0],
                    s.latency[1],
                    s.latency[2],
                );
            }
        }

        if let Some(b) = &self.bench {
            out.push_str("\n## Gateway bench\n\n");
            out.push_str("| metric | value |\n|---|---:|\n");
            let _ = writeln!(out, "| offered requests | {} |", b.offered);
            let _ = writeln!(out, "| completed | {} |", b.completed);
            let _ = writeln!(out, "| rejected (429) | {} |", b.rejected);
            let _ = writeln!(out, "| goodput (tok/s) | {:.1} |", b.goodput_tps);
            let _ = writeln!(
                out,
                "| ttft p50/p90/p99 (s) | {:.4} / {:.4} / {:.4} |",
                b.ttft[0], b.ttft[1], b.ttft[2]
            );
            let _ = writeln!(
                out,
                "| tbt p50/p90/p99 (s) | {:.4} / {:.4} / {:.4} |",
                b.tbt[0], b.tbt[1], b.tbt[2]
            );
            if !b.per_reactor_peak.is_empty() {
                let peaks: Vec<String> = b.per_reactor_peak.iter().map(|p| p.to_string()).collect();
                let _ = writeln!(out, "| per-reactor peak streams | {} |", peaks.join(", "));
                let _ = writeln!(out, "| reactor balance (max/min) | {:.2} |", b.balance);
            }
        }

        out.push_str("\n## Consistency\n\n");
        let errs = self.consistency_errors();
        if errs.is_empty() {
            out.push_str(
                "All checks passed: quantiles monotone (p50 \u{2264} p90 \u{2264} p99), \
                 attainment in [0, 1].\n",
            );
        } else {
            for e in &errs {
                let _ = writeln!(out, "- **FAIL** {e}");
            }
        }
        out
    }

    /// Renders the JSON report (the machine-readable twin of the markdown).
    pub fn to_json(&self) -> Value {
        fn num(v: f64) -> Value {
            Value::F64(v)
        }
        let models: Vec<Value> = self
            .models
            .iter()
            .map(|m| {
                let mut o = Map::new();
                o.insert("model".into(), Value::String(m.model.clone()));
                o.insert("requests".into(), Value::U64(m.requests));
                o.insert("tokens".into(), Value::U64(m.tokens));
                o.insert("tokens_met".into(), Value::U64(m.tokens_met));
                o.insert("attainment".into(), num(m.attainment));
                Value::Object(o)
            })
            .collect();
        let windows: Vec<Value> = self
            .windows
            .iter()
            .map(|w| {
                let mut o = Map::new();
                o.insert("window_end_ns".into(), Value::U64(w.window_end_ns));
                o.insert("model".into(), Value::String(w.model.clone()));
                o.insert("requests".into(), Value::U64(w.requests));
                o.insert("tokens".into(), Value::U64(w.tokens));
                o.insert("tokens_met".into(), Value::U64(w.tokens_met));
                o.insert("attainment".into(), num(w.attainment));
                o.insert("goodput_tps".into(), num(w.goodput_tps));
                for (k, v) in [
                    ("ttft_p50", w.ttft[0]),
                    ("ttft_p90", w.ttft[1]),
                    ("ttft_p99", w.ttft[2]),
                    ("tbt_p50", w.tbt[0]),
                    ("tbt_p90", w.tbt[1]),
                    ("tbt_p99", w.tbt[2]),
                ] {
                    o.insert(k.into(), num(v));
                }
                Value::Object(o)
            })
            .collect();
        let kinds: Vec<Value> = self
            .kind_totals()
            .into_iter()
            .map(|(k, s)| {
                let mut o = Map::new();
                o.insert("kind".into(), Value::String(k));
                o.insert("secs".into(), num(s));
                Value::Object(o)
            })
            .collect();
        let cells: Vec<Value> = self
            .attribution
            .iter()
            .map(|r| {
                let mut o = Map::new();
                o.insert("instance".into(), Value::String(r.instance.clone()));
                o.insert("model".into(), Value::String(r.model.clone()));
                o.insert("kind".into(), Value::String(r.kind.clone()));
                o.insert("secs".into(), num(r.secs));
                Value::Object(o)
            })
            .collect();
        let sessions: Vec<Value> = self
            .sessions
            .iter()
            .map(|s| {
                let mut o = Map::new();
                o.insert("model".into(), Value::String(s.model.clone()));
                o.insert("turns".into(), Value::U64(s.turns));
                o.insert("prefix_hits".into(), Value::U64(s.prefix_hits));
                o.insert("max_depth".into(), Value::U64(s.max_depth));
                o.insert("prefix_hit_rate".into(), num(s.hit_rate));
                for (k, v) in [
                    ("turn_latency_p50", s.latency[0]),
                    ("turn_latency_p90", s.latency[1]),
                    ("turn_latency_p99", s.latency[2]),
                ] {
                    o.insert(k.into(), num(v));
                }
                Value::Object(o)
            })
            .collect();
        let mut attribution = Map::new();
        attribution.insert("kinds".into(), Value::Array(kinds));
        attribution.insert("cells".into(), Value::Array(cells));
        attribution.insert("useful_secs".into(), num(self.useful_secs));
        attribution.insert("overhead_secs".into(), num(self.overhead_secs));
        let bench = match &self.bench {
            Some(b) => {
                let mut o = Map::new();
                o.insert("offered".into(), Value::U64(b.offered));
                o.insert("completed".into(), Value::U64(b.completed));
                o.insert("rejected".into(), Value::U64(b.rejected));
                o.insert("goodput_tps".into(), num(b.goodput_tps));
                for (k, v) in [
                    ("ttft_p50", b.ttft[0]),
                    ("ttft_p90", b.ttft[1]),
                    ("ttft_p99", b.ttft[2]),
                    ("tbt_p50", b.tbt[0]),
                    ("tbt_p90", b.tbt[1]),
                    ("tbt_p99", b.tbt[2]),
                ] {
                    o.insert(k.into(), num(v));
                }
                o.insert(
                    "per_reactor_peak".into(),
                    Value::Array(b.per_reactor_peak.iter().map(|&p| Value::U64(p)).collect()),
                );
                o.insert("reactor_balance".into(), num(b.balance));
                Value::Object(o)
            }
            None => Value::Null,
        };
        let errs = self.consistency_errors();
        let mut consistency = Map::new();
        consistency.insert("ok".into(), Value::Bool(errs.is_empty()));
        consistency.insert(
            "errors".into(),
            Value::Array(errs.into_iter().map(Value::String).collect()),
        );
        let mut root = Map::new();
        root.insert("models".into(), Value::Array(models));
        root.insert("windows".into(), Value::Array(windows));
        root.insert("sessions".into(), Value::Array(sessions));
        root.insert("attribution".into(), Value::Object(attribution));
        root.insert("bench".into(), bench);
        root.insert("consistency".into(), Value::Object(consistency));
        Value::Object(root)
    }
}

/// Analyzes a run result's telemetry directly (in-process wiring for the
/// bench/figure binaries): renders the observatory + ledger through the
/// same document format the gateway serves, so every consumer exercises
/// one parser.
pub fn analyze_run(r: &aegaeon::RunResult) -> Result<Analysis, String> {
    let doc = aegaeon_telemetry::slo_json(&r.telemetry.slo, &r.telemetry.attrib);
    Analysis::from_slo_text(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLO_DOC: &str = r#"{"models":[{"model":"m0","requests":2,"tokens":10,"tokens_met":9,"attainment":0.9}],
        "windows":[{"window_end_ns":10000000000,"model":"m0","requests":2,"tokens":10,"tokens_met":9,
        "ttft_p50":0.1,"ttft_p90":0.2,"ttft_p99":0.3,"tbt_p50":0.01,"tbt_p90":0.02,"tbt_p99":0.03,
        "attainment":0.9,"goodput_tps":1.0}],
        "attribution":[{"instance":"p0","model":"m0","kind":"model_switch","secs":1.5},
        {"instance":"d0","model":"m0","kind":"decode_exec","secs":4.5}],
        "useful_secs":4.5,"overhead_secs":1.5}"#;

    #[test]
    fn parses_object_document() {
        let a = Analysis::from_slo_text(SLO_DOC).unwrap();
        assert_eq!(a.models.len(), 1);
        assert_eq!(a.windows.len(), 1);
        assert_eq!(a.attribution.len(), 2);
        assert_eq!(a.useful_secs, 4.5);
        assert!(a.consistency_errors().is_empty());
        let md = a.to_markdown();
        assert!(md.contains("| m0 | 2 | 10 | 9 | 0.9000 |"));
        assert!(md.contains("model_switch"));
        assert!(md.contains("All checks passed"));
        assert_eq!(md, a.to_markdown(), "markdown must be deterministic");
    }

    #[test]
    fn parses_jsonl_document() {
        let lines = "\
{\"type\":\"slo_cum\",\"model\":0,\"requests\":2,\"tokens\":10,\"tokens_met\":9,\"attainment\":0.9}\n\
{\"type\":\"slo_point\",\"window_end_ns\":10,\"model\":0,\"requests\":2,\"tokens\":10,\"tokens_met\":9,\
\"ttft_p50\":0.1,\"ttft_p90\":0.2,\"ttft_p99\":0.3,\"tbt_p50\":0.01,\"tbt_p90\":0.02,\"tbt_p99\":0.03,\
\"attainment\":0.9,\"goodput_tps\":1.0}\n\
{\"type\":\"attrib\",\"instance\":\"p0\",\"model\":0,\"kind\":\"prefill_exec\",\"secs\":2.0}\n\
{\"type\":\"total\",\"metric\":\"x\",\"value\":1}\n";
        let a = Analysis::from_slo_text(lines).unwrap();
        assert_eq!(a.models.len(), 1);
        assert_eq!(a.models[0].model, "m0");
        assert_eq!(a.windows.len(), 1);
        assert_eq!(a.attribution.len(), 1);
        assert_eq!(a.useful_secs, 2.0);
        assert_eq!(a.overhead_secs, 0.0);
    }

    #[test]
    fn consistency_gate_catches_violations() {
        let bad = r#"{"models":[{"model":"m0","requests":1,"tokens":5,"tokens_met":9,"attainment":1.8}],
            "windows":[{"window_end_ns":1,"model":"m0","requests":1,"tokens":5,"tokens_met":5,
            "ttft_p50":0.5,"ttft_p90":0.2,"ttft_p99":0.3,"tbt_p50":0.0,"tbt_p90":0.0,"tbt_p99":0.0,
            "attainment":1.0,"goodput_tps":1.0}],
            "attribution":[],"useful_secs":0,"overhead_secs":0}"#;
        let a = Analysis::from_slo_text(bad).unwrap();
        let errs = a.consistency_errors();
        assert!(errs.iter().any(|e| e.contains("outside [0, 1]")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("tokens_met")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("not monotone")), "{errs:?}");
        let md = a.to_markdown();
        assert!(md.contains("**FAIL**"));
        match &a.to_json() {
            Value::Object(root) => match root.get("consistency") {
                Some(Value::Object(c)) => assert_eq!(c.get("ok"), Some(&Value::Bool(false))),
                other => panic!("bad consistency: {other:?}"),
            },
            other => panic!("bad root: {other:?}"),
        }
    }

    #[test]
    fn session_rows_parse_render_and_gate() {
        // Object form carries a `sessions` array.
        let doc = r#"{"models":[],"windows":[],
            "sessions":[{"model":"m1","turns":8,"prefix_hits":5,"max_depth":4,
            "prefix_hit_rate":0.625,"turn_latency_p50":0.4,"turn_latency_p90":0.9,
            "turn_latency_p99":1.2}],
            "attribution":[],"useful_secs":0,"overhead_secs":0}"#;
        let a = Analysis::from_slo_text(doc).unwrap();
        assert_eq!(a.sessions.len(), 1);
        assert_eq!(a.sessions[0].prefix_hits, 5);
        assert!(a.consistency_errors().is_empty());
        let md = a.to_markdown();
        assert!(md.contains("## Agentic sessions"));
        assert!(md.contains("| m1 | 8 | 5 | 0.6250 | 4 | 0.4000 / 0.9000 / 1.2000 |"));
        match &a.to_json() {
            Value::Object(root) => match root.get("sessions") {
                Some(Value::Array(rows)) => assert_eq!(rows.len(), 1),
                other => panic!("bad sessions: {other:?}"),
            },
            other => panic!("bad root: {other:?}"),
        }

        // JSONL form carries `session_turns` lines; the gate catches
        // impossible hit counts and non-monotone latency quantiles.
        let lines = "\
{\"type\":\"session_turns\",\"model\":1,\"turns\":3,\"prefix_hits\":7,\"max_depth\":3,\
\"prefix_hit_rate\":2.3,\"turn_latency_p50\":0.9,\"turn_latency_p90\":0.2,\"turn_latency_p99\":0.3}\n";
        let a = Analysis::from_slo_text(lines).unwrap();
        assert_eq!(a.sessions.len(), 1);
        assert_eq!(a.sessions[0].model, "m1");
        let errs = a.consistency_errors();
        assert!(errs.iter().any(|e| e.contains("prefix_hits 7 > turns 3")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("hit rate")), "{errs:?}");
        assert!(
            errs.iter().any(|e| e.contains("turn-latency quantiles not monotone")),
            "{errs:?}"
        );

        // Session-free documents stay session-free.
        assert!(Analysis::from_slo_text(SLO_DOC).unwrap().sessions.is_empty());
    }

    #[test]
    fn bench_report_attaches() {
        let bench: Value = serde_json::from_str(
            r#"{"offered_requests":100,"completed":98,"rejected":2,
            "goodput_tokens_per_sec":1234.5,
            "ttft_secs":{"p50":0.1,"p90":0.2,"p99":0.4},
            "tbt_secs":{"p50":0.01,"p90":0.02,"p99":0.04},
            "per_reactor_peak_streams":[10,12],
            "reactor_balance_max_over_min":1.2}"#,
        )
        .unwrap();
        let a = Analysis::from_slo_text(SLO_DOC)
            .unwrap()
            .with_bench_value(&bench);
        assert!(a.consistency_errors().is_empty());
        let md = a.to_markdown();
        assert!(md.contains("## Gateway bench"));
        assert!(md.contains("| per-reactor peak streams | 10, 12 |"));
        assert!(md.contains("| reactor balance (max/min) | 1.20 |"));
    }
}
