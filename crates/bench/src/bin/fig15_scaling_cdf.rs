//! Figure 15: CDFs of (left) preemptive auto-scaling latency per model
//! size and (right) per-request KV-cache management overhead per setup.
//!
//! Paper: ~50% of scale-ups are near-instantaneous thanks to prefetching;
//! the rest complete in under one second; per-request KV overhead stays
//! below one second.
//!
//! The eight independent Aegaeon runs (three model sizes + five setups)
//! execute through [`sweep::map`]; the CDFs are summarized afterwards.

use aegaeon::{AegaeonConfig, RunResult, ServingSystem};
use aegaeon_bench::{banner, dump_json, sweep, uniform_trace, HORIZON_SECS, SEED};
use aegaeon_metrics::Cdf;
use aegaeon_model::Zoo;
use aegaeon_workload::LengthDist;

fn cdf_points(c: &mut Cdf) -> Vec<(f64, f64)> {
    [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
        .iter()
        .map(|&q| (c.quantile(q), q))
        .collect()
}

fn main() {
    banner("fig15_scaling_cdf", "Figure 15 (auto-scaling and KV-sync CDFs)");

    // Left: auto-scale latency per model size (workloads of one size class).
    let zoo = Zoo::standard();
    let sizes = [("7B", "Qwen-7B"), ("9B", "Yi-9B"), ("13B", "LLaMA-13B")];
    let left_runs: Vec<RunResult> = sweep::map(&sizes, |&(_, base)| {
        let spec = zoo.get(base).expect("zoo model");
        // Enough replicas that decoding work lists rotate several models,
        // giving the prefetcher a "next model" to hide (the paper measures
        // during its multi-model setups).
        let models = Zoo::replicate(&[spec], 48);
        let trace = uniform_trace(48, 0.12, HORIZON_SECS, SEED, LengthDist::sharegpt());
        ServingSystem::run(&AegaeonConfig::paper_testbed(), &models, &trace)
    });
    println!("\n(left) auto-scaling latency CDF by model size:");
    let mut json_left = Vec::new();
    for ((label, _), r) in sizes.iter().zip(&left_runs) {
        let mut c = Cdf::new();
        for &x in &r.scale_latencies {
            c.push(x);
        }
        let pts = cdf_points(&mut c);
        let near_instant = c.prob_at_most(0.1);
        print!("  {label}: ");
        for (x, q) in &pts {
            print!("p{:.0}={:.2}s ", q * 100.0, x);
        }
        println!("| <=0.1s: {:.0}% (prefetched)", near_instant * 100.0);
        json_left.push(serde_json::json!({
            "size": label, "cdf": pts, "near_instant_frac": near_instant,
        }));
    }

    // Right: per-request KV-cache management overhead per setup.
    let setups = [(16usize, 0.1f64), (32, 0.1), (64, 0.1), (16, 0.5), (32, 0.5)];
    let right_runs: Vec<RunResult> = sweep::map(&setups, |&(n, rps)| {
        let models = aegaeon_bench::market_models(n);
        let trace = uniform_trace(n, rps, HORIZON_SECS, SEED + n as u64, LengthDist::sharegpt());
        ServingSystem::run(&AegaeonConfig::paper_testbed(), &models, &trace)
    });
    println!("\n(right) per-request KV sync overhead CDF:");
    let mut json_right = Vec::new();
    for ((n, rps), r) in setups.iter().zip(&right_runs) {
        let mut c = Cdf::new();
        for &x in &r.kv_sync_per_request {
            c.push(x);
        }
        let pts = cdf_points(&mut c);
        print!("  {n}x{rps}: ");
        for (x, q) in &pts {
            print!("p{:.0}={:.3}s ", q * 100.0, x);
        }
        println!("| <=1s: {:.1}%", c.prob_at_most(1.0) * 100.0);
        json_right.push(serde_json::json!({
            "setup": format!("{n}x{rps}"), "cdf": pts,
            "under_1s": c.prob_at_most(1.0),
        }));
    }
    dump_json(
        "fig15_scaling_cdf",
        &serde_json::json!({ "scale_latency": json_left, "kv_sync": json_right }),
    );
}
