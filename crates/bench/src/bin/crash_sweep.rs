//! Seeded crash-sweep harness: chaos engine × invariant auditor.
//!
//! Runs hundreds of independently-seeded fault scenarios — instance
//! crashes, transient link degradation, staging-buffer OOM windows, proxy
//! stalls — against Aegaeon *and* both baselines with the always-on
//! invariant auditor installed, and fails (non-zero exit) if any scenario
//! violates an invariant or loses a request. Every scenario is a pure
//! function of `(base seed, scenario index)`, so a failure reproduces
//! exactly from its printed `(seed, plan)` line:
//!
//! ```text
//! cargo run --release --bin crash_sweep -- --seed <seed> --plan "<spec>"
//! ```
//!
//! Usage:
//!   crash_sweep [--scenarios N] [--seed BASE] [--scenario K]
//!   crash_sweep --seed SEED --plan "SPEC"   (single-scenario reproduction)

use aegaeon::chaos::FaultPlan;
use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_baselines::{MuxServe, ServerlessLlm, SllmConfig};
use aegaeon_bench::{analyze, sweep};
use aegaeon_bench::{banner, market_models, uniform_trace, SEED};
use aegaeon_sim::{SimDur, SimRng};
use aegaeon_workload::LengthDist;

/// Scenario shape: a small pool under light multi-model load, short enough
/// that 200 scenarios × 3 systems finish in CI, long enough that crashes
/// land mid-request.
const N_MODELS: usize = 3;
const PER_MODEL_RATE: f64 = 0.04;
const HORIZON: f64 = 80.0;
const DRAIN_SECS: u64 = 500;

struct Outcome {
    scenario: u64,
    seed: u64,
    plan: String,
    events_checked: u64,
    failures: Vec<String>,
}

/// Draws the scenario's fault plan from its derived seed: every process is
/// exercised across the sweep, with intensities varied per scenario.
fn scenario_plan(seed: u64) -> FaultPlan {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x00c7_a05c_11a0_5eed);
    FaultPlan {
        seed,
        crashes: Vec::new(),
        crash_rate_prefill: rng.range_f64(0.0, 0.015),
        crash_rate_decode: rng.range_f64(0.0, 0.02),
        link_rate: rng.range_f64(0.0, 0.05),
        link_factor: rng.range_f64(0.2, 0.8),
        link_secs: rng.range_f64(1.0, 8.0),
        stage_oom_rate: rng.range_f64(0.0, 0.04),
        stage_oom_secs: rng.range_f64(2.0, 8.0),
        stall_rate: rng.range_f64(0.0, 0.03),
        stall_secs: rng.range_f64(0.2, 2.0),
    }
}

/// Runs one scenario across all three systems and collects any failures.
fn run_scenario(scenario: u64, seed: u64, plan: &FaultPlan) -> Outcome {
    let mut failures = Vec::new();
    let mut events_checked = 0u64;
    let models = market_models(N_MODELS);
    let trace = uniform_trace(N_MODELS, PER_MODEL_RATE, HORIZON, seed, LengthDist::sharegpt());
    let total = trace.len();
    let repro = format!("--seed {seed} --plan \"{plan}\"");

    // Aegaeon under the full fault plan.
    let mut cfg = AegaeonConfig::small_testbed(2, 3);
    cfg.seed = seed;
    cfg.faults = plan.clone();
    cfg.drain_window = SimDur::from_secs(DRAIN_SECS);
    let (r, report) = ServingSystem::run_audited(&cfg, &models, &trace);
    events_checked += report.events_checked;
    if !report.ok() {
        failures.push(format!("aegaeon audit ({repro}):\n{report}"));
    }
    if r.completed != total {
        failures.push(format!(
            "aegaeon completed {}/{} requests ({repro})",
            r.completed, total
        ));
    }

    // Baselines under the same trace (no fault wiring of their own, but the
    // same invariant suite, seeded identically).
    let cluster = cfg.cluster.clone();
    let mut scfg = SllmConfig::new(cluster.clone());
    scfg.world.seed = seed;
    scfg.world.drain_window = SimDur::from_secs(DRAIN_SECS);
    let (sr, sreport) = ServerlessLlm::run_audited(&scfg, &models, &trace);
    events_checked += sreport.events_checked;
    if !sreport.ok() {
        failures.push(format!("serverless-llm audit ({repro}):\n{sreport}"));
    }
    if sr.completed + sr.rejected != total {
        failures.push(format!(
            "serverless-llm served {}+{} of {} requests ({repro})",
            sr.completed, sr.rejected, total
        ));
    }

    let mut mcfg = aegaeon_baselines::engine_loop::WorldConfig::sllm_default(cluster);
    mcfg.seed = seed;
    mcfg.drain_window = SimDur::from_secs(DRAIN_SECS);
    let rates = vec![PER_MODEL_RATE; N_MODELS];
    let (mr, mreport) = MuxServe::run_audited(&mcfg, &models, &rates, &trace);
    events_checked += mreport.events_checked;
    if !mreport.ok() {
        failures.push(format!("muxserve audit ({repro}):\n{mreport}"));
    }
    if mr.completed + mr.rejected != total {
        failures.push(format!(
            "muxserve served {}+{} of {} requests ({repro})",
            mr.completed, mr.rejected, total
        ));
    }

    Outcome {
        scenario,
        seed,
        plan: plan.to_string(),
        events_checked,
        failures,
    }
}

/// Re-runs a failing scenario's Aegaeon leg with telemetry + schedule
/// tracing enabled and dumps a Chrome trace for post-mortem inspection in
/// Perfetto. Telemetry is observer-only, so the re-run reproduces the
/// failing execution exactly.
fn dump_failing_trace(scenario: u64, seed: u64, plan: &FaultPlan) -> Option<String> {
    let models = market_models(N_MODELS);
    let trace = uniform_trace(N_MODELS, PER_MODEL_RATE, HORIZON, seed, LengthDist::sharegpt());
    let mut cfg = AegaeonConfig::small_testbed(2, 3);
    cfg.seed = seed;
    cfg.faults = plan.clone();
    cfg.drain_window = SimDur::from_secs(DRAIN_SECS);
    cfg.trace_schedule = true;
    cfg.telemetry = aegaeon_telemetry::TelemetrySpec::enabled();
    let r = ServingSystem::run(&cfg, &models, &trace);
    let json =
        aegaeon_telemetry::chrome_trace(&r.schedule, &r.telemetry.spans, &r.telemetry.metrics);
    let path = format!("crash_scenario_{scenario}_seed{seed}.trace.json");
    std::fs::write(&path, json).ok()?;
    Some(path)
}

/// Re-runs the base scenario's Aegaeon leg with the SLO observatory on and
/// writes the analyzer artifacts under `target/experiments/`: the raw
/// `/v1/slo`-shaped document (for `aegaeon-analyze --check` in CI) and the
/// rendered markdown report. Telemetry is observer-only, so the re-run
/// matches the audited execution exactly. Exits non-zero on any internal
/// consistency failure (malformed quantiles or attainment out of range).
fn dump_slo_report(base: u64) {
    let seed = sweep::derive_seed(base, 0);
    let plan = scenario_plan(seed);
    let models = market_models(N_MODELS);
    let trace = uniform_trace(N_MODELS, PER_MODEL_RATE, HORIZON, seed, LengthDist::sharegpt());
    let mut cfg = AegaeonConfig::small_testbed(2, 3);
    cfg.seed = seed;
    cfg.faults = plan;
    cfg.drain_window = SimDur::from_secs(DRAIN_SECS);
    cfg.telemetry = aegaeon_telemetry::TelemetrySpec::enabled();
    let r = ServingSystem::run(&cfg, &models, &trace);

    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let slo_path = dir.join("crash_sweep.slo.json");
    let doc = aegaeon_telemetry::slo_json(&r.telemetry.slo, &r.telemetry.attrib);
    if std::fs::write(&slo_path, &doc).is_ok() {
        println!("[slo] {}", slo_path.display());
    }
    match analyze::analyze_run(&r) {
        Ok(a) => {
            let md_path = dir.join("crash_sweep.slo.md");
            if std::fs::write(&md_path, a.to_markdown()).is_ok() {
                println!("[slo] {}", md_path.display());
            }
            let errs = a.consistency_errors();
            if !errs.is_empty() {
                for e in &errs {
                    eprintln!("[consistency] {e}");
                }
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("[slo] analysis failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_args() -> (usize, u64, Option<u64>, Option<FaultPlan>) {
    let mut scenarios = 200usize;
    let mut base = SEED;
    let mut only: Option<u64> = None;
    let mut plan: Option<FaultPlan> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("missing value after {}", args[i]))
        };
        match args[i].as_str() {
            "--scenarios" => scenarios = val(i).parse().expect("--scenarios N"),
            "--seed" => base = val(i).parse().expect("--seed BASE"),
            "--scenario" => only = Some(val(i).parse().expect("--scenario K")),
            "--plan" => plan = Some(val(i).parse().expect("--plan SPEC")),
            other => panic!("unknown argument {other}"),
        }
        i += 2;
    }
    (scenarios, base, only, plan)
}

fn main() {
    banner("crash_sweep", "chaos engine + invariant auditor (seeded fault sweep)");
    let (scenarios, base, only, plan) = parse_args();

    // Reproduction mode: one exact (seed, plan) scenario, verbose.
    if let Some(plan) = plan {
        println!("reproducing seed={base} plan=\"{plan}\"");
        let o = run_scenario(0, base, &plan);
        if o.failures.is_empty() {
            println!("clean: {} events audited, no violations", o.events_checked);
            return;
        }
        for f in &o.failures {
            eprintln!("FAIL {f}");
        }
        if let Some(path) = dump_failing_trace(0, base, &plan) {
            eprintln!("  telemetry trace dumped to {path} (open in Perfetto)");
        }
        std::process::exit(1);
    }

    let points: Vec<u64> = match only {
        Some(k) => vec![k],
        None => (0..scenarios as u64).collect(),
    };
    println!(
        "{} scenario(s) from base seed {base} ({} threads; override with {})",
        points.len(),
        sweep::threads(),
        sweep::THREADS_ENV
    );

    let outcomes = sweep::map(&points, |&i| {
        let seed = sweep::derive_seed(base, i);
        let plan = scenario_plan(seed);
        run_scenario(i, seed, &plan)
    });

    let total_events: u64 = outcomes.iter().map(|o| o.events_checked).sum();
    let failed: Vec<&Outcome> = outcomes.iter().filter(|o| !o.failures.is_empty()).collect();
    for o in &failed {
        eprintln!(
            "scenario {} FAILED — reproduce with: cargo run --release --bin crash_sweep -- --seed {} --plan \"{}\"",
            o.scenario, o.seed, o.plan
        );
        for f in &o.failures {
            eprintln!("  {f}");
        }
        let plan: FaultPlan = o.plan.parse().expect("round-trips");
        if let Some(path) = dump_failing_trace(o.scenario, o.seed, &plan) {
            eprintln!("  telemetry trace dumped to {path} (open in Perfetto)");
        }
    }
    println!(
        "{}/{} scenarios clean; {} events audited across {} runs",
        outcomes.len() - failed.len(),
        outcomes.len(),
        total_events,
        outcomes.len() * 3
    );
    if !failed.is_empty() {
        std::process::exit(1);
    }
    // Clean sweep: leave the SLO-under-chaos artifacts for CI to verify.
    dump_slo_report(base);
}
