//! KV-path ablations: §5.3 fine-grained synchronization versus blocking
//! transfers, and the KV-residency extension (keep preempted batches'
//! caches on the GPU while headroom lasts) versus the paper's
//! offload-on-preemption.
//!
//! The fine-sync benefit scales with KV volume, so this uses the long-
//! context dataset (ShareGPT-ix2) under decoding rotation pressure.

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{banner, dump_json, market_models, uniform_trace, HORIZON_SECS, SEED};
use aegaeon_metrics::report::table;
use aegaeon_workload::{LengthDist, SloSpec};

fn main() {
    banner("ablation_kv", "KV-path ablations (§5.3 + residency extension)");
    let n = 48;
    let models = market_models(n);
    let trace = uniform_trace(n, 0.12, HORIZON_SECS, SEED, LengthDist::sharegpt_ix2());
    let slo = SloSpec::paper_default();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, fine_sync, residency) in [
        ("blocking KV transfers (T2-sync)", false, false),
        ("fine-grained sync (paper, T3)", true, false),
        ("T3 + KV residency extension", true, true),
    ] {
        let mut cfg = AegaeonConfig::paper_testbed();
        cfg.opts.fine_sync = fine_sync;
        cfg.kv_residency = residency;
        let r = ServingSystem::run(&cfg, &models, &trace);
        let att = r.attainment(slo);
        let f = r.breakdown.fractions();
        let data_pct = f[5] * 100.0;
        let swaps_per_req = r.swaps as f64 / r.total_requests.max(1) as f64;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", att.percent()),
            format!("{data_pct:.2}%"),
            format!("{swaps_per_req:.1}"),
            format!("{}", r.swaps),
        ]);
        json.push(serde_json::json!({
            "config": label,
            "attainment": att.ratio(),
            "data_overhead_share": f[5],
            "swaps": r.swaps,
        }));
    }
    print!(
        "{}",
        table(
            &["configuration", "SLO att.", "data-ovh share", "swaps/req", "swaps"],
            &rows
        )
    );
    println!("\npaper: fine-grained synchronization decouples KV transfers from the");
    println!("critical path (Figure 10); the residency extension additionally avoids");
    println!("round-trip swaps whenever the unified GPU cache has headroom.");
    dump_json("ablation_kv", &serde_json::json!(json));
}
