//! Simulator throughput report: raw event-dispatch speed of the new indexed
//! 4-ary event heap versus the retained `BinaryHeap` reference, events/sec
//! of a real serving run (serial), and the parallel sweep harness speedup.
//!
//! Writes `BENCH_sim_throughput.json` at the repository root so the numbers
//! ride along with the code they describe.

use std::time::Instant;

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{banner, market_models, sweep, uniform_trace, HORIZON_SECS, SEED};
use aegaeon_sim::{BinaryHeapQueue, EventQueue, SimDur, ThroughputReport, Timeline};
use aegaeon_workload::LengthDist;

/// Standing event population for the synthetic dispatch benchmark.
const STANDING: u64 = 4096;
/// Dispatches measured per synthetic run.
const DISPATCHES: u64 = 4_000_000;

/// One pop + one push per step against a standing population — the DES
/// steady state — returning events/sec. Identical work for both queues.
macro_rules! drive_queue {
    ($queue:expr) => {{
        let mut q = $queue;
        for i in 0..STANDING {
            q.schedule_after(SimDur::from_nanos(i.wrapping_mul(2654435761) % 100_000), i);
        }
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..DISPATCHES {
            let (_, e) = q.pop().expect("standing population");
            acc = acc.wrapping_add(e).wrapping_mul(6364136223846793005);
            q.schedule_after(SimDur::from_nanos(acc % 100_000), e);
        }
        let wall = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        DISPATCHES as f64 / wall
    }};
}

fn main() {
    banner("bench_throughput", "simulator hot-path throughput");

    // --- Synthetic queue dispatch throughput --------------------------------
    // Warm-up pass, then the measured pass.
    let _ = drive_queue!(EventQueue::<u64>::new());
    let fast_eps = drive_queue!(EventQueue::<u64>::new());
    let _ = drive_queue!(BinaryHeapQueue::<u64>::new());
    let ref_eps = drive_queue!(BinaryHeapQueue::<u64>::new());
    let speedup = fast_eps / ref_eps;
    println!("queue dispatch (standing {STANDING}, {DISPATCHES} events):");
    println!("  indexed 4-ary heap : {:.2}M events/s", fast_eps / 1e6);
    println!("  BinaryHeap (ref)   : {:.2}M events/s", ref_eps / 1e6);
    println!("  speedup            : {speedup:.2}x");

    // --- Real serving run (serial) ------------------------------------------
    let models = market_models(24);
    let trace = uniform_trace(24, 0.2, HORIZON_SECS, SEED, LengthDist::sharegpt());
    let cfg = AegaeonConfig::paper_testbed();
    let start = Instant::now();
    let r = ServingSystem::run(&cfg, &models, &trace);
    let wall = start.elapsed().as_secs_f64();
    let serving = ThroughputReport::new(r.events, HORIZON_SECS, wall);
    println!("\nserving run (24 models, RPS 0.2, {HORIZON_SECS:.0}s horizon):");
    println!(
        "  {} events in {:.2}s = {:.2}M events/s, {:.2}ms wall per sim-s",
        serving.events,
        serving.wall_secs,
        serving.events_per_sec() / 1e6,
        serving.wall_per_sim_sec() * 1e3,
    );

    // --- Parallel sweep speedup ---------------------------------------------
    let points: Vec<u64> = (0..8).collect();
    let eval = |&i: &u64| {
        let models = market_models(16);
        let trace = uniform_trace(
            16,
            0.2,
            HORIZON_SECS / 2.0,
            sweep::derive_seed(SEED, i),
            LengthDist::sharegpt(),
        );
        ServingSystem::run(&AegaeonConfig::paper_testbed(), &models, &trace).completed
    };
    let start = Instant::now();
    let serial = sweep::map_with_threads(&points, 1, eval);
    let serial_secs = start.elapsed().as_secs_f64();
    // At least two workers so the threaded path is what gets measured, even
    // on single-core machines (where the honest speedup is ~1x).
    let threads = sweep::threads().clamp(2, points.len());
    let start = Instant::now();
    let parallel = sweep::map_with_threads(&points, threads, eval);
    let parallel_secs = start.elapsed().as_secs_f64();
    assert_eq!(serial, parallel, "parallel sweep must be bit-identical");
    let sweep_speedup = serial_secs / parallel_secs;
    println!("\nsweep of {} serving runs:", points.len());
    println!("  serial              : {serial_secs:.2}s");
    println!("  {threads:>2} threads          : {parallel_secs:.2}s  ({sweep_speedup:.2}x)");

    // --- Report -------------------------------------------------------------
    let json = serde_json::json!({
        "queue_microbench": serde_json::json!({
            "standing_events": STANDING,
            "dispatches": DISPATCHES,
            "indexed_d4_events_per_sec": fast_eps,
            "binary_heap_ref_events_per_sec": ref_eps,
            "speedup": speedup,
        }),
        "serving_serial": serde_json::json!({
            "events": serving.events,
            "sim_secs": serving.sim_secs,
            "wall_secs": serving.wall_secs,
            "events_per_sec": serving.events_per_sec(),
            "wall_per_sim_sec": serving.wall_per_sim_sec(),
        }),
        "parallel_sweep": serde_json::json!({
            "points": points.len() as u64,
            "threads": threads as u64,
            "serial_secs": serial_secs,
            "parallel_secs": parallel_secs,
            "speedup": sweep_speedup,
        }),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_throughput.json");
    match serde_json::to_string_pretty(&json) {
        Ok(s) => {
            std::fs::write(path, s + "\n").expect("write BENCH_sim_throughput.json");
            println!("\n[json] {path}");
        }
        Err(e) => eprintln!("failed to serialize report: {e}"),
    }
}
