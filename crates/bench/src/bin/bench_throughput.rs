//! Simulator throughput report: raw event-dispatch speed of the new indexed
//! 4-ary event heap versus the retained `BinaryHeap` reference, events/sec
//! of a real serving run (serial), the sharded parallel engine's speedup
//! on one big run, and the parallel sweep harness speedup.
//!
//! Speedup numbers are only as honest as the host: `host_parallelism` is
//! recorded alongside them, and on a single-core machine the expected
//! speedup is ~1x (the CI bench job runs this on multi-core runners and
//! asserts the gates there).
//!
//! Writes `BENCH_sim_throughput.json` at the repository root so the numbers
//! ride along with the code they describe.

use std::time::Instant;

use aegaeon::shard::run_sharded;
use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{banner, market_models, sweep, uniform_trace, HORIZON_SECS, SEED};
use aegaeon_gpu::{ClusterSpec, NodeSpec};
use aegaeon_sim::{BinaryHeapQueue, EventQueue, SimDur, ThroughputReport, Timeline};
use aegaeon_workload::LengthDist;

/// Standing event population for the synthetic dispatch benchmark.
const STANDING: u64 = 4096;
/// Dispatches measured per synthetic run.
const DISPATCHES: u64 = 4_000_000;

/// One pop + one push per step against a standing population — the DES
/// steady state — returning events/sec. Identical work for both queues.
macro_rules! drive_queue {
    ($queue:expr) => {{
        let mut q = $queue;
        for i in 0..STANDING {
            q.schedule_after(SimDur::from_nanos(i.wrapping_mul(2654435761) % 100_000), i);
        }
        let start = Instant::now();
        let mut acc = 0u64;
        for _ in 0..DISPATCHES {
            let (_, e) = q.pop().expect("standing population");
            acc = acc.wrapping_add(e).wrapping_mul(6364136223846793005);
            q.schedule_after(SimDur::from_nanos(acc % 100_000), e);
        }
        let wall = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        DISPATCHES as f64 / wall
    }};
}

fn main() {
    banner("bench_throughput", "simulator hot-path throughput");

    // --- Synthetic queue dispatch throughput --------------------------------
    // Warm-up pass, then the measured pass.
    let _ = drive_queue!(EventQueue::<u64>::new());
    let fast_eps = drive_queue!(EventQueue::<u64>::new());
    let _ = drive_queue!(BinaryHeapQueue::<u64>::new());
    let ref_eps = drive_queue!(BinaryHeapQueue::<u64>::new());
    let speedup = fast_eps / ref_eps;
    println!("queue dispatch (standing {STANDING}, {DISPATCHES} events):");
    println!("  indexed 4-ary heap : {:.2}M events/s", fast_eps / 1e6);
    println!("  BinaryHeap (ref)   : {:.2}M events/s", ref_eps / 1e6);
    println!("  speedup            : {speedup:.2}x");

    // --- Real serving run (serial) ------------------------------------------
    let models = market_models(24);
    let trace = uniform_trace(24, 0.2, HORIZON_SECS, SEED, LengthDist::sharegpt());
    let cfg = AegaeonConfig::paper_testbed();
    let start = Instant::now();
    let r = ServingSystem::run(&cfg, &models, &trace);
    let wall = start.elapsed().as_secs_f64();
    let serving = ThroughputReport::new(r.events, HORIZON_SECS, wall);
    println!("\nserving run (24 models, RPS 0.2, {HORIZON_SECS:.0}s horizon):");
    println!(
        "  {} events in {:.2}s = {:.2}M events/s, {:.2}ms wall per sim-s",
        serving.events,
        serving.wall_secs,
        serving.events_per_sec() / 1e6,
        serving.wall_per_sim_sec() * 1e3,
    );

    // --- Sharded parallel run -----------------------------------------------
    // One big run (4 nodes x 8 H800, 32 models) partitioned into 4 shards,
    // stepped in conservative windows. The 1-thread sharded run is the
    // reference: bit-identical fingerprints across worker counts is a hard
    // contract (tested in tests/shard_determinism.rs; asserted again here
    // on the bench workload).
    let host_parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let shards = 4usize;
    let mut pcfg = AegaeonConfig::paper_testbed();
    pcfg.cluster = ClusterSpec::homogeneous(shards as u32, NodeSpec::h800_node());
    pcfg.prefill_instances = 12;
    let pmodels = market_models(32);
    let ptrace = uniform_trace(32, 0.2, HORIZON_SECS, SEED, LengthDist::sharegpt());
    let start = Instant::now();
    let shard_serial = run_sharded(&pcfg, &pmodels, &ptrace, shards, 1);
    let shard_serial_secs = start.elapsed().as_secs_f64();
    let run_threads = sweep::threads().clamp(2, shards);
    let start = Instant::now();
    let shard_parallel = run_sharded(&pcfg, &pmodels, &ptrace, shards, run_threads);
    let shard_parallel_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        shard_serial.fingerprint(),
        shard_parallel.fingerprint(),
        "sharded run must be bit-identical across worker counts"
    );
    let run_speedup = shard_serial_secs / shard_parallel_secs;
    println!("\nsharded serving run (32 models, 4x8 GPUs, {shards} shards):");
    println!("  1 thread            : {shard_serial_secs:.2}s ({} events)", shard_serial.events);
    println!("  {run_threads:>2} threads          : {shard_parallel_secs:.2}s  ({run_speedup:.2}x)");
    println!("  fingerprint         : {:016x} (identical)", shard_serial.fingerprint());
    if host_parallelism >= run_threads && run_threads >= 2 {
        assert!(
            run_speedup > 1.0,
            "sharded run slower in parallel on a {host_parallelism}-way host"
        );
    }

    // --- Parallel sweep speedup ---------------------------------------------
    let points: Vec<u64> = (0..8).collect();
    let eval = |&i: &u64| {
        let models = market_models(16);
        let trace = uniform_trace(
            16,
            0.2,
            HORIZON_SECS / 2.0,
            sweep::derive_seed(SEED, i),
            LengthDist::sharegpt(),
        );
        ServingSystem::run(&AegaeonConfig::paper_testbed(), &models, &trace).completed
    };
    let start = Instant::now();
    let serial = sweep::map_with_threads(&points, 1, eval);
    let serial_secs = start.elapsed().as_secs_f64();
    // At least two workers so the threaded path is what gets measured, even
    // on single-core machines (where the honest speedup is ~1x).
    let threads = sweep::threads().clamp(2, points.len());
    let start = Instant::now();
    let parallel = sweep::map_with_threads(&points, threads, eval);
    let parallel_secs = start.elapsed().as_secs_f64();
    assert_eq!(serial, parallel, "parallel sweep must be bit-identical");
    let sweep_speedup = serial_secs / parallel_secs;
    println!("\nsweep of {} serving runs:", points.len());
    println!("  serial              : {serial_secs:.2}s");
    println!("  {threads:>2} threads          : {parallel_secs:.2}s  ({sweep_speedup:.2}x)");

    // --- Report -------------------------------------------------------------
    if host_parallelism >= 2 {
        assert!(
            sweep_speedup > 1.0,
            "parallel sweep regressed ({sweep_speedup:.2}x) on a {host_parallelism}-way host"
        );
    }

    let json = serde_json::json!({
        "host_parallelism": host_parallelism as u64,
        "queue_microbench": serde_json::json!({
            "standing_events": STANDING,
            "dispatches": DISPATCHES,
            "indexed_d4_events_per_sec": fast_eps,
            "binary_heap_ref_events_per_sec": ref_eps,
            "speedup": speedup,
        }),
        "serving_serial": serde_json::json!({
            "events": serving.events,
            "sim_secs": serving.sim_secs,
            "wall_secs": serving.wall_secs,
            "events_per_sec": serving.events_per_sec(),
            "wall_per_sim_sec": serving.wall_per_sim_sec(),
        }),
        "parallel_run": serde_json::json!({
            "shards": shards as u64,
            "threads": run_threads as u64,
            "events": shard_serial.events,
            "serial_secs": shard_serial_secs,
            "parallel_secs": shard_parallel_secs,
            "speedup": run_speedup,
            "serial_fingerprint": format!("{:016x}", shard_serial.fingerprint()),
            "parallel_fingerprint": format!("{:016x}", shard_parallel.fingerprint()),
        }),
        "parallel_sweep": serde_json::json!({
            "points": points.len() as u64,
            "threads": threads as u64,
            "serial_secs": serial_secs,
            "parallel_secs": parallel_secs,
            "speedup": sweep_speedup,
        }),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_throughput.json");
    match serde_json::to_string_pretty(&json) {
        Ok(s) => {
            std::fs::write(path, s + "\n").expect("write BENCH_sim_throughput.json");
            println!("\n[json] {path}");
        }
        Err(e) => eprintln!("failed to serialize report: {e}"),
    }
}
