//! `aegaeon_cli` — a CLI for running custom pooling scenarios.
//!
//! ```text
//! cargo run --release -p aegaeon-bench --bin aegaeon_cli -- \
//!     --models 40 --rps 0.1 --gpus 16 --prefill 6 --secs 400 \
//!     --system aegaeon --opts t3 --dataset sharegpt --seed 42
//! ```
//!
//! Systems: `aegaeon`, `sllm`, `sllm+`, `muxserve`. Datasets: `sharegpt`,
//! `ix2`, `ox2`. Optimization levels: `t0`..`t3`.
//!
//! Telemetry: `--trace-out run.json` writes a Chrome Trace Event Format
//! file (open in Perfetto / `chrome://tracing`), `--telemetry-out run.jsonl`
//! writes spans + metric samples as JSONL, and `--sample-every SECS` sets
//! the sim-time metric sampling interval (default 0.1 s).

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_baselines::engine_loop::WorldConfig;
use aegaeon_baselines::{MuxServe, ServerlessLlm, SllmConfig};
use aegaeon_engine::AutoscaleOpts;
use aegaeon_gpu::{ClusterSpec, GpuSpec, NodeSpec};
use aegaeon_model::Zoo;
use aegaeon_sim::{SimRng, SimTime};
use aegaeon_workload::{LengthDist, SloSpec, TraceBuilder};

#[derive(Debug)]
struct Args {
    models: usize,
    rps: f64,
    gpus: u32,
    prefill: usize,
    secs: f64,
    seed: u64,
    system: String,
    opts: String,
    dataset: String,
    gpu: String,
    ttft: f64,
    tbt: f64,
    trace_out: Option<String>,
    telemetry_out: Option<String>,
    sample_every: f64,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut a = Args {
            models: 16,
            rps: 0.1,
            gpus: 8,
            prefill: 3,
            secs: 300.0,
            seed: 42,
            system: "aegaeon".into(),
            opts: "t3".into(),
            dataset: "sharegpt".into(),
            gpu: "h800".into(),
            ttft: 10.0,
            tbt: 0.1,
            trace_out: None,
            telemetry_out: None,
            sample_every: 0.1,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            if flag == "--help" || flag == "-h" {
                return Err("help".into());
            }
            let val = it
                .next()
                .ok_or_else(|| format!("missing value for {flag}"))?;
            match flag.as_str() {
                "--models" => a.models = val.parse().map_err(|e| format!("--models: {e}"))?,
                "--rps" => a.rps = val.parse().map_err(|e| format!("--rps: {e}"))?,
                "--gpus" => a.gpus = val.parse().map_err(|e| format!("--gpus: {e}"))?,
                "--prefill" => a.prefill = val.parse().map_err(|e| format!("--prefill: {e}"))?,
                "--secs" => a.secs = val.parse().map_err(|e| format!("--secs: {e}"))?,
                "--seed" => a.seed = val.parse().map_err(|e| format!("--seed: {e}"))?,
                "--system" => a.system = val.clone(),
                "--opts" => a.opts = val.clone(),
                "--dataset" => a.dataset = val.clone(),
                "--gpu" => a.gpu = val.clone(),
                "--ttft" => a.ttft = val.parse().map_err(|e| format!("--ttft: {e}"))?,
                "--tbt" => a.tbt = val.parse().map_err(|e| format!("--tbt: {e}"))?,
                "--trace-out" => a.trace_out = Some(val.clone()),
                "--telemetry-out" => a.telemetry_out = Some(val.clone()),
                "--sample-every" => {
                    a.sample_every = val.parse().map_err(|e| format!("--sample-every: {e}"))?
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(a)
    }
}

fn usage() {
    eprintln!(
        "usage: aegaeon_cli [--models N] [--rps R] [--gpus G] [--prefill P] \
         [--secs S] [--seed K] [--system aegaeon|sllm|sllm+|muxserve] \
         [--opts t0|t1|t2|t3] [--dataset sharegpt|ix2|ox2] \
         [--gpu h800|h20|a10|a100] [--ttft SECS] [--tbt SECS] \
         [--trace-out FILE.json] [--telemetry-out FILE.jsonl] \
         [--sample-every SECS]"
    );
}

/// Writes the requested telemetry artifacts, consuming the run's spans,
/// metrics, and (for Aegaeon) schedule trace.
fn export(
    args: &Args,
    schedule: &aegaeon_sim::TraceLog,
    tel: &aegaeon_telemetry::Telemetry,
) {
    if let Some(err) = tel.spans.validate() {
        eprintln!("warning: span log failed validation: {err}");
    }
    if let Some(path) = &args.trace_out {
        let json = aegaeon_telemetry::chrome_trace(schedule, &tel.spans, &tel.metrics);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote {path}: {} spans, {} counter series (open in Perfetto)",
            tel.spans.spans().len(),
            tel.metrics.counter_series().count() + tel.metrics.gauge_series().count(),
        );
    }
    if let Some(path) = &args.telemetry_out {
        let lines = aegaeon_telemetry::jsonl(&tel.spans, &tel.metrics);
        if let Err(e) = std::fs::write(path, &lines) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

fn main() {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    };
    let gpu = match args.gpu.as_str() {
        "h800" => GpuSpec::h800(),
        "h20" => GpuSpec::h20(),
        "a10" => GpuSpec::a10(),
        "a100" => GpuSpec::a100(),
        other => {
            eprintln!("unknown GPU {other}");
            std::process::exit(2);
        }
    };
    let dataset = match args.dataset.as_str() {
        "sharegpt" => LengthDist::sharegpt(),
        "ix2" => LengthDist::sharegpt_ix2(),
        "ox2" => LengthDist::sharegpt_ox2(),
        other => {
            eprintln!("unknown dataset {other}");
            std::process::exit(2);
        }
    };
    let cluster = ClusterSpec::homogeneous(
        1,
        NodeSpec {
            gpus: args.gpus,
            gpu,
            dram_bytes: 1 << 40,
            nic_bw: 25e9,
        },
    );
    let models = Zoo::replicate(&Zoo::standard().market_band(), args.models);
    let mut rng = SimRng::seed_from_u64(args.seed);
    let trace = TraceBuilder::new(SimTime::from_secs_f64(args.secs), dataset)
        .uniform_models(&mut rng, args.models as u32, args.rps)
        .build(&mut rng);
    let slo = SloSpec {
        ttft: aegaeon_sim::SimDur::from_secs_f64(args.ttft),
        tbt: aegaeon_sim::SimDur::from_secs_f64(args.tbt),
    };
    println!(
        "{} | {} models x {} req/s on {} {} GPUs | {} requests over {}s | SLO {}s/{}ms",
        args.system,
        args.models,
        args.rps,
        args.gpus,
        args.gpu,
        trace.len(),
        args.secs,
        args.ttft,
        args.tbt * 1e3,
    );

    let want_telemetry = args.trace_out.is_some() || args.telemetry_out.is_some();
    let tel_spec = if want_telemetry {
        aegaeon_telemetry::TelemetrySpec::with_sample_every(aegaeon_sim::SimDur::from_secs_f64(
            args.sample_every,
        ))
    } else {
        aegaeon_telemetry::TelemetrySpec::disabled()
    };

    match args.system.as_str() {
        "aegaeon" => {
            let mut cfg = AegaeonConfig::paper_testbed();
            cfg.cluster = cluster;
            cfg.prefill_instances = args.prefill;
            cfg.seed = args.seed;
            cfg.target_tbt = args.tbt;
            cfg.telemetry = tel_spec;
            cfg.trace_schedule = want_telemetry;
            cfg.opts = match args.opts.as_str() {
                "t0" => AutoscaleOpts::t0(),
                "t1" => AutoscaleOpts::t1(),
                "t2" => AutoscaleOpts::t2(),
                "t3" => AutoscaleOpts::t3(),
                other => {
                    eprintln!("unknown opts {other}");
                    std::process::exit(2);
                }
            };
            let r = ServingSystem::run(&cfg, &models, &trace);
            let rep = r.attainment(slo);
            println!(
                "attainment {:.1}% | completed {}/{} | scale-ups {} (prefetch {:.0}%) | swaps {} | util {:.1}%",
                rep.percent(),
                r.completed,
                r.total_requests,
                r.scale_count,
                r.prefetch_hit_ratio() * 100.0,
                r.swaps,
                r.mean_gpu_utilization() * 100.0
            );
            let s = aegaeon_metrics::summarize(&r.outcomes, r.horizon);
            println!(
                "tokens {} ({:.0}/s) | TTFT p50/p90/p99 {:.2}/{:.2}/{:.2}s | gap p50/p99 {:.0}/{:.0}ms",
                s.tokens,
                s.token_rate,
                s.ttft.0,
                s.ttft.1,
                s.ttft.2,
                s.tbt.0 * 1e3,
                s.tbt.2 * 1e3
            );
            let rows = aegaeon_metrics::per_model_rows(&r.outcomes, slo, r.horizon, args.models);
            if let Some(worst) = rows.first() {
                println!(
                    "worst model m{} at {:.1}% over {} requests",
                    worst.model,
                    worst.attainment.percent(),
                    worst.requests
                );
            }
            export(&args, &r.schedule, &r.telemetry);
        }
        "sllm" | "sllm+" => {
            let mut cfg = if args.system == "sllm+" {
                SllmConfig::plus(cluster)
            } else {
                SllmConfig::new(cluster)
            };
            cfg.world.seed = args.seed;
            cfg.world.telemetry = tel_spec;
            let r = ServerlessLlm::run(&cfg, &models, &trace);
            let rep = r.attainment(slo);
            println!(
                "attainment {:.1}% | completed {}/{} | switches {} | util {:.1}%",
                rep.percent(),
                r.completed,
                r.total_requests,
                r.switches,
                r.mean_gpu_utilization() * 100.0
            );
            export(&args, &aegaeon_sim::TraceLog::disabled(), &r.telemetry);
        }
        "muxserve" => {
            let mut cfg = WorldConfig::sllm_default(cluster);
            cfg.seed = args.seed;
            cfg.telemetry = tel_spec;
            let rates = vec![args.rps; args.models];
            let r = MuxServe::run(&cfg, &models, &rates, &trace);
            let rep = r.attainment(slo);
            println!(
                "attainment {:.1}% | completed {}/{} | unplaced-model requests {} | util {:.1}%",
                rep.percent(),
                r.completed,
                r.total_requests,
                r.rejected,
                r.mean_gpu_utilization() * 100.0
            );
            export(&args, &aegaeon_sim::TraceLog::disabled(), &r.telemetry);
        }
        other => {
            eprintln!("unknown system {other}");
            std::process::exit(2);
        }
    }
}
