//! Table 1: KV-cache shape and per-token size for market models.

use aegaeon_bench::{banner, dump_json};
use aegaeon_metrics::report::table;
use aegaeon_model::Zoo;

fn main() {
    banner("table1_kv_shapes", "Table 1 (KV cache shapes/sizes in vLLM)");
    let zoo = Zoo::standard();
    let expected_kb = [512u64, 128, 800, 2560];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (spec, want) in zoo.table1().iter().zip(expected_kb) {
        let kb = spec.kv_bytes_per_token() / 1024;
        rows.push(vec![
            spec.name.clone(),
            spec.kv_shape().to_string(),
            format!("{kb} KB"),
            format!("{want} KB"),
            if kb == want { "match".into() } else { "MISMATCH".into() },
        ]);
        json.push(serde_json::json!({
            "model": spec.name,
            "shape": spec.kv_shape().as_tuple(),
            "kb_per_token": kb,
            "paper_kb_per_token": want,
        }));
    }
    print!(
        "{}",
        table(
            &["Model", "KV Cache Shape", "KV Size (ours)", "KV Size (paper)", ""],
            &rows
        )
    );
    println!("\n(per token, 16-bit precision; shape = (layers, 2, kv_heads, head_dim))");
    dump_json("table1_kv_shapes", &serde_json::json!(json));
}
