//! Agentic-session figure: prefix reuse under session affinity.
//!
//! Sweeps session depth × think-gap × affinity on/off over a multi-turn
//! agentic trace and reports, per point, the prefix-hit rate, reused vs
//! recomputed prefill tokens, and SLO attainment. The differential the
//! figure exists to show: with `session_affinity` on, consecutive turns of
//! a session prefill only their delta off the retained KV prefix, so
//! recomputed prefill tokens drop and attainment holds at depths where the
//! affinity-off system re-prefills the entire conversation every turn.
//!
//! A final telemetry-enabled run exports the SLO observatory document
//! (`target/experiments/fig_agentic.slo.json`, with its per-model session
//! turn series) plus the `aegaeon-analyze` markdown report next to it; CI
//! re-checks that artifact with `aegaeon-analyze --check`.
//!
//! `--smoke` shrinks the sweep to one (depth, gap) point on a short
//! horizon for the CI gate. In both modes the binary exits nonzero if the
//! affinity differential does not hold (hits with affinity on, zero hits
//! and zero reuse with affinity off).

use aegaeon::{AegaeonConfig, RunResult, ServingSystem};
use aegaeon_bench::{analyze, banner, dump_json, market_models, sweep, SEED};
use aegaeon_sim::{SimRng, SimTime};
use aegaeon_workload::{SessionBuilder, SloSpec, Trace};

const N_MODELS: usize = 4;
const SESSION_RATE: f64 = 0.012;

/// One sweep cell: a fixed-depth session trace at one think-gap setting.
fn agentic_trace(depth: u32, gap_secs: f64, horizon_secs: f64, seed: u64) -> Trace {
    let mut rng = SimRng::seed_from_u64(seed);
    SessionBuilder::new(SimTime::from_secs_f64(horizon_secs), N_MODELS as u32, SESSION_RATE)
        .depth(depth, depth)
        .think_gap(gap_secs, 0.5)
        .generate(&mut rng)
        .lower()
}

fn config(affinity: bool) -> AegaeonConfig {
    let mut cfg = AegaeonConfig::small_testbed(2, 3);
    cfg.seed = SEED;
    cfg.session_affinity = affinity;
    cfg
}

struct Point {
    depth: u32,
    gap: f64,
    affinity: bool,
    turns: u64,
    prefix_hits: u64,
    hit_rate: f64,
    tokens_reused: u64,
    tokens_recomputed: u64,
    attainment: f64,
}

fn measure(depth: u32, gap: f64, affinity: bool, horizon: f64, r: &RunResult, t: &Trace) -> Point {
    let turns = t.requests.iter().filter(|r| r.session.is_some()).count() as u64;
    let _ = horizon;
    Point {
        depth,
        gap,
        affinity,
        turns,
        prefix_hits: r.prefix_hits,
        hit_rate: if turns > 0 {
            r.prefix_hits as f64 / turns as f64
        } else {
            0.0
        },
        tokens_reused: r.prefill_tokens_reused,
        tokens_recomputed: r.prefill_tokens_recomputed,
        attainment: r.attainment(SloSpec::paper_default()).ratio(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "fig_agentic",
        "agentic sessions: prefix reuse under session affinity",
    );

    let (depths, gaps, horizon): (Vec<u32>, Vec<f64>, f64) = if smoke {
        (vec![3], vec![10.0], 120.0)
    } else {
        (vec![2, 4, 6], vec![5.0, 20.0, 60.0], 300.0)
    };
    let models = market_models(N_MODELS);

    let cells: Vec<(u32, f64, bool)> = depths
        .iter()
        .flat_map(|&d| {
            gaps.iter()
                .flat_map(move |&g| [(d, g, false), (d, g, true)])
        })
        .collect();
    let points = sweep::map(&cells, |&(depth, gap, affinity)| {
        let seed = SEED + depth as u64 * 101 + (gap * 10.0) as u64;
        let trace = agentic_trace(depth, gap, horizon, seed);
        let r = ServingSystem::run(&config(affinity), &models, &trace);
        measure(depth, gap, affinity, horizon, &r, &trace)
    });

    let hdr = [
        "depth",
        "gap (s)",
        "affinity",
        "turns",
        "prefix hits",
        "hit rate",
        "reused tok",
        "recomputed tok",
        "attainment",
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.depth.to_string(),
                format!("{:.0}", p.gap),
                if p.affinity { "on" } else { "off" }.to_string(),
                p.turns.to_string(),
                p.prefix_hits.to_string(),
                format!("{:.3}", p.hit_rate),
                p.tokens_reused.to_string(),
                p.tokens_recomputed.to_string(),
                format!("{:.1}%", p.attainment * 100.0),
            ]
        })
        .collect();
    let h: Vec<&str> = hdr.to_vec();
    print!("{}", aegaeon_metrics::report::table(&h, &rows));

    // The CI differential gate: affinity off is fully inert (no hits, no
    // reused tokens); affinity on lands hits at every sweep point and
    // never recomputes more than off does.
    let mut gate_ok = true;
    for (cell, pair) in points.chunks(2).enumerate() {
        let (off, on) = (&pair[0], &pair[1]);
        assert!(!off.affinity && on.affinity, "cell layout");
        if off.prefix_hits != 0 || off.tokens_reused != 0 {
            eprintln!(
                "[gate] FAIL depth={} gap={}: affinity off reused a prefix (hits={}, reused={})",
                off.depth, off.gap, off.prefix_hits, off.tokens_reused
            );
            gate_ok = false;
        }
        if on.prefix_hits == 0 || on.hit_rate <= 0.0 {
            eprintln!(
                "[gate] FAIL depth={} gap={}: affinity on landed no prefix hits",
                on.depth, on.gap
            );
            gate_ok = false;
        }
        if on.tokens_recomputed > off.tokens_recomputed {
            eprintln!(
                "[gate] FAIL depth={} gap={}: affinity on recomputed more than off ({} > {})",
                on.depth, on.gap, on.tokens_recomputed, off.tokens_recomputed
            );
            gate_ok = false;
        }
        let _ = cell;
    }
    if gate_ok {
        println!(
            "[gate] ok: affinity-on hit rate > 0 and affinity-off reuse == 0 at all {} cells",
            points.len() / 2
        );
    }

    // Telemetry-enabled export run (affinity on, mid sweep point): the SLO
    // observatory document with its session turn series, plus the analyzer
    // report. CI re-verifies the JSON with `aegaeon-analyze --check`.
    let (depth, gap) = (depths[depths.len() / 2], gaps[gaps.len() / 2]);
    let trace = agentic_trace(depth, gap, horizon, SEED + depth as u64 * 101 + (gap * 10.0) as u64);
    let mut tcfg = config(true);
    tcfg.telemetry = aegaeon_telemetry::TelemetrySpec::enabled();
    let r = ServingSystem::run(&tcfg, &models, &trace);
    let slo_doc = aegaeon_telemetry::slo_json(&r.telemetry.slo, &r.telemetry.attrib);
    let dir = std::path::Path::new("target/experiments");
    let _ = std::fs::create_dir_all(dir);
    let slo_path = dir.join("fig_agentic.slo.json");
    match std::fs::write(&slo_path, &slo_doc) {
        Ok(()) => println!("[slo] {}", slo_path.display()),
        Err(e) => eprintln!("[slo] failed to write {}: {e}", slo_path.display()),
    }
    match analyze::Analysis::from_slo_text(&slo_doc) {
        Ok(a) => {
            if !a.sessions.is_empty() {
                let md_path = dir.join("fig_agentic.slo.md");
                match std::fs::write(&md_path, a.to_markdown()) {
                    Ok(()) => println!("[slo] {}", md_path.display()),
                    Err(e) => eprintln!("[slo] failed to write {}: {e}", md_path.display()),
                }
            } else {
                eprintln!("[gate] FAIL: telemetry run exported no session turn series");
                gate_ok = false;
            }
        }
        Err(e) => {
            eprintln!("[gate] FAIL: SLO document unparseable: {e}");
            gate_ok = false;
        }
    }

    let json_points: Vec<serde_json::Value> = points
        .iter()
        .map(|p| {
            serde_json::json!({
                "depth": p.depth,
                "think_gap_secs": p.gap,
                "affinity": p.affinity,
                "turns": p.turns,
                "prefix_hits": p.prefix_hits,
                "prefix_hit_rate": p.hit_rate,
                "prefill_tokens_reused": p.tokens_reused,
                "prefill_tokens_recomputed": p.tokens_recomputed,
                "attainment": p.attainment,
            })
        })
        .collect();
    dump_json(
        "fig_agentic",
        &serde_json::json!({
            "smoke": smoke,
            "n_models": N_MODELS,
            "session_rate": SESSION_RATE,
            "horizon_secs": horizon,
            "points": json_points,
        }),
    );

    if !gate_ok {
        std::process::exit(1);
    }
}
