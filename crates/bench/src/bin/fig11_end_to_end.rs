//! Figure 11: end-to-end SLO attainment on the 16×H800 testbed (6 prefill +
//! 10 decoding instances, ShareGPT).
//!
//! (a) RPS = 0.1 per model, sweeping the model count;
//! (b) RPS = 0.5 per model, sweeping the model count;
//! (c) 40 models, sweeping the per-model arrival rate.
//!
//! Paper headlines: Aegaeon sustains 2× (RPS 0.1) / 2.5× (RPS 0.5) higher
//! goodput than ServerlessLLM, supporting up to seven models per decoding
//! GPU; MuxServe cannot place more than 32 models on 16 GPUs.
//!
//! Every (system, load) grid point is an independent simulation, so the
//! whole grid fans out through [`sweep::map`]; results are identical to the
//! serial loop for any thread count.

use aegaeon_bench::{
    banner, dump_json, market_models, print_sweep, run_system, sweep, uniform_trace, System,
    HORIZON_SECS, SEED,
};
use aegaeon_workload::{LengthDist, SloSpec};

fn sweep_models(rps: f64, counts: &[usize]) -> Vec<(String, Vec<(f64, f64)>)> {
    let slo = SloSpec::paper_default();
    let points: Vec<(System, usize)> = System::ALL
        .iter()
        .flat_map(|&sys| counts.iter().map(move |&n| (sys, n)))
        .collect();
    let ratios = sweep::map(&points, |&(sys, n)| {
        let models = market_models(n);
        let trace = uniform_trace(n, rps, HORIZON_SECS, SEED + n as u64, LengthDist::sharegpt());
        run_system(sys, &models, &trace, slo, rps).ratio()
    });
    System::ALL
        .iter()
        .enumerate()
        .map(|(si, sys)| {
            let pts = counts
                .iter()
                .enumerate()
                .map(|(ci, &n)| (n as f64, ratios[si * counts.len() + ci]))
                .collect();
            (sys.label().to_string(), pts)
        })
        .collect()
}

fn main() {
    banner("fig11_end_to_end", "Figure 11 (end-to-end SLO attainment)");

    let counts_a = [20usize, 30, 40, 50, 60, 70, 80];
    let a = sweep_models(0.1, &counts_a);
    print_sweep("(a) RPS = 0.1, varying #models", "#models", &a);

    let counts_b = [16usize, 24, 32, 40, 48];
    let b = sweep_models(0.5, &counts_b);
    print_sweep("(b) RPS = 0.5, varying #models", "#models", &b);

    let slo = SloSpec::paper_default();
    let rates = [0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75];
    let points_c: Vec<(System, f64)> = System::ALL
        .iter()
        .flat_map(|&sys| rates.iter().map(move |&r| (sys, r)))
        .collect();
    let ratios_c = sweep::map(&points_c, |&(sys, r)| {
        let models = market_models(40);
        let trace = uniform_trace(
            40,
            r,
            HORIZON_SECS,
            SEED + (r * 1000.0) as u64,
            LengthDist::sharegpt(),
        );
        run_system(sys, &models, &trace, slo, r).ratio()
    });
    let c: Vec<(String, Vec<(f64, f64)>)> = System::ALL
        .iter()
        .enumerate()
        .map(|(si, sys)| {
            let pts = rates
                .iter()
                .enumerate()
                .map(|(ri, &r)| (r, ratios_c[si * rates.len() + ri]))
                .collect();
            (sys.label().to_string(), pts)
        })
        .collect();
    print_sweep("(c) 40 models, varying per-model RPS", "req/s", &c);

    // Headline ratios at the 90% goodput frontier.
    let frontier = |s: &[(String, Vec<(f64, f64)>)], name: &str| -> f64 {
        s.iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, pts)| aegaeon_metrics::max_load_meeting(pts, 0.9))
            .unwrap_or(f64::NAN)
    };
    let ra = frontier(&a, "Aegaeon") / frontier(&a, "ServerlessLLM");
    let rb = frontier(&b, "Aegaeon") / frontier(&b, "ServerlessLLM");
    println!(
        "\nheadline: Aegaeon/ServerlessLLM goodput ratio = {ra:.2}x at RPS 0.1 (paper 2x), {rb:.2}x at RPS 0.5 (paper 2.5x)"
    );
    println!(
        "models per decoding GPU at 90%: {:.1} (paper: seven)",
        frontier(&a, "Aegaeon") / 10.0
    );

    dump_json(
        "fig11_end_to_end",
        &serde_json::json!({ "a_rps01": a, "b_rps05": b, "c_40models": c,
            "ratio_rps01": ra, "ratio_rps05": rb }),
    );
}
