//! Figure 16: memory fragmentation in the unified CPU KV cache, per block
//! shape and overall.
//!
//! Paper: slab allocation keeps utilization proportional across shapes and
//! overall fragmentation below 20%.

use aegaeon_bench::{banner, dump_json, market_models, run_aegaeon, uniform_trace, HORIZON_SECS, SEED};
use aegaeon_metrics::report::{pct, table};
use aegaeon_workload::LengthDist;

fn main() {
    banner("fig16_fragmentation", "Figure 16 (unified CPU cache fragmentation)");
    // A mixed-shape workload: the 6–14B band spans four distinct KV shapes.
    let n = 48;
    let models = market_models(n);
    let trace = uniform_trace(n, 0.15, HORIZON_SECS, SEED, LengthDist::sharegpt());
    let r = run_aegaeon(&models, &trace);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (i, row) in r.frag_rows.iter().enumerate() {
        let label = if row.label == "All" {
            "All".to_string()
        } else {
            format!("S{} {}", i, row.label)
        };
        rows.push(vec![
            label.clone(),
            pct(row.utilized),
            pct(row.fragmentation),
            format!("{:.1} GB", row.peak_alloc_bytes as f64 / 1e9),
        ]);
        json.push(serde_json::json!({
            "shape": label,
            "utilized": row.utilized,
            "fragmentation": row.fragmentation,
            "peak_alloc_gb": row.peak_alloc_bytes as f64 / 1e9,
        }));
    }
    print!(
        "{}",
        table(&["shape", "utilized", "fragmentation", "peak alloc"], &rows)
    );
    let overall = r.frag_rows.last().expect("All row").fragmentation;
    println!(
        "\noverall fragmentation {:.1}% (paper: below 20%)",
        overall * 100.0
    );
    dump_json(
        "fig16_fragmentation",
        &serde_json::json!({ "rows": json, "overall_fragmentation": overall }),
    );
}
