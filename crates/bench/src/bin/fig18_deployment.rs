//! Figure 18 / §7.5: the production deployment study.
//!
//! The paper's beta deployment serves twenty-eight 1.8–7B models (TP=1) and
//! nineteen 32–72B models (TP=4) with per-model rates 0.01–1.13 req/s
//! (mean 0.037), previously on 1,192 dedicated H20 GPUs, now on 213 pooled
//! ones — an 82% saving — while GPU utilization rises from 13.3–33.9% to
//! 48.1%.
//!
//! This harness (i) sizes both deployments with the capacity planner and
//! (ii) replays the small-model pool: dedicated instances versus one
//! Aegaeon pool, reporting the utilization timeline. Time is compressed —
//! 70 "hours" are simulated as 70 buckets of 100 s — which preserves rates
//! and utilization statistics.

use aegaeon::planner::{aegaeon_pool_gpus, dedicated_gpus, ModelDemand, PlannerConfig};
use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_baselines::engine_loop::WorldConfig;
use aegaeon_baselines::Dedicated;
use aegaeon_bench::{banner, dump_json, SEED};
use aegaeon_gpu::{ClusterSpec, GpuSpec, NodeSpec};
use aegaeon_model::{ModelSpec, Zoo};
use aegaeon_sim::{SimRng, SimTime};
use aegaeon_workload::{LengthDist, SloSpec, TraceBuilder};

fn production_rates(n: usize, rng: &mut SimRng) -> Vec<f64> {
    // Rates in [0.01, 1.13], heavily skewed, averaging ≈ 0.037 (§7.5).
    let mut rates: Vec<f64> = (0..n)
        .map(|i| {
            if i == 0 {
                1.13 // one hot model
            } else {
                0.01 + rng.f64().powi(3) * 0.08
            }
        })
        .collect();
    let mean = rates.iter().sum::<f64>() / n as f64;
    let scale = 0.037 / mean;
    for r in rates.iter_mut().skip(1) {
        *r = (*r * scale).clamp(0.005, 1.13);
    }
    rates
}

fn demands(specs: &[ModelSpec], rates: &[f64]) -> Vec<ModelDemand> {
    specs
        .iter()
        .zip(rates)
        .map(|(s, &rate)| ModelDemand {
            spec: s.clone(),
            rate,
            mean_output: 250.0,
            mean_input: 330.0,
        })
        .collect()
}

fn h20_cluster(gpus: u32) -> ClusterSpec {
    ClusterSpec::homogeneous(
        1,
        NodeSpec {
            gpus,
            gpu: GpuSpec::h20(),
            dram_bytes: 2 << 40,
            nic_bw: 25e9,
        },
    )
}

fn main() {
    banner("fig18_deployment", "Figure 18 / §7.5 (production deployment)");
    let zoo = Zoo::standard();
    let mut rng = SimRng::seed_from_u64(SEED);

    // --- capacity planning: before vs after ------------------------------
    let small_bases = ["Qwen-7B", "Yi-6B", "Qwen-1.8B", "InternLM2.5-7B"];
    let small_specs: Vec<ModelSpec> = (0..28)
        .map(|i| {
            let mut s = zoo.get(small_bases[i % small_bases.len()]).expect("zoo").clone();
            s.name = format!("{}/prod{}", s.name, i);
            s
        })
        .collect();
    let large_bases = ["Yi-34B", "Qwen-72B"];
    let large_specs: Vec<ModelSpec> = (0..19)
        .map(|i| {
            let mut s = zoo
                .get(large_bases[i % large_bases.len()])
                .expect("zoo")
                .with_tp(4);
            s.name = format!("{}/prod{}", s.name, i);
            s
        })
        .collect();
    let small_rates = production_rates(28, &mut rng);
    let large_rates = production_rates(19, &mut rng);
    let gpu = GpuSpec::h20();
    let pc = PlannerConfig::production_default();
    let d_small = demands(&small_specs, &small_rates);
    let d_large = demands(&large_specs, &large_rates);
    let before = dedicated_gpus(&gpu, &d_small, &pc) + dedicated_gpus(&gpu, &d_large, &pc);
    let after = aegaeon_pool_gpus(&gpu, &d_small, &pc) + aegaeon_pool_gpus(&gpu, &d_large, &pc);
    let saving = 1.0 - after as f64 / before as f64;
    println!("\ncapacity plan for the 47-model production mix (H20):");
    println!("  before (dedicated, redundant): {before} GPUs   (paper: 1,192)");
    println!("  after  (Aegaeon pools):        {after} GPUs   (paper: 213)");
    println!("  saving: {:.0}%               (paper: 82%)", saving * 100.0);

    // --- utilization replay on the small-model pool ----------------------
    let hours = 70usize;
    let bucket_secs = 100.0;
    let horizon = SimTime::from_secs_f64(hours as f64 * bucket_secs);
    let mut wrng = SimRng::seed_from_u64(SEED + 1);
    let mut tb = TraceBuilder::new(horizon, LengthDist::sharegpt());
    for (i, &rate) in small_rates.iter().enumerate() {
        // Day/night modulation with staggered peaks (the Figure 18 wiggle).
        let p = aegaeon_workload::DiurnalProcess {
            mean_rate: rate,
            amplitude: 0.35,
            period_secs: hours as f64 * bucket_secs / 3.0,
            phase: i as f64 / 28.0,
        };
        let arrivals = p.arrivals(&mut wrng, horizon);
        tb = tb.explicit_model(aegaeon_model::ModelId(i as u32), arrivals);
    }
    let trace = tb.build(&mut wrng);
    println!(
        "\nreplay: 28 small models, aggregate {:.2} req/s, {} requests over {} compressed hours",
        trace.aggregate_rate(),
        trace.len(),
        hours
    );

    // Before: dedicated replicas per the planner (hot models get several
    // instances, which dilutes their per-GPU utilization like production).
    let replica_counts: Vec<u32> = d_small
        .iter()
        .map(|d| aegaeon::planner::dedicated_instances(&gpu, d, &pc))
        .collect();
    let mut assignment = Vec::new();
    for (m, &k) in replica_counts.iter().enumerate() {
        for _ in 0..k {
            assignment.push(aegaeon_model::ModelId(m as u32));
        }
    }
    let before_gpus_small = assignment.len() as u32;
    let mut wc = WorldConfig::sllm_default(h20_cluster(before_gpus_small));
    wc.seed = SEED;
    let ded = Dedicated::run_with_assignment(&wc, &small_specs, &trace, assignment);
    let per_gpu_util: Vec<f64> = ded
        .gpu_busy
        .iter()
        .map(|b| b / ded.end_time.as_secs_f64())
        .collect();
    let lo = per_gpu_util.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = per_gpu_util.iter().cloned().fold(0.0, f64::max);

    // After: an Aegaeon pool. The replay sizes the pool at the planner's
    // redundancy-free minimum (the redundant capacity in the headline count
    // above sits idle for fault tolerance and does not serve this trace).
    let pc_replay = PlannerConfig { redundancy: 1.0, ..pc.clone() };
    let pool = aegaeon_pool_gpus(&gpu, &d_small, &pc_replay).max(3) as u32;
    let mut cfg = AegaeonConfig::paper_testbed();
    cfg.cluster = h20_cluster(pool);
    cfg.prefill_instances = (pool as usize / 3).max(1);
    cfg.seed = SEED;
    let aeg = ServingSystem::run(&cfg, &small_specs, &trace);
    let aeg_att = aeg.attainment(SloSpec::paper_default());

    // Hourly utilization series (compressed hours).
    println!("\n(before replay uses {} dedicated GPUs for the 28 small models)", before_gpus_small);
    println!("\nhourly GPU utilization (sampled, every 5 'hours'):");
    println!("  hour  before(low)  before(high)  after(Aegaeon, {pool} GPUs)");
    let series_at = |samples: &[(SimTime, Vec<f64>)], h: usize, gpu_sel: &dyn Fn(&[f64]) -> f64| {
        let t0 = (h as f64) * bucket_secs;
        let t1 = t0 + bucket_secs;
        let find = |t: f64| -> Option<&Vec<f64>> {
            samples
                .iter()
                .filter(|(st, _)| st.as_secs_f64() <= t)
                .map(|(_, v)| v)
                .next_back()
        };
        match (find(t0), find(t1)) {
            (Some(a), Some(b)) => {
                let da: f64 = gpu_sel(b) - gpu_sel(a);
                (da / bucket_secs).max(0.0)
            }
            _ => 0.0,
        }
    };
    let lo_idx = per_gpu_util
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let hi_idx = per_gpu_util
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut json_series = Vec::new();
    for h in (0..hours).step_by(5) {
        let b_lo = series_at(&ded.util_samples, h, &|v| v[lo_idx]);
        let b_hi = series_at(&ded.util_samples, h, &|v| v[hi_idx]);
        let a_all = series_at(&aeg.util_samples, h, &|v| v.iter().sum::<f64>())
            / pool as f64;
        println!(
            "  {h:4}  {:10.1}%  {:11.1}%  {:10.1}%",
            b_lo * 100.0,
            b_hi * 100.0,
            a_all * 100.0
        );
        json_series.push(serde_json::json!({ "hour": h, "before_low": b_lo, "before_high": b_hi, "after": a_all }));
    }
    let aeg_util = aeg.mean_gpu_utilization();
    println!("\naverages: before low {:.1}%, before high {:.1}%, after {:.1}%", lo * 100.0, hi * 100.0, aeg_util * 100.0);
    println!("paper:    before 13.3%(low) / 33.9%(high), after 48.1%");
    println!(
        "Aegaeon pool SLO attainment during replay: {:.1}% (no observable violations in the paper)",
        aeg_att.percent()
    );

    dump_json(
        "fig18_deployment",
        &serde_json::json!({
            "planner_before_gpus": before,
            "planner_after_gpus": after,
            "saving": saving,
            "paper_before": 1192,
            "paper_after": 213,
            "before_util_low": lo,
            "before_util_high": hi,
            "after_util": aeg_util,
            "attainment": aeg_att.ratio(),
            "series": json_series,
        }),
    );
}
