//! Figures 8 and 10: preemptive auto-scaling cost under the optimization
//! levels T0 → T3, measured live in the serving system.
//!
//! T0 tears the engine down and reinitializes it; T1 reuses components;
//! T2 adds explicit memory management (no GC, pipelined loads, prefetch);
//! T3 adds fine-grained KV-cache synchronization (dedicated streams, CUDA
//! events, move lists). The paper's claim: 97% total latency reduction and
//! sub-second preemptive scaling.

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{banner, dump_json, market_models, uniform_trace, SEED};
use aegaeon_engine::AutoscaleOpts;
use aegaeon_metrics::report::table;
use aegaeon_metrics::Stage;
use aegaeon_workload::{LengthDist, SloSpec};

fn main() {
    banner("fig08_scaling_opts", "Figures 8 & 10 (T0-T3 ablation)");
    let models = market_models(12);
    let trace = uniform_trace(12, 0.08, 300.0, SEED, LengthDist::sharegpt());
    let slo = SloSpec::paper_default();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut t0_mean = 0.0f64;
    for opts in [
        AutoscaleOpts::t0(),
        AutoscaleOpts::t1(),
        AutoscaleOpts::t2(),
        AutoscaleOpts::t3(),
    ] {
        let mut cfg = AegaeonConfig::small_testbed(2, 2);
        cfg.opts = opts;
        cfg.seed = SEED;
        let r = ServingSystem::run(&cfg, &models, &trace);
        let mut lats = r.scale_latencies.clone();
        lats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = lats.iter().sum::<f64>() / lats.len().max(1) as f64;
        let pct = |q: f64| lats[((lats.len() - 1) as f64 * q) as usize];
        if opts == AutoscaleOpts::t0() {
            t0_mean = mean;
        }
        let reduction = if t0_mean > 0.0 {
            (1.0 - mean / t0_mean) * 100.0
        } else {
            0.0
        };
        let frac = r.breakdown.fractions();
        let att = r.attainment(slo);
        rows.push(vec![
            opts.name().to_string(),
            format!("{mean:.2}s"),
            format!("{:.2}s", pct(0.5)),
            format!("{:.2}s", pct(0.9)),
            format!("{reduction:.0}%"),
            format!("{:.1}%", frac[Stage::ALL.iter().position(|s| *s == Stage::DataOverhead).expect("stage")] * 100.0),
            format!("{:.1}%", att.percent()),
        ]);
        json.push(serde_json::json!({
            "level": opts.name(),
            "mean_scale_secs": mean,
            "p50": pct(0.5),
            "p90": pct(0.9),
            "reduction_vs_t0_pct": reduction,
            "attainment": att.ratio(),
        }));
    }
    print!(
        "{}",
        table(
            &["level", "mean scale", "p50", "p90", "cut vs T0", "data ovh", "SLO att."],
            &rows
        )
    );
    println!("\npaper: full-stack optimizations reduce auto-scaling latency by up to 97%");
    println!("       (T0 in Figure 7 to T3 in Figure 10), reaching sub-second scaling.");
    dump_json("fig08_scaling_opts", &serde_json::json!(json));
}
