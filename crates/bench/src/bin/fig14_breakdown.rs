//! Figure 14: request latency breakdown across setups.
//!
//! For each `#models × RPS` setup, the share of total request time spent in
//! prefill waiting/execution, decoding waiting/execution, and the KV-cache
//! control/data overhead terms.

use aegaeon_bench::{banner, dump_json, market_models, run_aegaeon, uniform_trace, HORIZON_SECS, SEED};
use aegaeon_metrics::report::table;
use aegaeon_metrics::Stage;
use aegaeon_workload::LengthDist;

fn main() {
    banner("fig14_breakdown", "Figure 14 (latency breakdown)");
    let setups = [(16usize, 0.1f64), (32, 0.1), (64, 0.1), (16, 0.5), (32, 0.5)];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (n, rps) in setups {
        let models = market_models(n);
        let trace = uniform_trace(n, rps, HORIZON_SECS, SEED + n as u64, LengthDist::sharegpt());
        let r = run_aegaeon(&models, &trace);
        let f = r.breakdown.fractions();
        let mut row = vec![format!("{n}x{rps}")];
        row.extend(f.iter().map(|x| format!("{:.1}%", x * 100.0)));
        rows.push(row);
        json.push(serde_json::json!({
            "setup": format!("{n}x{rps}"),
            "fractions": Stage::ALL.iter().zip(f).map(|(s, x)| (s.label(), x)).collect::<Vec<_>>(),
        }));
    }
    let mut headers = vec!["setup"];
    headers.extend(Stage::ALL.iter().map(|s| s.label()));
    print!("{}", table(&headers, &rows));
    println!("\npaper observations to check:");
    println!("  (i)  prefill waiting stays controlled as aggregate rate rises");
    println!("  (ii) decoding waiting dominates but is spread across execution");
    println!("       without violating SLOs; KV overheads are negligible");
    dump_json("fig14_breakdown", &serde_json::json!(json));
}
