//! Figure 17: sensitivity studies.
//!
//! Left: a 4×A10 node (2 prefill + 2 decoding instances, prefetching
//! disabled because 24 GB cannot hold two models) serving 6–7B models at
//! RPS 0.1 with increasing model counts, under Strict (0.5×), Normal and
//! Loose (2×) TBT.
//!
//! Right: an 8×H800 node serving 72B models at TP = 4 (one prefill + one
//! decoding instance), 4 models, increasing per-model rates, under Strict
//! (0.5×), Normal and Loose (2×) TTFT.

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{banner, dump_json, print_sweep, uniform_trace, HORIZON_SECS, SEED};
use aegaeon_model::Zoo;
use aegaeon_workload::{LengthDist, SloSpec};

fn main() {
    banner("fig17_sensitivity", "Figure 17 (lower-end hardware and larger models)");
    let zoo = Zoo::standard();

    // Left: A10 node, 6–7B models.
    let small: Vec<&aegaeon_model::ModelSpec> = vec![
        zoo.get("Yi-6B").expect("zoo"),
        zoo.get("Llama-2-7B").expect("zoo"),
        zoo.get("Qwen-7B").expect("zoo"),
    ];
    let counts = [4usize, 6, 8, 10];
    let series: Vec<(String, Vec<(f64, f64)>)> = [("Strict", 0.5), ("Normal", 1.0), ("Loose", 2.0)]
        .iter()
        .map(|(name, f)| {
            let slo = SloSpec::paper_default().with_tbt_scaled(*f);
            let pts = counts
                .iter()
                .map(|&n| {
                    let models = Zoo::replicate(&small, n);
                    let trace =
                        uniform_trace(n, 0.1, HORIZON_SECS, SEED + n as u64, LengthDist::sharegpt());
                    let mut cfg = AegaeonConfig::a10_testbed();
                    cfg.seed = SEED;
                    cfg.target_tbt = slo.tbt.as_secs_f64();
                    let r = ServingSystem::run(&cfg, &models, &trace);
                    (n as f64, r.attainment(slo).ratio())
                })
                .collect();
            (format!("{name} TBT"), pts)
        })
        .collect();
    print_sweep("(left) 4xA10, RPS = 0.1, 6-7B models", "#models", &series);

    // Right: 72B at TP=4 on one 8×H800 node.
    let m72 = zoo.get("Qwen-72B").expect("zoo");
    let rates = [0.4, 0.9, 1.4, 1.9, 2.4];
    let series_r: Vec<(String, Vec<(f64, f64)>)> = [("Strict", 0.5), ("Normal", 1.0), ("Loose", 2.0)]
        .iter()
        .map(|(name, f)| {
            let slo = SloSpec::paper_default().with_ttft_scaled(*f);
            let pts = rates
                .iter()
                .map(|&rate| {
                    let models = Zoo::replicate(&[m72], 4);
                    let trace = uniform_trace(
                        4,
                        rate / 4.0,
                        HORIZON_SECS,
                        SEED + (rate * 100.0) as u64,
                        LengthDist::sharegpt(),
                    );
                    let mut cfg = AegaeonConfig::tp4_testbed();
                    cfg.seed = SEED;
                    cfg.target_tbt = slo.tbt.as_secs_f64();
                    let r = ServingSystem::run(&cfg, &models, &trace);
                    (rate, r.attainment(slo).ratio())
                })
                .collect();
            (format!("{name} TTFT"), pts)
        })
        .collect();
    print_sweep(
        "(right) 8xH800, TP = 4, four 72B models, varying aggregate rate",
        "agg req/s",
        &series_r,
    );

    dump_json(
        "fig17_sensitivity",
        &serde_json::json!({ "a10": series, "tp4_72b": series_r }),
    );
}
