//! Figure 17: sensitivity studies.
//!
//! Left: a 4×A10 node (2 prefill + 2 decoding instances, prefetching
//! disabled because 24 GB cannot hold two models) serving 6–7B models at
//! RPS 0.1 with increasing model counts, under Strict (0.5×), Normal and
//! Loose (2×) TBT.
//!
//! Right: an 8×H800 node serving 72B models at TP = 4 (one prefill + one
//! decoding instance), 4 models, increasing per-model rates, under Strict
//! (0.5×), Normal and Loose (2×) TTFT.
//!
//! Both (SLO scale × load) grids fan out through [`sweep::map`].

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{banner, dump_json, print_sweep, sweep, uniform_trace, HORIZON_SECS, SEED};
use aegaeon_model::Zoo;
use aegaeon_workload::{LengthDist, SloSpec};

const SLO_SCALES: [(&str, f64); 3] = [("Strict", 0.5), ("Normal", 1.0), ("Loose", 2.0)];

fn main() {
    banner("fig17_sensitivity", "Figure 17 (lower-end hardware and larger models)");
    let zoo = Zoo::standard();

    // Left: A10 node, 6–7B models.
    let small: Vec<&aegaeon_model::ModelSpec> = vec![
        zoo.get("Yi-6B").expect("zoo"),
        zoo.get("Llama-2-7B").expect("zoo"),
        zoo.get("Qwen-7B").expect("zoo"),
    ];
    let counts = [4usize, 6, 8, 10];
    let points_l: Vec<(f64, usize)> = SLO_SCALES
        .iter()
        .flat_map(|&(_, f)| counts.iter().map(move |&n| (f, n)))
        .collect();
    let ratios_l = sweep::map(&points_l, |&(f, n)| {
        let slo = SloSpec::paper_default().with_tbt_scaled(f);
        let models = Zoo::replicate(&small, n);
        let trace = uniform_trace(n, 0.1, HORIZON_SECS, SEED + n as u64, LengthDist::sharegpt());
        let mut cfg = AegaeonConfig::a10_testbed();
        cfg.seed = SEED;
        cfg.target_tbt = slo.tbt.as_secs_f64();
        let r = ServingSystem::run(&cfg, &models, &trace);
        r.attainment(slo).ratio()
    });
    let series: Vec<(String, Vec<(f64, f64)>)> = SLO_SCALES
        .iter()
        .enumerate()
        .map(|(si, (name, _))| {
            let pts = counts
                .iter()
                .enumerate()
                .map(|(ci, &n)| (n as f64, ratios_l[si * counts.len() + ci]))
                .collect();
            (format!("{name} TBT"), pts)
        })
        .collect();
    print_sweep("(left) 4xA10, RPS = 0.1, 6-7B models", "#models", &series);

    // Right: 72B at TP=4 on one 8×H800 node.
    let m72 = zoo.get("Qwen-72B").expect("zoo");
    let rates = [0.4, 0.9, 1.4, 1.9, 2.4];
    let points_r: Vec<(f64, f64)> = SLO_SCALES
        .iter()
        .flat_map(|&(_, f)| rates.iter().map(move |&rate| (f, rate)))
        .collect();
    let ratios_r = sweep::map(&points_r, |&(f, rate)| {
        let slo = SloSpec::paper_default().with_ttft_scaled(f);
        let models = Zoo::replicate(&[m72], 4);
        let trace = uniform_trace(
            4,
            rate / 4.0,
            HORIZON_SECS,
            SEED + (rate * 100.0) as u64,
            LengthDist::sharegpt(),
        );
        let mut cfg = AegaeonConfig::tp4_testbed();
        cfg.seed = SEED;
        cfg.target_tbt = slo.tbt.as_secs_f64();
        let r = ServingSystem::run(&cfg, &models, &trace);
        r.attainment(slo).ratio()
    });
    let series_r: Vec<(String, Vec<(f64, f64)>)> = SLO_SCALES
        .iter()
        .enumerate()
        .map(|(si, (name, _))| {
            let pts = rates
                .iter()
                .enumerate()
                .map(|(ri, &rate)| (rate, ratios_r[si * rates.len() + ri]))
                .collect();
            (format!("{name} TTFT"), pts)
        })
        .collect();
    print_sweep(
        "(right) 8xH800, TP = 4, four 72B models, varying aggregate rate",
        "agg req/s",
        &series_r,
    );

    dump_json(
        "fig17_sensitivity",
        &serde_json::json!({ "a10": series, "tp4_72b": series_r }),
    );
}
