//! Ablations of the design constants the paper fixes by grid search or
//! experience, validating its robustness claims:
//!
//! * `QMAX = 4 s` (§4.3: "we find Aegaeon to be robust under alternative
//!   settings");
//! * `MAX_GPSIZE = 8` (§4.2: "larger values behave identically ... smaller
//!   values can still cause excessive scaling under high load");
//! * the 6 prefill / 10 decoding split (§7.2);
//! * the unified-cache slab size (§5.2: "customizable with the slab size",
//!   trading fragmentation against management overhead).

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{banner, dump_json, market_models, uniform_trace, HORIZON_SECS, SEED};
use aegaeon_metrics::report::table;
use aegaeon_workload::{LengthDist, SloSpec};

fn run_with(mutate: impl FnOnce(&mut AegaeonConfig), models: usize, rps: f64) -> (f64, f64, f64) {
    let m = market_models(models);
    let trace = uniform_trace(models, rps, HORIZON_SECS, SEED, LengthDist::sharegpt());
    let mut cfg = AegaeonConfig::paper_testbed();
    mutate(&mut cfg);
    let r = ServingSystem::run(&cfg, &m, &trace);
    let att = r.attainment(SloSpec::paper_default()).ratio();
    let scale_mean = r.scale_latencies.iter().sum::<f64>() / r.scale_latencies.len().max(1) as f64;
    let frag = r.frag_rows.last().map(|x| x.fragmentation).unwrap_or(0.0);
    (att, scale_mean, frag)
}

fn main() {
    banner("ablation_design", "design-choice ablations (§4.2, §4.3, §5.2, §7.2)");
    let mut json = serde_json::Map::new();

    // --- QMAX -------------------------------------------------------------
    println!("\nQMAX (decoding quota cap), 60 models @ RPS 0.1:");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for qmax in [1.0, 2.0, 4.0, 6.0, 8.0] {
        let (att, _, _) = run_with(|c| c.qmax = qmax, 60, 0.1);
        rows.push(vec![format!("{qmax}s"), format!("{:.1}%", att * 100.0)]);
        series.push(serde_json::json!({"qmax": qmax, "attainment": att}));
    }
    print!("{}", table(&["QMAX", "attainment"], &rows));
    println!("paper: QMAX = 4 s, robust under alternative settings");
    json.insert("qmax".into(), serde_json::json!(series));

    // --- MAX_GPSIZE --------------------------------------------------------
    println!("\nMAX_GPSIZE (prefill group cap), 48 models @ RPS 0.3:");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for g in [1u32, 2, 4, 8, 16] {
        let (att, _, _) = run_with(|c| c.max_gpsize = g, 48, 0.3);
        rows.push(vec![format!("{g}"), format!("{:.1}%", att * 100.0)]);
        series.push(serde_json::json!({"max_gpsize": g, "attainment": att}));
    }
    print!("{}", table(&["MAX_GPSIZE", "attainment"], &rows));
    println!("paper: 8 via grid search; small caps over-scale under load, large ones behave alike");
    json.insert("max_gpsize".into(), serde_json::json!(series));

    // --- prefill/decode split ----------------------------------------------
    println!("\nprefill:decoding split of 16 GPUs, 60 models @ RPS 0.1:");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for p in [2usize, 4, 6, 8, 10] {
        let (att, _, _) = run_with(|c| c.prefill_instances = p, 60, 0.1);
        rows.push(vec![format!("{p}:{}", 16 - p), format!("{:.1}%", att * 100.0)]);
        series.push(serde_json::json!({"prefill": p, "attainment": att}));
    }
    print!("{}", table(&["split", "attainment"], &rows));
    println!("paper: 6:10 for all end-to-end experiments");
    json.insert("split".into(), serde_json::json!(series));

    // --- slab size -----------------------------------------------------------
    println!("\nunified-cache slab size, 48 models @ RPS 0.15:");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for mb in [32u64, 64, 128, 256, 512] {
        let (att, _, frag) = run_with(|c| c.slab_bytes = mb << 20, 48, 0.15);
        rows.push(vec![
            format!("{mb} MB"),
            format!("{:.1}%", att * 100.0),
            format!("{:.1}%", frag * 100.0),
        ]);
        series.push(serde_json::json!({"slab_mb": mb, "attainment": att, "fragmentation": frag}));
    }
    print!("{}", table(&["slab", "attainment", "CPU-cache frag"], &rows));
    println!("paper: slab size balances management overhead against fragmentation");
    json.insert("slab".into(), serde_json::json!(series));

    dump_json("ablation_design", &serde_json::Value::Object(json));
}
