//! Figure 12: end-to-end SLO attainment on the ShareGPT-ix2 (doubled
//! inputs) and ShareGPT-ox2 (doubled outputs) datasets.
//!
//! Paper: up to 2.5× higher goodput than ServerlessLLM for longer outputs
//! (more HOL blocking to exploit); every system dips slightly on longer
//! inputs.

use aegaeon_bench::{
    banner, dump_json, market_models, print_sweep, run_system, uniform_trace, System,
    HORIZON_SECS, SEED,
};
use aegaeon_workload::{LengthDist, SloSpec};

fn sweep(
    dataset: LengthDist,
    rps: f64,
    counts: &[usize],
) -> Vec<(String, Vec<(f64, f64)>)> {
    let slo = SloSpec::paper_default();
    System::ALL
        .iter()
        .map(|sys| {
            let pts = counts
                .iter()
                .map(|&n| {
                    let models = market_models(n);
                    let trace = uniform_trace(n, rps, HORIZON_SECS, SEED + n as u64, dataset);
                    (n as f64, run_system(*sys, &models, &trace, slo, rps).ratio())
                })
                .collect();
            (sys.label().to_string(), pts)
        })
        .collect()
}

fn main() {
    banner("fig12_datasets", "Figure 12 (alternative datasets)");
    let counts_01 = [20usize, 30, 40, 50, 60, 70, 80];
    let counts_05 = [16usize, 24, 32, 40, 48];

    let a = sweep(LengthDist::sharegpt_ix2(), 0.1, &counts_01);
    print_sweep("(a) RPS = 0.1, ShareGPT-ix2", "#models", &a);
    let b = sweep(LengthDist::sharegpt_ox2(), 0.1, &counts_01);
    print_sweep("(b) RPS = 0.1, ShareGPT-ox2", "#models", &b);
    let c = sweep(LengthDist::sharegpt_ix2(), 0.5, &counts_05);
    print_sweep("(c) RPS = 0.5, ShareGPT-ix2", "#models", &c);
    let d = sweep(LengthDist::sharegpt_ox2(), 0.5, &counts_05);
    print_sweep("(d) RPS = 0.5, ShareGPT-ox2", "#models", &d);

    dump_json(
        "fig12_datasets",
        &serde_json::json!({ "a_ix2_rps01": a, "b_ox2_rps01": b, "c_ix2_rps05": c, "d_ox2_rps05": d }),
    );
}
