//! Figure 13: end-to-end SLO attainment under stricter SLOs (0.5×, 0.3×,
//! 0.2× of the default 10 s TTFT / 100 ms TBT).
//!
//! Paper: Aegaeon stays ahead at 0.5× and 0.3×; at 0.2× (2 s / 20 ms) the
//! slack disappears and static multiplexing (MuxServe) wins, though
//! Aegaeon still beats request-level auto-scaling.
//!
//! All three SLO panels share one [`sweep::map`] fan-out over the full
//! (factor, system, count) grid.

use aegaeon_bench::{
    banner, dump_json, market_models, print_sweep, run_system, sweep, uniform_trace, System,
    HORIZON_SECS, SEED,
};
use aegaeon_workload::{LengthDist, SloSpec};

fn main() {
    banner("fig13_strict_slo", "Figure 13 (stricter SLOs)");
    let counts = [16usize, 24, 32, 40, 50, 60];
    let systems = [System::Aegaeon, System::ServerlessLlm, System::MuxServe];
    let panels = [("(a) 0.5x SLO", 0.5), ("(b) 0.3x SLO", 0.3), ("(c) 0.2x SLO", 0.2)];

    let points: Vec<(f64, System, usize)> = panels
        .iter()
        .flat_map(|&(_, factor)| {
            systems
                .iter()
                .flat_map(move |&sys| counts.into_iter().map(move |n| (factor, sys, n)))
        })
        .collect();
    let ratios = sweep::map(&points, |&(factor, sys, n)| {
        let slo = SloSpec::paper_default().scaled(factor);
        let models = market_models(n);
        let trace = uniform_trace(n, 0.1, HORIZON_SECS, SEED + n as u64, LengthDist::sharegpt());
        run_system(sys, &models, &trace, slo, 0.1).ratio()
    });

    let mut json = serde_json::Map::new();
    for (pi, (label, factor)) in panels.iter().enumerate() {
        let series: Vec<(String, Vec<(f64, f64)>)> = systems
            .iter()
            .enumerate()
            .map(|(si, sys)| {
                let pts = counts
                    .iter()
                    .enumerate()
                    .map(|(ci, &n)| {
                        let idx = (pi * systems.len() + si) * counts.len() + ci;
                        (n as f64, ratios[idx])
                    })
                    .collect();
                (sys.label().to_string(), pts)
            })
            .collect();
        print_sweep(
            &format!("{label} (TTFT {:.1}s, TBT {:.0}ms)", 10.0 * factor, 100.0 * factor),
            "#models",
            &series,
        );
        json.insert(label.to_string(), serde_json::json!(series));
    }
    dump_json("fig13_strict_slo", &serde_json::Value::Object(json));
}
