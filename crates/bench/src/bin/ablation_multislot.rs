//! The §8 future-work extension: incorporating multiplexing by colocating
//! multiple resident models per instance ("dynamically switching colocated
//! models and orchestrating their execution with our SLO-aware
//! scheduling"). With two weight slots, switching among colocated models is
//! free; the cost is a smaller unified GPU KV cache.

use aegaeon::{AegaeonConfig, ServingSystem};
use aegaeon_bench::{banner, dump_json, uniform_trace, HORIZON_SECS, SEED};
use aegaeon_metrics::report::table;
use aegaeon_model::Zoo;
use aegaeon_workload::{LengthDist, SloSpec};

fn main() {
    banner(
        "ablation_multislot",
        "§8 extension: colocated weight slots (token-level multiplexing hybrid)",
    );
    // Small models so two shards plus a useful KV region share 80 GB.
    let zoo = Zoo::standard();
    let small: Vec<&aegaeon_model::ModelSpec> = vec![
        zoo.get("Yi-6B").expect("zoo"),
        zoo.get("Llama-2-7B").expect("zoo"),
        zoo.get("Qwen-7B").expect("zoo"),
        zoo.get("InternLM2.5-7B").expect("zoo"),
    ];
    let slo = SloSpec::paper_default();
    let mut json = Vec::new();
    for &n in &[48usize, 64, 80, 96] {
        let models = Zoo::replicate(&small, n);
        let trace = uniform_trace(n, 0.1, HORIZON_SECS, SEED + n as u64, LengthDist::sharegpt());
        let mut rows = Vec::new();
        for slots in [1u32, 2] {
            let mut cfg = AegaeonConfig::paper_testbed();
            cfg.weight_slots = slots;
            let r = ServingSystem::run(&cfg, &models, &trace);
            let att = r.attainment(slo);
            let mean_scale = r.scale_latencies.iter().sum::<f64>()
                / r.scale_latencies.len().max(1) as f64;
            rows.push(vec![
                format!("{slots}"),
                format!("{:.1}%", att.percent()),
                format!("{}", r.scale_count),
                format!("{mean_scale:.2}s"),
            ]);
            json.push(serde_json::json!({
                "models": n,
                "slots": slots,
                "attainment": att.ratio(),
                "scale_ups": r.scale_count,
            }));
        }
        println!("\n{n} models (6-7B class) @ RPS 0.1:");
        print!(
            "{}",
            table(&["weight slots", "SLO att.", "scale-ups", "mean scale"], &rows)
        );
    }
    println!("\ncolocation converts roughly a third of paid scale-ups into free");
    println!("activations at equal attainment; the smaller unified KV cache offsets");
    println!("the switch savings at these loads — the tradeoff §8 anticipates.");
    dump_json("ablation_multislot", &serde_json::json!(json));
}
