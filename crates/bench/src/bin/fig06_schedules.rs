//! Figures 2 and 6: exemplar token-level schedules on two GPUs.
//!
//! Prefill-first unified scheduling harms TBT under bursts; decoding-first
//! harms TTFT; disaggregation balances both. Rendered as ASCII Gantt
//! timelines (P prefill, D decode, S auto-scaling).

use aegaeon::unified::{figure6_scenario, run_unified, UnifiedPolicy};
use aegaeon_bench::{banner, dump_json};
use aegaeon_metrics::report::render_timeline;
use aegaeon_sim::SimTime;

fn main() {
    banner("fig06_schedules", "Figure 6 (and the Figure 2 comparison)");
    let (cfg, reqs) = figure6_scenario();
    println!(
        "scenario: {} requests, 3 models, 2 GPUs; switch {:.1}s, decode step {:.0}ms, TTFT {:.1}s, TBT {:.0}ms",
        reqs.len(),
        cfg.switch_secs,
        cfg.decode_step * 1e3,
        cfg.ttft,
        cfg.tbt * 1e3
    );
    let mut json = Vec::new();
    for (name, policy) in [
        ("(a) prefill-prioritized", UnifiedPolicy::PrefillFirst),
        ("(b) decoding-prioritized", UnifiedPolicy::DecodeFirst),
        (
            "(c) disaggregated (Aegaeon)",
            UnifiedPolicy::Disaggregated { prefill_gpus: 1 },
        ),
    ] {
        let r = run_unified(policy, &cfg, &reqs);
        println!(
            "\n{name}: {}/{} token deadlines missed; worst TTFT {:.2}s; makespan {:.1}s",
            r.violations,
            r.tokens,
            r.ttft.iter().cloned().fold(0.0, f64::max),
            r.makespan
        );
        let end = SimTime::from_secs_f64(r.makespan.min(20.0));
        print!(
            "{}",
            render_timeline(&r.trace, SimTime::ZERO, end, 100)
        );
        json.push(serde_json::json!({
            "policy": name,
            "violations": r.violations,
            "tokens": r.tokens,
            "worst_ttft": r.ttft.iter().cloned().fold(0.0, f64::max),
        }));
    }
    println!("\n(glyphs: P prefill, D decode, S model switch; one row per GPU)");
    dump_json("fig06_schedules", &serde_json::json!(json));
}
