//! Figure 1: concurrent LLM serving workload characteristics.
//!
//! (a) CDF of model invocations: 94.1% of 779 models receive 1.35% of the
//!     requests (equivalently, the head 5.9% receives 98.65%).
//! (b) Request-rate fluctuation for a hot model: bursts exceed reserved
//!     capacity.

use aegaeon_bench::{banner, dump_json};
use aegaeon_sim::{SimRng, SimTime};
use aegaeon_workload::popularity::{head_share, request_cdf, zipf_weights, MARKET_ZIPF_EXPONENT};
use aegaeon_workload::BurstProcess;

fn main() {
    banner("fig01_workload", "Figure 1 (workload skew and bursts)");

    // --- (a) model-invocation CDF ---------------------------------------
    let n_models = 779usize;
    let w = zipf_weights(n_models, MARKET_ZIPF_EXPONENT);
    let cdf = request_cdf(&w, 20);
    println!("\n(a) CDF of model invocations ({} models, Zipf s = {MARKET_ZIPF_EXPONENT}):", n_models);
    println!("  top-models%  requests%");
    for (x, y) in &cdf {
        println!("  {:10.1}%  {:8.2}%", x * 100.0, y * 100.0);
    }
    let tail_share = 1.0 - head_share(&w, 0.059);
    println!(
        "  tail 94.1% of models receive {:.2}% of requests (paper: 1.35%)",
        tail_share * 100.0
    );

    // --- (b) burst pattern on a hot model --------------------------------
    let p = BurstProcess {
        base_rate: 620.0,
        burst_rate: 900.0,
        mean_quiet: 120.0,
        mean_burst: 25.0,
    };
    let mut rng = SimRng::seed_from_u64(11);
    let horizon = SimTime::from_secs_f64(700.0);
    let arrivals = p.arrivals(&mut rng, horizon);
    let reserved = 800.0; // req/s of provisioned capacity
    let mut buckets = vec![0u32; 70];
    for t in &arrivals {
        let b = (t.as_secs_f64() / 10.0) as usize;
        if b < buckets.len() {
            buckets[b] += 1;
        }
    }
    println!("\n(b) hot-model request rate over time (10 s windows, reserved = {reserved} req/s):");
    let mut over = 0;
    for (i, c) in buckets.iter().enumerate() {
        let rate = *c as f64 / 10.0;
        let mark = if rate > reserved { "  << BURST over reserved" } else { "" };
        if i % 7 == 0 || rate > reserved {
            println!("  t={:4}s  {:7.1} req/s{mark}", i * 10, rate);
        }
        if rate > reserved {
            over += 1;
        }
    }
    println!("  windows exceeding reserved capacity: {over}/70");

    dump_json(
        "fig01_workload",
        &serde_json::json!({
            "cdf": cdf,
            "tail_request_share": tail_share,
            "paper_tail_request_share": 0.0135,
            "burst_windows_over_reserved": over,
        }),
    );
}
