//! Open-loop soak harness for the live serving gateway.
//!
//! Generates a multi-model arrival schedule with the standard workload
//! synthesizer, compresses it onto the wall clock with
//! [`Trace::time_scaled`], and fires each request at its scheduled wall
//! instant regardless of completions (open-system load, the paper's §7
//! methodology — closed-loop clients understate tail latency). Each
//! request is a real `POST /v1/completions`; the SSE stream is consumed
//! frame by frame to timestamp first and subsequent tokens.
//!
//! Load is driven by the [`Swarm`](aegaeon_gateway::swarm::Swarm): a small
//! connector pool fires requests off a shared cursor and one reactor
//! thread reads every live stream, so tens of thousands of streams can be
//! simultaneously open from a handful of threads. The harness is honest
//! about its own limits and **gates on them**:
//!
//! * `--max-lag-ticks T` (default 1.0): exit 3 when the worst firing lag
//!   exceeds `T` timewarped ticks (`T / warp` wall-seconds) — a late
//!   generator means the measured tail is the client's fault, so the run
//!   is not allowed to pass.
//! * `--min-concurrent N`: exit 4 when peak simultaneously open streams
//!   never reached `N` — a soak that never achieved its concurrency
//!   target proved nothing.
//! * Any failed stream (connect error, non-200/429 status, reset) exits 1.
//!
//! ```text
//! gateway_bench [--addr HOST:PORT[,HOST:PORT...]] [--models N] [--rps R]
//!               [--secs S] [--warp K] [--cap-tokens N] [--seed S]
//!               [--connectors N] [--reactors N|auto] [--prefill N]
//!               [--decode N] [--max-inflight N] [--chaos PLAN]
//!               [--min-concurrent N] [--max-lag-ticks T] [--out FILE]
//! ```
//!
//! With `--addr`, drives an externally started gateway (two-process mode:
//! the client's 10k+ stream fds and the server's live in one fd budget
//! each); otherwise boots an in-process gateway in timewarp mode and
//! drives that. `--addr` accepts a comma-separated list: a single
//! client→server address pair caps out at the ephemeral-port range (~28k
//! concurrent streams), so 100k-class soaks list several loopback aliases
//! of a gateway bound to `0.0.0.0` (round-robined per request). Writes
//! `BENCH_gateway_throughput.json` at the repository root (or `--out`),
//! including the generator's own peak fd count, peak RSS, the host's core
//! count, and the per-reactor peak-stream balance scraped from the
//! gateway's `/metrics` — so resource and sharding claims are part of the
//! artifact.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use aegaeon::AegaeonConfig;
use aegaeon_bench::analyze::Analysis;
use aegaeon_bench::{banner, market_models, uniform_trace, SEED};
use aegaeon_gateway::server::{Gateway, GatewayConfig};
use aegaeon_gateway::swarm::{StreamSample, Swarm, SwarmOptions};
use aegaeon_gateway::ClockMode;
use aegaeon_telemetry::QuantileSketch;
use aegaeon_workload::LengthDist;

/// Relative accuracy of the client-side latency sketches (matches the
/// server-side observatory, so client and server quantiles are comparable).
const SKETCH_ALPHA: f64 = 0.01;

struct Args {
    addr: Option<String>,
    models: usize,
    rps: f64,
    secs: f64,
    warp: f64,
    cap_tokens: u32,
    seed: u64,
    connectors: usize,
    prefill: usize,
    decode: usize,
    max_inflight: u32,
    chaos: Option<String>,
    min_concurrent: usize,
    max_lag_ticks: f64,
    out: Option<String>,
    reactors: usize,
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        models: 4,
        rps: 1.0,
        secs: 40.0,
        warp: 20.0,
        cap_tokens: 16,
        seed: SEED,
        connectors: host_parallelism(),
        prefill: 1,
        decode: 1,
        max_inflight: 1024,
        chaos: None,
        min_concurrent: 0,
        max_lag_ticks: 1.0,
        out: None,
        reactors: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        fn num<T: std::str::FromStr>(name: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{name}: {e}"))
        }
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--models" => args.models = num("--models", value("--models")?)?,
            "--rps" => args.rps = num("--rps", value("--rps")?)?,
            "--secs" => args.secs = num("--secs", value("--secs")?)?,
            "--warp" => args.warp = num("--warp", value("--warp")?)?,
            "--cap-tokens" => args.cap_tokens = num("--cap-tokens", value("--cap-tokens")?)?,
            "--seed" => args.seed = num("--seed", value("--seed")?)?,
            // Back-compat alias: the old thread-per-stream harness called
            // its pool size --clients.
            "--connectors" | "--clients" => {
                args.connectors = num("--connectors", value("--connectors")?)?
            }
            "--prefill" => args.prefill = num("--prefill", value("--prefill")?)?,
            "--decode" => args.decode = num("--decode", value("--decode")?)?,
            "--max-inflight" => args.max_inflight = num("--max-inflight", value("--max-inflight")?)?,
            "--chaos" => args.chaos = Some(value("--chaos")?),
            "--min-concurrent" => {
                args.min_concurrent = num("--min-concurrent", value("--min-concurrent")?)?
            }
            "--max-lag-ticks" => {
                args.max_lag_ticks = num("--max-lag-ticks", value("--max-lag-ticks")?)?
            }
            "--out" => args.out = Some(value("--out")?),
            // Reactor count for the in-process gateway (ignored with --addr;
            // there the external gateway picks its own).
            "--reactors" => {
                let v = value("--reactors")?;
                args.reactors = if v == "auto" {
                    host_parallelism()
                } else {
                    num("--reactors", v)?
                };
                if args.reactors == 0 {
                    return Err("--reactors must be >= 1".to_string());
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Sorted-vector percentile: the exact oracle the sketch-based path is
/// tested against (rank convention matches [`QuantileSketch::quantile`]).
#[cfg(test)]
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).floor() as usize;
    sorted[idx]
}

/// Folds an iterator of seconds into a quantile sketch. Replaces the old
/// sort-the-whole-vector percentile path: memory is O(buckets) instead of
/// O(streams), and per-connector sketches could be merged exactly.
fn sketch_of(vals: impl Iterator<Item = f64>) -> QuantileSketch {
    let mut s = QuantileSketch::new(SKETCH_ALPHA);
    for v in vals {
        s.insert(v);
    }
    s
}

/// Open fds of this process right now (Linux; 0 elsewhere).
fn current_fds() -> usize {
    std::fs::read_dir("/proc/self/fd").map_or(0, |d| d.count())
}

/// One blocking HTTP GET against the gateway; whole response text (headers
/// included) on success.
fn http_get(addr: SocketAddr, path: &str) -> Option<String> {
    (|| -> std::io::Result<String> {
        let mut s = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        s.set_read_timeout(Some(Duration::from_secs(5)))?;
        s.write_all(
            format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n").as_bytes(),
        )?;
        let mut text = String::new();
        s.read_to_string(&mut text)?;
        Ok(text)
    })()
    .ok()
}

/// Body of one HTTP GET (everything after the header terminator).
fn http_get_body(addr: SocketAddr, path: &str) -> Option<String> {
    let text = http_get(addr, path)?;
    let at = text.find("\r\n\r\n")?;
    Some(text[at + 4..].to_string())
}

/// `reactor_peak_streams{reactor="i"}` gauges out of a `/metrics` body, in
/// reactor order. Empty when absent (the balance then reports as
/// unavailable rather than failing the soak).
fn parse_reactor_peaks(text: &str) -> Vec<u64> {
    let mut peaks: Vec<(usize, u64)> = text
        .lines()
        .filter_map(|l| {
            let rest = l.strip_prefix("reactor_peak_streams{reactor=\"")?;
            let (id, rest) = rest.split_once("\"}")?;
            Some((id.parse().ok()?, rest.trim().parse().ok()?))
        })
        .collect();
    peaks.sort_by_key(|(id, _)| *id);
    peaks.into_iter().map(|(_, v)| v).collect()
}

/// Per-model SLO evidence scraped from the gateway's `/metrics` summaries:
/// `(model, slo_attainment, ttft p50/p90/p99, tbt p50/p90/p99)`, in model
/// order. Models with no completed requests report NaN quantiles.
fn scrape_per_model_slo(text: &str, n_models: usize) -> Vec<(String, f64, [f64; 3], [f64; 3])> {
    fn quantile_line(text: &str, fam: &str, model: &str, q: &str) -> f64 {
        let prefix = format!("{fam}{{model=\"{model}\",quantile=\"{q}\"}} ");
        text.lines()
            .find_map(|l| l.strip_prefix(prefix.as_str()))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(f64::NAN)
    }
    (0..n_models)
        .map(|m| {
            let model = format!("m{m}");
            let attain = {
                let prefix = format!("slo_attainment{{model=\"{model}\"}} ");
                text.lines()
                    .find_map(|l| l.strip_prefix(prefix.as_str()))
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(f64::NAN)
            };
            let q3 = |fam: &str| {
                ["0.5", "0.9", "0.99"].map(|q| quantile_line(text, fam, &model, q))
            };
            let (ttft, tbt) = (q3("ttft_seconds"), q3("tbt_seconds"));
            (model, attain, ttft, tbt)
        })
        .collect()
}

/// Peak resident set of this process in bytes (Linux VmHWM; 0 elsewhere).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gateway_bench: {e}");
            std::process::exit(2);
        }
    };
    banner("gateway_bench", "open-loop soak against the live gateway");

    // The arrival schedule: a standard synthesized trace, compressed onto
    // the wall clock so `--secs` of simulated traffic plays out in
    // `--secs / --warp` wall seconds.
    let trace = uniform_trace(args.models, args.rps, args.secs, args.seed, LengthDist::sharegpt());
    let wall_plan = trace.time_scaled(args.warp);
    let n = wall_plan.requests.len();
    if n == 0 {
        eprintln!("gateway_bench: empty schedule (raise --rps or --secs)");
        std::process::exit(2);
    }

    // Self-host unless an external gateway was given. `--addr` may list
    // several destinations (loopback aliases of one gateway) to widen the
    // 4-tuple space past one ephemeral-port range.
    let (addrs, hosted): (Vec<SocketAddr>, _) = match &args.addr {
        Some(a) => (
            a.split(',')
                .map(|s| s.trim().parse().expect("--addr must be HOST:PORT[,HOST:PORT...]"))
                .collect(),
            None,
        ),
        None => {
            let mut cfg = AegaeonConfig::small_testbed(args.prefill, args.decode);
            cfg.seed = args.seed;
            if let Some(plan) = &args.chaos {
                cfg.faults = match plan.parse() {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("gateway_bench: --chaos: {e}");
                        std::process::exit(2);
                    }
                };
            }
            let models = market_models(args.models);
            let mut gw_cfg = GatewayConfig::local(ClockMode::Timewarp(args.warp));
            gw_cfg.admission.max_inflight_total = args.max_inflight;
            gw_cfg.reactors = args.reactors;
            let gw = Gateway::start(&cfg, &models, gw_cfg).expect("start in-process gateway");
            (vec![gw.addr()], Some(gw))
        }
    };
    println!(
        "driving {} requests over {:.1}s wall ({} models, offered {:.2} rps/model sim, warp {}x) -> {:?}",
        n,
        args.secs / args.warp,
        args.models,
        args.rps,
        args.warp,
        addrs
    );

    // Pre-render the schedule (time-ordered: the synthesizer emits sorted
    // arrivals and time scaling preserves order).
    let schedule: Vec<(Duration, String)> = wall_plan
        .requests
        .iter()
        .map(|r| {
            let body = format!(
                r#"{{"model":"m{}","input_tokens":{},"max_tokens":{}}}"#,
                r.model.0,
                r.input_tokens.max(1),
                r.output_tokens.clamp(1, args.cap_tokens)
            );
            (Duration::from_nanos(r.arrival_ns), body)
        })
        .collect();

    let started = Instant::now();
    let opts = SwarmOptions {
        connectors: args.connectors.max(1),
        ..SwarmOptions::default()
    };
    let connectors = opts.connectors;
    let swarm = Swarm::launch_multi(addrs.clone(), schedule, opts).expect("launch swarm");

    // Progress + resource high-water loop until every stream resolves.
    // The per-reactor peak gauges and the SLO observatory snapshots are
    // scraped *during* the run — in two-process mode the gateway may exit
    // (SIGTERM + drain) before the last stream is accounted here; gauges
    // are monotone and the observatory is cumulative, so the last
    // successful scrape is the honest value.
    let mut peak_fds = current_fds();
    let mut last_print = Instant::now();
    let mut reactor_peaks: Vec<u64> = Vec::new();
    let mut metrics_text = String::new();
    let mut slo_doc = String::new();
    let mut last_scrape = Instant::now();
    while swarm.gauges().finished() < n {
        std::thread::sleep(Duration::from_millis(100));
        peak_fds = peak_fds.max(current_fds());
        if last_scrape.elapsed() >= Duration::from_secs(1) {
            if let Some(text) = http_get_body(addrs[0], "/metrics") {
                let scraped = parse_reactor_peaks(&text);
                if !scraped.is_empty() {
                    reactor_peaks = scraped;
                }
                metrics_text = text;
            }
            if let Some(doc) = http_get_body(addrs[0], "/v1/slo") {
                slo_doc = doc;
            }
            last_scrape = Instant::now();
        }
        if last_print.elapsed() >= Duration::from_secs(2) {
            let g = swarm.gauges();
            println!(
                "  t={:6.1}s fired {}/{} open {} (peak {}) finished {} lag {:.3}s fds {}",
                started.elapsed().as_secs_f64(),
                g.fired(),
                n,
                g.open(),
                g.peak_open(),
                g.finished(),
                g.max_fire_lag().as_secs_f64(),
                peak_fds,
            );
            last_print = Instant::now();
        }
    }
    let peak_open = swarm.gauges().peak_open();
    let max_fire_lag = swarm.gauges().max_fire_lag().as_secs_f64();
    let samples: Vec<StreamSample> = swarm.join();
    let wall_secs = started.elapsed().as_secs_f64();
    let rss = peak_rss_bytes();
    // Accept-sharding + SLO evidence: prefer a final scrape (the gateway
    // may still be up, e.g. in-process mode), else the last mid-run scrape.
    // The first fetch nudges a stale snapshot (`Ctl::ForceRender`); the
    // retry one refresh interval later reads the fresh render.
    let _ = http_get(addrs[0], "/metrics");
    std::thread::sleep(Duration::from_millis(300));
    if let Some(text) = http_get_body(addrs[0], "/metrics") {
        let scraped = parse_reactor_peaks(&text);
        if !scraped.is_empty() {
            reactor_peaks = scraped;
        }
        metrics_text = text;
    }
    if let Some(doc) = http_get_body(addrs[0], "/v1/slo") {
        slo_doc = doc;
    }
    let per_model = scrape_per_model_slo(&metrics_text, args.models);
    let balance = match (
        reactor_peaks.iter().copied().max(),
        reactor_peaks.iter().copied().min(),
    ) {
        (Some(max), Some(min)) if min > 0 => max as f64 / min as f64,
        _ => 0.0,
    };

    // Outcome taxonomy: `dropped` streams got a 200 head but no [DONE] —
    // the server's slow-reader backpressure (or a truncation fault) cut
    // them; they are *accounted*, not failures of the harness contract.
    let completed = samples
        .iter()
        .filter(|s| s.status == 200 && s.done && !s.io_error)
        .count();
    let rejected = samples.iter().filter(|s| s.status == 429).count();
    let dropped = samples
        .iter()
        .filter(|s| s.status == 200 && (!s.done || s.io_error))
        .count();
    let failed = n - completed - rejected - dropped;
    let total_tokens: u64 = samples.iter().map(|s| s.tokens as u64).sum();
    let ttfts = sketch_of(samples.iter().filter_map(|s| s.ttft.map(|d| d.as_secs_f64())));
    let tbts = sketch_of(
        samples
            .iter()
            .flat_map(|s| s.tbts.iter().map(|d| d.as_secs_f64())),
    );

    let offered_rps = n as f64 / wall_secs;
    let goodput = total_tokens as f64 / wall_secs;
    // One timewarped tick = one simulated second on the wall clock.
    let lag_limit = args.max_lag_ticks / args.warp.max(f64::MIN_POSITIVE);
    println!("\nresults over {wall_secs:.2}s wall:");
    println!("  offered   : {n} requests ({offered_rps:.2} rps wall, {connectors} connectors)");
    println!("  concurrent: peak {peak_open} streams open at once");
    println!("  fire lag  : worst {max_fire_lag:.4}s behind schedule (gate {lag_limit:.4}s)");
    println!(
        "  completed : {completed}   rejected(429): {rejected}   dropped: {dropped}   failed: {failed}"
    );
    println!("  goodput   : {goodput:.1} tokens/s ({total_tokens} tokens)");
    println!(
        "  TTFT      : p50 {:.3}s  p90 {:.3}s  p99 {:.3}s",
        ttfts.quantile(0.50),
        ttfts.quantile(0.90),
        ttfts.quantile(0.99)
    );
    println!(
        "  TBT       : p50 {:.3}s  p90 {:.3}s  p99 {:.3}s",
        tbts.quantile(0.50),
        tbts.quantile(0.90),
        tbts.quantile(0.99)
    );
    for (model, attain, ttft, tbt) in &per_model {
        println!(
            "  {model:<9} : attain {attain:.4}  ttft p50/p90/p99 {:.3}/{:.3}/{:.3}s  \
             tbt {:.3}/{:.3}/{:.3}s",
            ttft[0], ttft[1], ttft[2], tbt[0], tbt[1], tbt[2]
        );
    }
    println!(
        "  client    : peak {} fds, peak RSS {:.1} MiB",
        peak_fds,
        rss as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  reactors  : {} peaks {:?} balance(max/min) {:.3}",
        reactor_peaks.len(),
        reactor_peaks,
        balance
    );

    if let Some(gw) = hosted {
        let report = gw.shutdown();
        println!(
            "  gateway   : admitted {} completed {} slow_drops {} (audit rejections {})",
            report.trace.requests.len(),
            report.result.completed,
            report.slow_drops,
            report.audit.as_ref().map_or(0, |a| a.rejections)
        );
        if let Some(audit) = &report.audit {
            assert!(audit.ok(), "audit violations: {:?}", audit.violations);
        }
    }

    let json = serde_json::json!({
        "offered_requests": n as u64,
        "offered_rps_wall": offered_rps,
        "wall_secs": wall_secs,
        "warp": args.warp,
        "connectors": connectors as u64,
        "max_fire_lag_secs": max_fire_lag,
        "fire_lag_gate_secs": lag_limit,
        "peak_concurrent_streams": peak_open as u64,
        "min_concurrent_gate": args.min_concurrent as u64,
        "completed": completed as u64,
        "rejected": rejected as u64,
        "dropped": dropped as u64,
        "failed": failed as u64,
        "total_tokens": total_tokens,
        "goodput_tokens_per_sec": goodput,
        "peak_client_fds": peak_fds as u64,
        "peak_client_rss_bytes": rss,
        "host_parallelism": host_parallelism() as u64,
        "reactors": reactor_peaks.len() as u64,
        "per_reactor_peak_streams": reactor_peaks,
        "reactor_balance_max_over_min": balance,
        "ttft_secs": serde_json::json!({
            "p50": ttfts.quantile(0.50),
            "p90": ttfts.quantile(0.90),
            "p99": ttfts.quantile(0.99),
        }),
        "tbt_secs": serde_json::json!({
            "p50": tbts.quantile(0.50),
            "p90": tbts.quantile(0.90),
            "p99": tbts.quantile(0.99),
        }),
        "per_model_slo": per_model
            .iter()
            .map(|(model, attain, ttft, tbt)| {
                serde_json::json!({
                    "model": model.clone(),
                    "slo_attainment": *attain,
                    "ttft_p50": ttft[0],
                    "ttft_p90": ttft[1],
                    "ttft_p99": ttft[2],
                    "tbt_p50": tbt[0],
                    "tbt_p90": tbt[1],
                    "tbt_p99": tbt[2],
                })
            })
            .collect::<Vec<serde_json::Value>>(),
    });
    let default_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gateway_throughput.json").to_string();
    let path = args.out.unwrap_or(default_path);
    match serde_json::to_string_pretty(&json) {
        Ok(s) => {
            std::fs::write(&path, s + "\n").expect("write bench report");
            println!("\n[json] {path}");
        }
        Err(e) => eprintln!("failed to serialize report: {e}"),
    }

    // Combined server+client report: the scraped /v1/slo document plus this
    // bench's own numbers, through the same analyzer CI runs post-hoc. The
    // raw document is kept next to the report so `aegaeon-analyze --check`
    // can re-verify it offline.
    if !slo_doc.is_empty() {
        let slo_path = format!("{path}.slo.json");
        match std::fs::write(&slo_path, &slo_doc) {
            Ok(()) => println!("[slo] {slo_path}"),
            Err(e) => eprintln!("[slo] failed to write {slo_path}: {e}"),
        }
        match Analysis::from_slo_text(&slo_doc) {
            Ok(a) => {
                let a = a.with_bench_value(&json);
                let md_path = format!("{path}.slo.md");
                match std::fs::write(&md_path, a.to_markdown()) {
                    Ok(()) => println!("[slo] {md_path}"),
                    Err(e) => eprintln!("[slo] failed to write {md_path}: {e}"),
                }
                for e in a.consistency_errors() {
                    eprintln!("[consistency] {e}");
                }
            }
            Err(e) => eprintln!("[slo] failed to parse /v1/slo body: {e}"),
        }
    }

    // Honesty gates, in blame order: a late generator invalidates the
    // measurement entirely; a missed concurrency target means the soak
    // proved nothing; failed streams are a server defect.
    if max_fire_lag > lag_limit {
        eprintln!(
            "gateway_bench: FAIL: fire lag {max_fire_lag:.4}s exceeds one timewarped tick \
             ({lag_limit:.4}s) — the load generator fell behind its own schedule"
        );
        std::process::exit(3);
    }
    if peak_open < args.min_concurrent {
        eprintln!(
            "gateway_bench: FAIL: peak concurrency {peak_open} never reached --min-concurrent {}",
            args.min_concurrent
        );
        std::process::exit(4);
    }
    if failed > 0 {
        eprintln!("gateway_bench: FAIL: {failed} streams failed");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sketch path that replaced the sort-based percentiles must agree
    /// with the sorted-vector oracle within the sketch's relative-accuracy
    /// contract at every reported quantile.
    #[test]
    fn sketch_quantiles_match_sorted_oracle() {
        // Deterministic latency-shaped values spanning ~4 decades.
        let mut state = 0x9e3779b97f4a7c15u64;
        let vals: Vec<f64> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                0.001 * (1.0 / (1.0 - u * 0.9999)).powi(2)
            })
            .collect();
        let sketch = sketch_of(vals.iter().copied());
        let mut sorted = vals;
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in [0.50, 0.90, 0.99] {
            let exact = percentile(&sorted, q);
            let approx = sketch.quantile(q);
            assert!(
                (approx - exact).abs() <= SKETCH_ALPHA * 1.01 * exact,
                "q={q}: sketch {approx} vs oracle {exact}"
            );
        }
    }

    #[test]
    fn empty_inputs_agree_on_nan() {
        assert!(percentile(&[], 0.5).is_nan());
        assert!(sketch_of(std::iter::empty()).quantile(0.5).is_nan());
    }
}
