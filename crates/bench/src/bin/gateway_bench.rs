//! Open-loop load harness for the live serving gateway.
//!
//! Generates a multi-model arrival schedule with the standard workload
//! synthesizer, compresses it onto the wall clock with
//! [`Trace::time_scaled`], and fires each request at its scheduled wall
//! instant regardless of completions (open-system load, the paper's §7
//! methodology — closed-loop clients understate tail latency). Each
//! request is a real `POST /v1/completions` over a fresh TCP connection;
//! the SSE stream is consumed frame by frame to timestamp first and
//! subsequent tokens.
//!
//! Requests are fired from a bounded pool of `--clients` persistent worker
//! threads claiming the time-ordered schedule off a shared cursor, rather
//! than one OS thread per request (which collapses under multi-thousand
//! request schedules: thousands of simultaneous sleeping threads, each
//! with its own stack, all waking into the scheduler at once). A worker
//! sleeps until its claimed request's instant and fires; if every client
//! is mid-stream at an arrival instant the fire is late, so the harness
//! tracks the worst firing lag and reports it — an honest open-loop
//! harness must show when the load generator, not the server, was the
//! bottleneck.
//!
//! ```text
//! gateway_bench [--addr HOST:PORT] [--models N] [--rps R] [--secs S]
//!               [--warp K] [--cap-tokens N] [--seed S] [--clients N]
//! ```
//!
//! With `--addr`, drives an externally started gateway (CI smoke mode);
//! otherwise boots an in-process gateway in timewarp mode and drives
//! that. Writes `BENCH_gateway_throughput.json` at the repository root.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use aegaeon::AegaeonConfig;
use aegaeon_bench::{banner, market_models, uniform_trace, SEED};
use aegaeon_gateway::client::SseStream;
use aegaeon_gateway::server::{Gateway, GatewayConfig};
use aegaeon_gateway::{sse, ClockMode};
use aegaeon_workload::LengthDist;

struct Args {
    addr: Option<String>,
    models: usize,
    rps: f64,
    secs: f64,
    warp: f64,
    cap_tokens: u32,
    seed: u64,
    clients: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        models: 4,
        rps: 1.0,
        secs: 40.0,
        warp: 20.0,
        cap_tokens: 16,
        seed: SEED,
        clients: 64,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--models" => args.models = value("--models")?.parse().map_err(|e| format!("--models: {e}"))?,
            "--rps" => args.rps = value("--rps")?.parse().map_err(|e| format!("--rps: {e}"))?,
            "--secs" => args.secs = value("--secs")?.parse().map_err(|e| format!("--secs: {e}"))?,
            "--warp" => args.warp = value("--warp")?.parse().map_err(|e| format!("--warp: {e}"))?,
            "--cap-tokens" => {
                args.cap_tokens = value("--cap-tokens")?.parse().map_err(|e| format!("--cap-tokens: {e}"))?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--clients" => {
                args.clients = value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// One client's observation of one request.
#[derive(Debug, Default, Clone)]
struct Sample {
    status: u16,
    tokens: u32,
    /// Wall seconds from send to first token.
    ttft: Option<f64>,
    /// Wall seconds between consecutive tokens.
    tbts: Vec<f64>,
    io_error: bool,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn drive_one(addr: std::net::SocketAddr, body: &str) -> Sample {
    let mut sample = Sample::default();
    let sent = Instant::now();
    let mut stream = match SseStream::post(addr, "/v1/completions", body, Duration::from_secs(120)) {
        Ok(s) => s,
        Err(_) => {
            sample.io_error = true;
            return sample;
        }
    };
    sample.status = stream.status;
    if stream.status != 200 {
        return sample;
    }
    let mut last = sent;
    loop {
        match stream.next_data() {
            Ok(Some(data)) => {
                if data == sse::DONE {
                    break;
                }
                let now = Instant::now();
                if sample.tokens == 0 {
                    sample.ttft = Some(now.duration_since(sent).as_secs_f64());
                } else {
                    sample.tbts.push(now.duration_since(last).as_secs_f64());
                }
                last = now;
                sample.tokens += 1;
            }
            Ok(None) => break,
            Err(_) => {
                sample.io_error = true;
                break;
            }
        }
    }
    sample
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gateway_bench: {e}");
            std::process::exit(2);
        }
    };
    banner("gateway_bench", "open-loop load against the live gateway");

    // The arrival schedule: a standard synthesized trace, compressed onto
    // the wall clock so `--secs` of simulated traffic plays out in
    // `--secs / --warp` wall seconds.
    let trace = uniform_trace(args.models, args.rps, args.secs, args.seed, LengthDist::sharegpt());
    let wall_plan = trace.time_scaled(args.warp);
    let n = wall_plan.requests.len();
    if n == 0 {
        eprintln!("gateway_bench: empty schedule (raise --rps or --secs)");
        std::process::exit(2);
    }

    // Self-host unless an external gateway was given.
    let (addr, hosted) = match &args.addr {
        Some(a) => (a.parse().expect("--addr must be HOST:PORT"), None),
        None => {
            let cfg = AegaeonConfig::small_testbed(1, 1);
            let models = market_models(args.models);
            let gw = Gateway::start(&cfg, &models, GatewayConfig::local(ClockMode::Timewarp(args.warp)))
                .expect("start in-process gateway");
            (gw.addr(), Some(gw))
        }
    };
    println!(
        "driving {} requests over {:.1}s wall ({} models, offered {:.2} rps sim, warp {}x) -> {}",
        n,
        args.secs / args.warp,
        args.models,
        args.rps,
        args.warp,
        addr
    );

    // Pre-render the schedule (time-ordered: the synthesizer emits sorted
    // arrivals and time scaling preserves order), then fire it from a
    // bounded client pool claiming requests off a shared cursor.
    let schedule: Vec<(Duration, String)> = wall_plan
        .requests
        .iter()
        .map(|r| {
            let body = format!(
                r#"{{"model":"m{}","input_tokens":{},"max_tokens":{}}}"#,
                r.model.0,
                r.input_tokens.max(1),
                r.output_tokens.clamp(1, args.cap_tokens)
            );
            (Duration::from_nanos(r.arrival_ns), body)
        })
        .collect();
    let clients = args.clients.clamp(1, n);
    let started = Instant::now();
    let token_count = AtomicU64::new(0);
    let fire_lag_ns = AtomicU64::new(0);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Sample)>();
    let mut samples: Vec<Sample> = vec![Sample::default(); n];
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let tx = tx.clone();
            let (cursor, schedule) = (&cursor, &schedule);
            let (token_count, fire_lag_ns) = (&token_count, &fire_lag_ns);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((offset, body)) = schedule.get(i) else { break };
                let now = started.elapsed();
                if *offset > now {
                    std::thread::sleep(*offset - now);
                } else {
                    fire_lag_ns.fetch_max((now - *offset).as_nanos() as u64, Ordering::Relaxed);
                }
                let s = drive_one(addr, body);
                token_count.fetch_add(s.tokens as u64, Ordering::Relaxed);
                if tx.send((i, s)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, s) in rx {
            samples[i] = s;
        }
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let max_fire_lag = Duration::from_nanos(fire_lag_ns.load(Ordering::Relaxed)).as_secs_f64();

    let completed = samples.iter().filter(|s| s.status == 200 && !s.io_error).count();
    let rejected = samples.iter().filter(|s| s.status == 429).count();
    let failed = n - completed - rejected;
    let total_tokens = token_count.load(Ordering::Relaxed);
    let mut ttfts: Vec<f64> = samples.iter().filter_map(|s| s.ttft).collect();
    ttfts.sort_by(|a, b| a.total_cmp(b));
    let mut tbts: Vec<f64> = samples.iter().flat_map(|s| s.tbts.iter().copied()).collect();
    tbts.sort_by(|a, b| a.total_cmp(b));

    let offered_rps = n as f64 / wall_secs;
    let goodput = total_tokens as f64 / wall_secs;
    println!("\nresults over {wall_secs:.2}s wall:");
    println!("  offered   : {n} requests ({offered_rps:.2} rps wall, {clients} clients)");
    println!("  fire lag  : worst {max_fire_lag:.3}s behind schedule");
    println!("  completed : {completed}   rejected(429): {rejected}   failed: {failed}");
    println!("  goodput   : {goodput:.1} tokens/s ({total_tokens} tokens)");
    println!(
        "  TTFT      : p50 {:.3}s  p90 {:.3}s  p99 {:.3}s",
        percentile(&ttfts, 0.50),
        percentile(&ttfts, 0.90),
        percentile(&ttfts, 0.99)
    );
    println!(
        "  TBT       : p50 {:.3}s  p90 {:.3}s  p99 {:.3}s",
        percentile(&tbts, 0.50),
        percentile(&tbts, 0.90),
        percentile(&tbts, 0.99)
    );

    if let Some(gw) = hosted {
        let report = gw.shutdown();
        println!(
            "  gateway   : admitted {} completed {} (audit rejections {})",
            report.trace.requests.len(),
            report.result.completed,
            report.audit.as_ref().map_or(0, |a| a.rejections)
        );
        if let Some(audit) = &report.audit {
            assert!(audit.ok(), "audit violations: {:?}", audit.violations);
        }
    }

    let json = serde_json::json!({
        "offered_requests": n as u64,
        "offered_rps_wall": offered_rps,
        "wall_secs": wall_secs,
        "warp": args.warp,
        "clients": clients as u64,
        "max_fire_lag_secs": max_fire_lag,
        "completed": completed as u64,
        "rejected": rejected as u64,
        "failed": failed as u64,
        "total_tokens": total_tokens,
        "goodput_tokens_per_sec": goodput,
        "ttft_secs": serde_json::json!({
            "p50": percentile(&ttfts, 0.50),
            "p90": percentile(&ttfts, 0.90),
            "p99": percentile(&ttfts, 0.99),
        }),
        "tbt_secs": serde_json::json!({
            "p50": percentile(&tbts, 0.50),
            "p90": percentile(&tbts, 0.90),
            "p99": percentile(&tbts, 0.99),
        }),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gateway_throughput.json");
    match serde_json::to_string_pretty(&json) {
        Ok(s) => {
            std::fs::write(path, s + "\n").expect("write BENCH_gateway_throughput.json");
            println!("\n[json] {path}");
        }
        Err(e) => eprintln!("failed to serialize report: {e}"),
    }
}
