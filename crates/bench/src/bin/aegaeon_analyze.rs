//! `aegaeon-analyze`: post-run SLO report generator.
//!
//! Reads an SLO observatory document (the gateway's `GET /v1/slo` body or
//! telemetry JSONL with `slo_point`/`slo_cum`/`attrib` lines) and,
//! optionally, a gateway bench report, then emits the combined markdown
//! and JSON report and gates on internal consistency (p50 ≤ p90 ≤ p99,
//! attainment ∈ [0, 1], met ≤ produced).
//!
//! ```text
//! aegaeon-analyze --slo slo.json [--bench BENCH_gateway_throughput.json]
//!                 [--out-md report.md] [--out-json report.json] [--check]
//! ```
//!
//! Without `--out-md` the markdown goes to stdout. `--check` exits 2 when
//! any consistency check fails (CI gates on this).

use std::process::ExitCode;

use aegaeon_bench::analyze::Analysis;

struct Args {
    slo: Option<String>,
    bench: Option<String>,
    out_md: Option<String>,
    out_json: Option<String>,
    check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: aegaeon-analyze --slo <slo.json|telemetry.jsonl> \
         [--bench <bench.json>] [--out-md <path>] [--out-json <path>] [--check]"
    );
    std::process::exit(64);
}

fn parse_args() -> Args {
    let mut args = Args {
        slo: None,
        bench: None,
        out_md: None,
        out_json: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match a.as_str() {
            "--slo" => args.slo = Some(val("--slo")),
            "--bench" => args.bench = Some(val("--bench")),
            "--out-md" => args.out_md = Some(val("--out-md")),
            "--out-json" => args.out_json = Some(val("--out-json")),
            "--check" => args.check = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if args.slo.is_none() && args.bench.is_none() {
        usage();
    }
    args
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(66);
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut analysis = match &args.slo {
        Some(path) => match Analysis::from_slo_text(&read(path)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::from(65);
            }
        },
        None => Analysis::default(),
    };
    if let Some(path) = &args.bench {
        match serde_json::from_str::<serde_json::Value>(&read(path)) {
            Ok(doc) => analysis = analysis.with_bench_value(&doc),
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::from(65);
            }
        }
    }

    let md = analysis.to_markdown();
    match &args.out_md {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &md) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(74);
            }
            println!("[md] {path}");
        }
        None => print!("{md}"),
    }
    if let Some(path) = &args.out_json {
        let json = serde_json::to_string_pretty(&analysis.to_json()).expect("serializable");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(74);
        }
        println!("[json] {path}");
    }

    let errs = analysis.consistency_errors();
    if !errs.is_empty() {
        for e in &errs {
            eprintln!("[consistency] {e}");
        }
        if args.check {
            return ExitCode::from(2);
        }
    } else if args.check {
        println!("[consistency] all checks passed");
    }
    ExitCode::SUCCESS
}
