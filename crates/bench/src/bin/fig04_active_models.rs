//! Figure 4 / Theorem 3.1: active model count over time.
//!
//! M = 100 models, per-model Poisson rate λ = 0.037 req/s, mean service
//! time T = 16.79 s. Theorem 3.1 predicts `E[m] = M(1 − e^{−λT})`; the
//! simulated count must fluctuate around it (the paper prints 46.55).

use aegaeon_bench::{banner, dump_json};
use aegaeon_sim::{SimDur, SimRng, SimTime};
use aegaeon_workload::{active_count_series, expected_active, LengthDist, TraceBuilder};
use aegaeon_workload::active::mean_active;

fn main() {
    banner("fig04_active_models", "Figure 4 and Theorem 3.1");
    let (m_models, lambda, service) = (100u32, 0.037f64, 16.79f64);
    let expect = expected_active(m_models, lambda, service);
    println!("Theorem 3.1: E[m] = {m_models}·(1 − e^(−{lambda}·{service})) = {expect:.2}");
    println!("(the paper prints 46.55 — a λT rounding difference of 0.6%)");

    let mut rng = SimRng::seed_from_u64(4);
    let trace = TraceBuilder::new(SimTime::from_secs_f64(2000.0), LengthDist::sharegpt())
        .uniform_models(&mut rng, m_models, lambda)
        .build(&mut rng);
    let series = active_count_series(
        &trace,
        SimDur::from_secs_f64(service),
        SimDur::from_secs_f64(1.0),
    );
    println!("\nactive model count over time (every 100 s):");
    for (t, c) in series.iter().step_by(100) {
        let bar = "#".repeat((*c as usize) / 2);
        println!("  t={:6.0}s  {:3}  {bar}", t.as_secs_f64(), c);
    }
    let steady = &series[100..];
    let mean = mean_active(steady);
    let max = steady.iter().map(|&(_, c)| c).max().unwrap_or(0);
    let min = steady.iter().map(|&(_, c)| c).min().unwrap_or(0);
    println!("\nsteady-state mean = {mean:.2} (expected {expect:.2}); range [{min}, {max}]");
    println!(
        "pooling bound for request-level auto-scaling: {}/{mean:.1} < 3 models per GPU",
        m_models
    );

    dump_json(
        "fig04_active_models",
        &serde_json::json!({
            "expected": expect,
            "paper_expected": 46.55,
            "simulated_mean": mean,
            "simulated_min": min,
            "simulated_max": max,
        }),
    );
}
