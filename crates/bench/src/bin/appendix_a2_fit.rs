//! Appendix A.2: the analytical latency model fit.
//!
//! Fits Equations (5)/(6) to profiled samples for every zoo model and
//! reports R² (paper: over 0.9 across all models), plus the Eq. (4)
//! switch-time estimates.

use aegaeon_bench::{banner, dump_json};
use aegaeon_engine::{fit_model, PerfModel};
use aegaeon_engine::analytical::estimate_switch_secs;
use aegaeon_gpu::GpuSpec;
use aegaeon_metrics::report::table;
use aegaeon_model::Zoo;
use aegaeon_sim::SimRng;

fn main() {
    banner("appendix_a2_fit", "Appendix A.2 (latency model fit, Eq. 4-6)");
    let gpu = GpuSpec::h800();
    let mut rng = SimRng::seed_from_u64(2);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut min_r2: f64 = 1.0;
    for e in Zoo::standard().entries() {
        let spec = &e.spec;
        let perf = PerfModel::new(&gpu, spec);
        let fit = fit_model(&perf, spec, &mut rng);
        let sw = estimate_switch_secs(spec.weight_bytes_per_gpu(), gpu.pcie_bw, 1.25);
        min_r2 = min_r2.min(fit.r2_prefill).min(fit.r2_decode);
        rows.push(vec![
            spec.name.clone(),
            format!("{:.4}", fit.r2_prefill),
            format!("{:.4}", fit.r2_decode),
            format!("{:.2}s", sw),
        ]);
        json.push(serde_json::json!({
            "model": spec.name,
            "r2_prefill": fit.r2_prefill,
            "r2_decode": fit.r2_decode,
            "eq4_switch_secs": sw,
        }));
    }
    print!(
        "{}",
        table(&["model", "R2 prefill (Eq.5)", "R2 decode (Eq.6)", "Eq.4 switch"], &rows)
    );
    println!("\nminimum R2 = {min_r2:.4} (paper: over 0.9 across all models)");
    println!("Eq.4 example: 26 GB via PCIe 4.0 >= 26/32 = 0.8125 s (paper §4.2)");
    dump_json("appendix_a2_fit", &serde_json::json!({ "rows": json, "min_r2": min_r2 }));
}
