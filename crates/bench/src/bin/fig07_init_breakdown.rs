//! Figure 7: engine (re)initialization latency breakdown, before and after
//! the §5.1 component-reuse optimization (13B model, TP = 2).

use aegaeon_bench::{banner, dump_json};
use aegaeon_engine::{scale_up_plan, AutoscaleOpts, InitCosts, ScaleCost};
use aegaeon_metrics::report::table;

fn main() {
    banner("fig07_init_breakdown", "Figure 7 (initialization breakdown)");
    let costs = InitCosts::paper_default();
    let shard_13b: u64 = 13_000_000_000; // one TP=2 shard of a 26 GB model
    let pcie = 32e9;
    let dev_copy = 1.675e12;

    let mut json = Vec::new();
    for (label, opts) in [
        ("before (T0: full reinit)", AutoscaleOpts::t0()),
        ("after (T1: component reuse)", AutoscaleOpts::t1()),
        ("after (T2: + explicit memory)", AutoscaleOpts::t2()),
    ] {
        let plan = scale_up_plan(&opts, &costs, shard_13b, false, true, 5e9);
        let mut rows = Vec::new();
        for st in &plan.stages {
            let secs = match st.cost {
                ScaleCost::Fixed(d) => d.as_secs_f64(),
                ScaleCost::HostLoad { bytes, efficiency } => bytes as f64 / (pcie * efficiency),
                ScaleCost::DeviceCopy { bytes } => bytes as f64 / dev_copy,
            };
            rows.push(vec![st.kind.label().to_string(), format!("{secs:.2}s")]);
        }
        let total = plan.estimate_secs(pcie, dev_copy);
        rows.push(vec!["TOTAL".into(), format!("{total:.2}s")]);
        println!("\n{label}:");
        print!("{}", table(&["stage", "latency"], &rows));
        json.push(serde_json::json!({ "config": label, "total_secs": total }));
    }
    println!("\n(T0's total includes the 2.5 s scale-down GC pass; the");
    println!(" initialization stages alone sum to 26.9 s, matching the paper)");
    println!("\npaper: unoptimized initialization up to 26.9 s for a 13B model;");
    println!("       naive loading achieves 2.83 GB/s (4.6 s per shard);");
    println!("       component reuse removes over 80% of auto-scaling latency;");
    println!("       optimized loading lands under one second.");
    dump_json("fig07_init_breakdown", &serde_json::json!(json));
}
