//! The §3 objective, solved empirically: "minimize the number of GPU
//! instances N required to meet the SLOs for all models". For growing model
//! counts, searches the smallest Aegaeon pool reaching 90% attainment and
//! compares against the request-level bound `N = O(E[m])` (Theorem 3.1)
//! and the dedicated strawman `N = O(M)`.
//!
//! Each model count's pool search is independent, so the five searches run
//! through [`sweep::map`].

use aegaeon::planner::search_min_pool;
use aegaeon::AegaeonConfig;
use aegaeon_bench::{banner, dump_json, market_models, sweep, uniform_trace, SEED};
use aegaeon_gpu::GpuSpec;
use aegaeon_metrics::report::table;
use aegaeon_workload::{expected_active, LengthDist, SloSpec};

fn main() {
    banner("min_pool", "§3's objective: minimum GPUs meeting the SLOs");
    let slo = SloSpec::paper_default();
    let rate = 0.1;
    let counts = [8usize, 16, 24, 32, 48];
    let found = sweep::map(&counts, |&n| {
        let models = market_models(n);
        let trace = uniform_trace(n, rate, 300.0, SEED + n as u64, LengthDist::sharegpt());
        let base = AegaeonConfig::paper_testbed();
        search_min_pool(&base, &GpuSpec::h800(), &models, &trace, slo, 0.9, 32)
    });
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (&n, found) in counts.iter().zip(found) {
        // Request-level auto-scaling needs ≈ E[m] instances (Theorem 3.1,
        // with our ~4 s effective service time); dedicated needs M.
        let em = expected_active(n as u32, rate, 4.0);
        match found {
            Some((gpus, att)) => {
                rows.push(vec![
                    format!("{n}"),
                    format!("{gpus}"),
                    format!("{:.1}", em.ceil()),
                    format!("{n}"),
                    format!("{:.1}%", att * 100.0),
                    format!("{:.1}", n as f64 / gpus as f64),
                ]);
                json.push(serde_json::json!({
                    "models": n, "aegaeon_gpus": gpus, "request_level_bound": em,
                    "dedicated": n, "attainment": att,
                }));
            }
            None => rows.push(vec![
                format!("{n}"),
                ">32".into(),
                format!("{:.1}", em.ceil()),
                format!("{n}"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    print!(
        "{}",
        table(
            &["#models", "Aegaeon GPUs", "E[m] bound", "dedicated", "att.", "models/GPU"],
            &rows
        )
    );
    println!("\nAegaeon's pool sits well below both the dedicated count (O(M)) and");
    println!("the request-level active-model bound (O(E[m]), §3.1) — the pooling");
    println!("hierarchy the paper's Figure 2 illustrates.");
    dump_json("min_pool", &serde_json::json!(json));
}
