//! Shared experiment harness: standard workloads, system runners and
//! reporting for the figure/table regeneration binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper; it prints the series the paper plots and writes a JSON copy under
//! `target/experiments/` so EXPERIMENTS.md stays regenerable.

pub mod analyze;
pub mod sweep;

use aegaeon::{AegaeonConfig, RunResult, ServingSystem};
use aegaeon_baselines::engine_loop::WorldConfig;
use aegaeon_baselines::{BaselineResult, MuxServe, ServerlessLlm, SllmConfig};
use aegaeon_metrics::AttainmentReport;
use aegaeon_model::{ModelSpec, Zoo};
use aegaeon_sim::{SimRng, SimTime};
use aegaeon_workload::{LengthDist, SloSpec, Trace, TraceBuilder};

/// Standard measurement horizon for the end-to-end sweeps, seconds.
pub const HORIZON_SECS: f64 = 400.0;

/// Env var: when set to a path, the first Aegaeon run the harness performs
/// in this process executes with telemetry enabled and is exported there as
/// a Chrome Trace Event Format file (open in Perfetto). Works with every
/// figure binary, e.g.:
///
/// ```text
/// AEGAEON_TRACE_OUT=fig11.trace.json cargo run --release --bin fig11_end_to_end
/// ```
pub const TRACE_OUT_ENV: &str = "AEGAEON_TRACE_OUT";

static TRACE_DUMPED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn trace_out_requested() -> Option<String> {
    if TRACE_DUMPED.load(std::sync::atomic::Ordering::Relaxed) {
        return None;
    }
    std::env::var(TRACE_OUT_ENV).ok().filter(|p| !p.is_empty())
}

/// Enables telemetry + schedule tracing on `cfg` when [`TRACE_OUT_ENV`] is
/// set and no trace has been dumped yet. Telemetry is observer-only, so
/// figure numbers are unchanged either way.
pub fn apply_env_telemetry(cfg: &mut AegaeonConfig) {
    if trace_out_requested().is_some() {
        cfg.telemetry = aegaeon_telemetry::TelemetrySpec::enabled();
        cfg.trace_schedule = true;
    }
}

/// Exports `r` as a Chrome trace when [`TRACE_OUT_ENV`] is set (first run
/// in the process wins; later runs are skipped).
pub fn maybe_dump_trace(r: &RunResult) {
    let Some(path) = trace_out_requested() else {
        return;
    };
    if TRACE_DUMPED.swap(true, std::sync::atomic::Ordering::Relaxed) {
        return;
    }
    let json =
        aegaeon_telemetry::chrome_trace(&r.schedule, &r.telemetry.spans, &r.telemetry.metrics);
    match std::fs::write(&path, json) {
        Ok(()) => println!("[trace] {path}"),
        Err(e) => eprintln!("[trace] failed to write {path}: {e}"),
    }
    // The same telemetry-enabled run feeds the SLO observatory; drop the
    // analyzer's markdown report next to the trace.
    match analyze::analyze_run(r) {
        Ok(a) => {
            let md_path = format!("{path}.slo.md");
            match std::fs::write(&md_path, a.to_markdown()) {
                Ok(()) => println!("[slo] {md_path}"),
                Err(e) => eprintln!("[slo] failed to write {md_path}: {e}"),
            }
        }
        Err(e) => eprintln!("[slo] analysis failed: {e}"),
    }
}

/// Base seed for all experiments (vary per point for independence).
pub const SEED: u64 = 20250713;

/// `n` distinct market-band (6–14B) serving targets.
pub fn market_models(n: usize) -> Vec<ModelSpec> {
    let zoo = Zoo::standard();
    Zoo::replicate(&zoo.market_band(), n)
}

/// A uniform-rate multi-model trace (the §7.2 synthesis).
pub fn uniform_trace(
    n_models: usize,
    rate: f64,
    secs: f64,
    seed: u64,
    dataset: LengthDist,
) -> Trace {
    let mut rng = SimRng::seed_from_u64(seed);
    TraceBuilder::new(SimTime::from_secs_f64(secs), dataset)
        .uniform_models(&mut rng, n_models as u32, rate)
        .build(&mut rng)
}

/// Which serving system to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Aegaeon (token-level auto-scaling, T3).
    Aegaeon,
    /// ServerlessLLM (request-level auto-scaling).
    ServerlessLlm,
    /// ServerlessLLM+ (oracle SJF queue).
    ServerlessLlmPlus,
    /// MuxServe (static spatial multiplexing).
    MuxServe,
}

impl System {
    /// Paper display name.
    pub fn label(&self) -> &'static str {
        match self {
            System::Aegaeon => "Aegaeon",
            System::ServerlessLlm => "ServerlessLLM",
            System::ServerlessLlmPlus => "ServerlessLLM+",
            System::MuxServe => "MuxServe",
        }
    }

    /// The four systems in the paper's legend order.
    pub const ALL: [System; 4] = [
        System::Aegaeon,
        System::ServerlessLlm,
        System::ServerlessLlmPlus,
        System::MuxServe,
    ];
}

/// Attainment of `sys` on the paper testbed for `models`/`trace`.
pub fn run_system(
    sys: System,
    models: &[ModelSpec],
    trace: &Trace,
    slo: SloSpec,
    per_model_rate: f64,
) -> AttainmentReport {
    let cluster = aegaeon_gpu::ClusterSpec::paper_testbed();
    match sys {
        System::Aegaeon => {
            let mut cfg = AegaeonConfig::paper_testbed();
            // The scheduler's quota equations take the target TBT `d` as an
            // input (§4.3); deployments configure it from their SLO.
            cfg.target_tbt = slo.tbt.as_secs_f64();
            apply_env_telemetry(&mut cfg);
            let r = ServingSystem::run(&cfg, models, trace);
            maybe_dump_trace(&r);
            r.attainment(slo)
        }
        System::ServerlessLlm => {
            let cfg = SllmConfig::new(cluster);
            ServerlessLlm::run(&cfg, models, trace).attainment(slo)
        }
        System::ServerlessLlmPlus => {
            let cfg = SllmConfig::plus(cluster);
            ServerlessLlm::run(&cfg, models, trace).attainment(slo)
        }
        System::MuxServe => {
            let cfg = WorldConfig::sllm_default(cluster);
            let rates = vec![per_model_rate; models.len()];
            MuxServe::run(&cfg, models, &rates, trace).attainment(slo)
        }
    }
}

/// A full Aegaeon run on the paper testbed (detailed metrics).
pub fn run_aegaeon(models: &[ModelSpec], trace: &Trace) -> RunResult {
    let mut cfg = AegaeonConfig::paper_testbed();
    apply_env_telemetry(&mut cfg);
    let r = ServingSystem::run(&cfg, models, trace);
    maybe_dump_trace(&r);
    r
}

/// A full ServerlessLLM run on the paper testbed.
pub fn run_sllm(models: &[ModelSpec], trace: &Trace) -> BaselineResult {
    let cfg = SllmConfig::new(aegaeon_gpu::ClusterSpec::paper_testbed());
    ServerlessLlm::run(&cfg, models, trace)
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, paper: &str) {
    println!("==============================================================");
    println!("{id}  —  reproduces {paper}");
    println!("==============================================================");
}

/// Writes machine-readable results next to the printed table.
pub fn dump_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, s);
        println!("[json] {}", path.display());
    }
}

/// Formats an attainment sweep as the paper's "(load, attainment%)" series
/// and reports the max load meeting the 90% requirement (the figures'
/// vertical lines).
pub fn print_sweep(title: &str, xlabel: &str, series: &[(String, Vec<(f64, f64)>)]) {
    println!("\n{title}");
    let mut headers = vec![xlabel.to_string()];
    headers.extend(series.iter().map(|(n, _)| n.clone()));
    let n_points = series[0].1.len();
    let mut rows = Vec::new();
    for i in 0..n_points {
        let mut row = vec![format!("{}", series[0].1[i].0)];
        for (_, pts) in series {
            row.push(format!("{:.1}%", pts[i].1 * 100.0));
        }
        rows.push(row);
    }
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print!("{}", aegaeon_metrics::report::table(&hdr, &rows));
    for (name, pts) in series {
        match aegaeon_metrics::max_load_meeting(pts, 0.9) {
            Some(x) => println!("  {name}: max {xlabel} at >=90% SLO ~= {x:.1}"),
            None => println!("  {name}: never reaches 90%"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn market_models_are_distinct() {
        let m = market_models(12);
        assert_eq!(m.len(), 12);
        let mut names: Vec<&str> = m.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn uniform_trace_rate() {
        let t = uniform_trace(4, 0.1, 500.0, 1, LengthDist::sharegpt());
        assert!((t.aggregate_rate() - 0.4).abs() < 0.1);
    }
}
