//! MuxServe: static placement plus spatial GPU multiplexing.
//!
//! A placement optimizer packs models onto GPUs under the memory constraint
//! (weights of all colocated models plus a minimum KV region must fit in
//! usable VRAM — in practice two, at most three, 6–14B models per 80 GB
//! GPU, §2.3). Colocated models run concurrently on SM partitions; we model
//! the sharing as a per-slot duration multiplier `active_slots × (1 + i)`
//! with interference `i = 5%`. Models the optimizer cannot place are not
//! servable at all — the hard cap the paper observes at 32 models on
//! 16 GPUs.


use aegaeon_model::{ModelId, ModelSpec};
use aegaeon_sim::FxHashMap;
use aegaeon_workload::{RequestId, Trace};

use crate::engine_loop::{InstState, Qq, Scheduler, World, WorldConfig};
use crate::result::BaselineResult;

/// Interference overhead of spatial sharing.
const INTERFERENCE: f64 = 0.05;
/// Minimum KV region a placement must leave per GPU.
const MIN_KV_BYTES: u64 = 12 << 30;
/// Maximum colocated models per GPU. The paper observes MuxServe's
/// optimizer placing at most two of the market's 6–14B models per 80 GB
/// GPU (§7.2: "at most 32 models" on 16 GPUs).
const MAX_COLOCATED: usize = 2;

/// A static model→GPU placement.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Models placed on each GPU.
    pub per_gpu: Vec<Vec<ModelId>>,
    /// Models the optimizer could not place.
    pub unplaced: Vec<ModelId>,
}

impl Placement {
    /// Greedy first-fit-decreasing by request rate.
    ///
    /// `weights[i]` are model `i`'s weight bytes; `rates[i]` its popularity.
    pub fn optimize(
        weights: &[u64],
        rates: &[f64],
        n_gpus: usize,
        usable_vram: u64,
    ) -> Placement {
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| rates[b].partial_cmp(&rates[a]).expect("finite rates"));
        let mut per_gpu: Vec<Vec<ModelId>> = vec![Vec::new(); n_gpus];
        let mut used: Vec<u64> = vec![0; n_gpus];
        let mut unplaced = Vec::new();
        for m in order {
            let fit = (0..n_gpus)
                .filter(|&g| {
                    per_gpu[g].len() < MAX_COLOCATED
                        && used[g] + weights[m] + MIN_KV_BYTES <= usable_vram
                })
                // Least-loaded fit spreads hot models.
                .min_by_key(|&g| (per_gpu[g].len(), used[g]));
            match fit {
                Some(g) => {
                    used[g] += weights[m];
                    per_gpu[g].push(ModelId(m as u32));
                }
                None => unplaced.push(ModelId(m as u32)),
            }
        }
        Placement { per_gpu, unplaced }
    }

    /// Total models placed.
    pub fn placed_count(&self) -> usize {
        self.per_gpu.iter().map(|v| v.len()).sum()
    }
}

/// The MuxServe runtime scheduler.
#[derive(Debug)]
pub struct MuxServe {
    slot_of_model: FxHashMap<ModelId, usize>,
    gpu_of_slot: Vec<usize>,
    slots_of_gpu: Vec<Vec<usize>>,
    kv_share_bytes: Vec<u64>,
    queues: Vec<Vec<RequestId>>,
}

impl MuxServe {
    /// Places `models` (weighted by `rates`) and serves `trace`.
    ///
    /// # Panics
    ///
    /// Panics unless `cfg.tp == 1` (MuxServe colocates whole models).
    pub fn run(
        cfg: &WorldConfig,
        models: &[ModelSpec],
        rates: &[f64],
        trace: &Trace,
    ) -> BaselineResult {
        let (world, mut sched) = Self::prepare(cfg, models, rates, trace);
        world.run(&mut sched)
    }

    /// Runs with the invariant auditor installed, returning its report.
    pub fn run_audited(
        cfg: &WorldConfig,
        models: &[ModelSpec],
        rates: &[f64],
        trace: &Trace,
    ) -> (BaselineResult, aegaeon::AuditReport) {
        let (world, mut sched) = Self::prepare(cfg, models, rates, trace);
        world.run_audited(&mut sched)
    }

    fn prepare(
        cfg: &WorldConfig,
        models: &[ModelSpec],
        rates: &[f64],
        trace: &Trace,
    ) -> (World, MuxServe) {
        assert_eq!(cfg.tp, 1, "MuxServe baseline colocates TP=1 models");
        let mut world = World::new(cfg.clone(), models, trace.clone());
        let weights: Vec<u64> = world.deploys.iter().map(|d| d.shard_bytes).collect();
        let n_gpus = world.topo.gpu_count();
        let placement = Placement::optimize(&weights, rates, n_gpus, world.usable_vram());

        // Rebuild instances: one slot per (gpu, placed model), each on its
        // own stream so colocated models overlap (spatial sharing).
        let mut insts = Vec::new();
        let mut slot_of_model = FxHashMap::default();
        let mut gpu_of_slot = Vec::new();
        let mut slots_of_gpu = vec![Vec::new(); n_gpus];
        let mut kv_share_bytes = Vec::new();
        for (g, placed) in placement.per_gpu.iter().enumerate() {
            if placed.is_empty() {
                continue;
            }
            let gid = aegaeon_gpu::GpuId(g as u32);
            let weights_total: u64 = placed.iter().map(|m| weights[m.0 as usize]).sum();
            let kv_total = world.usable_vram().saturating_sub(weights_total);
            let share = kv_total / placed.len() as u64;
            for (k, &m) in placed.iter().enumerate() {
                let lane = if k == 0 {
                    world.topo.gpu(gid).default_stream
                } else {
                    world.fabric.add_stream(format!("gpu{g}.mux{k}"))
                };
                let slot = insts.len();
                insts.push(InstState::new(vec![gid], vec![lane]));
                slot_of_model.insert(m, slot);
                gpu_of_slot.push(g);
                slots_of_gpu[g].push(slot);
                kv_share_bytes.push(share);
            }
        }
        let n_slots = insts.len();
        world.insts = insts;
        let sched = MuxServe {
            slot_of_model,
            gpu_of_slot,
            slots_of_gpu,
            kv_share_bytes,
            queues: vec![Vec::new(); n_slots],
        };
        (world, sched)
    }

    fn refresh_contention(&self, w: &mut World, gpu: usize) {
        let active = self.slots_of_gpu[gpu]
            .iter()
            .filter(|&&s| !w.insts[s].is_empty() || w.insts[s].busy)
            .count();
        let factor = if active <= 1 {
            1.0
        } else {
            active as f64 * (1.0 + INTERFERENCE)
        };
        for &s in &self.slots_of_gpu[gpu] {
            w.insts[s].contention = factor;
        }
    }

    fn slot_kv_cap(&self, w: &World, slot: usize, model: ModelId) -> u64 {
        self.kv_share_bytes[slot] / w.deploys[model.0 as usize].kv_token_bytes.max(1)
    }
}

impl Scheduler for MuxServe {
    fn on_arrival(&mut self, w: &mut World, idx: usize, q: &mut Qq) {
        let req = w.trace.requests[idx].id;
        let model = w.trace.requests[idx].model;
        let Some(&slot) = self.slot_of_model.get(&model) else {
            w.rejected += 1;
            return; // unplaced model: unservable
        };
        // Lazy static load at first use.
        if w.insts[slot].current.is_none() && w.insts[slot].scale_target.is_none() {
            w.insts[slot].kv_cap_tokens = self.slot_kv_cap(w, slot, model);
            w.start_scale(slot, model, q);
        }
        w.insts[slot].kv_cap_tokens = self.slot_kv_cap(w, slot, model);
        if w.can_admit(slot, req) {
            w.admit(slot, req, q);
        } else {
            self.queues[slot].push(req);
        }
        self.refresh_contention(w, self.gpu_of_slot[slot]);
    }

    fn on_idle(&mut self, w: &mut World, slot: usize, q: &mut Qq) {
        let queue = &mut self.queues[slot];
        let i = 0;
        while i < queue.len() {
            let req = queue[i];
            if w.can_admit(slot, req) {
                queue.remove(i);
                w.admit(slot, req, q);
            } else {
                break;
            }
        }
        self.refresh_contention(w, self.gpu_of_slot[slot]);
    }

    fn on_progress(&mut self, w: &mut World, slot: usize, q: &mut Qq) {
        self.on_idle(w, slot, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_gpu::{ClusterSpec, GpuSpec, NodeSpec};
    use aegaeon_model::Zoo;
    use aegaeon_sim::{SimRng, SimTime};
    use aegaeon_workload::{LengthDist, SloSpec, TraceBuilder};

    fn cluster(gpus: u32) -> ClusterSpec {
        ClusterSpec::homogeneous(
            1,
            NodeSpec {
                gpus,
                gpu: GpuSpec::h800(),
                dram_bytes: 1 << 40,
                nic_bw: 25e9,
            },
        )
    }

    #[test]
    fn placement_caps_at_two_or_three_models_per_gpu() {
        // §2.3: at most two 14B-class models per 80 GB GPU.
        let w14 = 14_170_000_000u64 * 2;
        let usable = (80u64 << 30) * 9 / 10;
        let p = Placement::optimize(&vec![w14; 40], &vec![1.0; 40], 16, usable);
        assert_eq!(p.placed_count(), 32, "two 14B models per GPU × 16 GPUs");
        assert_eq!(p.unplaced.len(), 8);
        for gpu in &p.per_gpu {
            assert!(gpu.len() <= 2);
        }
    }

    #[test]
    fn hot_models_are_placed_first() {
        let w = vec![30u64 << 30; 4];
        let rates = vec![0.1, 5.0, 0.2, 3.0];
        let p = Placement::optimize(&w, &rates, 1, 80 << 30);
        // Only two fit; they must be models 1 and 3 (the hottest).
        let placed: Vec<u32> = p.per_gpu[0].iter().map(|m| m.0).collect();
        assert!(placed.contains(&1) && placed.contains(&3), "{placed:?}");
    }

    #[test]
    fn colocated_models_serve_concurrently_with_interference() {
        let zoo = Zoo::standard();
        let models = Zoo::replicate(&zoo.market_band(), 2);
        let rates = vec![0.2, 0.2];
        let mut rng = SimRng::seed_from_u64(4);
        let trace = TraceBuilder::new(SimTime::from_secs_f64(120.0), LengthDist::sharegpt())
            .uniform_models(&mut rng, 2, 0.2)
            .build(&mut rng);
        let cfg = WorldConfig::sllm_default(cluster(1));
        let r = MuxServe::run(&cfg, &models, &rates, &trace);
        assert_eq!(r.rejected, 0);
        assert!(r.completed as f64 > 0.95 * r.total_requests as f64);
        let rep = r.attainment(SloSpec::paper_default());
        assert!(rep.ratio() > 0.8, "attainment {}", rep.ratio());
    }

    #[test]
    fn audited_run_counts_rejections_in_conservation() {
        // 8 models on one GPU: most are unplaced and rejected. The auditor
        // must treat completed + rejected as full conservation.
        let zoo = Zoo::standard();
        let models = Zoo::replicate(&zoo.market_band(), 8);
        let rates = vec![1.0; 8];
        let mut rng = SimRng::seed_from_u64(6);
        let trace = TraceBuilder::new(SimTime::from_secs_f64(60.0), LengthDist::sharegpt())
            .uniform_models(&mut rng, 8, 0.1)
            .build(&mut rng);
        let cfg = WorldConfig::sllm_default(cluster(1));
        let (r, report) = MuxServe::run_audited(&cfg, &models, &rates, &trace);
        assert!(report.ok(), "{report}");
        assert!(r.rejected > 0);
        assert_eq!(r.completed + r.rejected, r.total_requests);
    }

    #[test]
    fn unplaced_models_get_zero_service() {
        let zoo = Zoo::standard();
        let models = Zoo::replicate(&zoo.market_band(), 8);
        let rates = vec![1.0; 8];
        let mut rng = SimRng::seed_from_u64(5);
        let trace = TraceBuilder::new(SimTime::from_secs_f64(60.0), LengthDist::sharegpt())
            .uniform_models(&mut rng, 8, 0.1)
            .build(&mut rng);
        let cfg = WorldConfig::sllm_default(cluster(1));
        let r = MuxServe::run(&cfg, &models, &rates, &trace);
        assert!(r.rejected > 0, "8 models cannot fit one GPU");
        let rep = r.attainment(SloSpec::paper_default());
        assert!(rep.ratio() < 0.9, "attainment {}", rep.ratio());
    }
}
