//! ServerlessLLM: request-level auto-scaling (and the SJF "+" variant).
//!
//! One model per instance at a time. Arriving requests join an instance
//! already serving their model (continuous batching) when KV capacity
//! allows; otherwise they wait in a global queue. Only when an instance
//! *fully drains* does it scale to the queue head's model — scaling at
//! request granularity, which is precisely the head-of-line blocking §3.1
//! quantifies. ServerlessLLM+ orders the queue by oracle output length
//! (Shortest Job First, §7.1).

use aegaeon_gpu::ClusterSpec;
use aegaeon_model::ModelSpec;
use aegaeon_workload::{RequestId, Trace};

use crate::engine_loop::{Qq, Scheduler, World, WorldConfig};
use crate::result::BaselineResult;

/// Configuration for a ServerlessLLM run.
#[derive(Debug, Clone)]
pub struct SllmConfig {
    /// Shared world configuration.
    pub world: WorldConfig,
    /// Order the global queue by oracle output length (ServerlessLLM+).
    pub sjf: bool,
}

impl SllmConfig {
    /// Plain ServerlessLLM on `cluster`.
    pub fn new(cluster: ClusterSpec) -> SllmConfig {
        SllmConfig {
            world: WorldConfig::sllm_default(cluster),
            sjf: false,
        }
    }

    /// ServerlessLLM+ (oracle SJF queue).
    pub fn plus(cluster: ClusterSpec) -> SllmConfig {
        SllmConfig {
            sjf: true,
            ..Self::new(cluster)
        }
    }
}

/// The ServerlessLLM scheduler.
#[derive(Debug)]
pub struct ServerlessLlm {
    queue: Vec<RequestId>,
    sjf: bool,
}

impl ServerlessLlm {
    /// Runs the system over `trace`.
    pub fn run(cfg: &SllmConfig, models: &[ModelSpec], trace: &Trace) -> BaselineResult {
        let (world, mut sched) = Self::prepare(cfg, models, trace);
        world.run(&mut sched)
    }

    /// Runs with the invariant auditor installed, returning its report.
    pub fn run_audited(
        cfg: &SllmConfig,
        models: &[ModelSpec],
        trace: &Trace,
    ) -> (BaselineResult, aegaeon::AuditReport) {
        let (world, mut sched) = Self::prepare(cfg, models, trace);
        world.run_audited(&mut sched)
    }

    fn prepare(cfg: &SllmConfig, models: &[ModelSpec], trace: &Trace) -> (World, ServerlessLlm) {
        let world = World::new(cfg.world.clone(), models, trace.clone());
        let sched = ServerlessLlm {
            queue: Vec::new(),
            sjf: cfg.sjf,
        };
        (world, sched)
    }

    /// Queue position to serve next: FCFS head or shortest job.
    fn next_pos(&self, w: &World) -> Option<usize> {
        if self.queue.is_empty() {
            return None;
        }
        if self.sjf {
            (0..self.queue.len()).min_by_key(|&i| {
                w.trace.requests[self.queue[i].0 as usize].output_tokens
            })
        } else {
            Some(0)
        }
    }

    /// Serves as much of the queue as `inst` (now empty) can take,
    /// scaling to the chosen model if needed.
    fn refill(&mut self, w: &mut World, inst: usize, q: &mut Qq) {
        debug_assert!(w.insts[inst].is_empty());
        let Some(pos) = self.next_pos(w) else { return };
        let head = self.queue.remove(pos);
        let model = w.trace.requests[head.0 as usize].model;
        let need_scale = w.insts[inst].current != Some(model);
        if need_scale {
            w.start_scale(inst, model, q);
        }
        w.admit(inst, head, q);
        // Companion admission: same-model requests in FCFS order while KV
        // capacity lasts. Capacity checks against the *target* model's KV
        // size even mid-scale.
        if w.insts[inst].kv_cap_tokens == 0 {
            let shard = w.deploys[model.0 as usize].shard_bytes;
            w.insts[inst].kv_cap_tokens = w.kv_tokens_for(model, shard);
        }
        let mut i = 0;
        while i < self.queue.len() {
            let r = self.queue[i];
            if w.trace.requests[r.0 as usize].model == model && w.can_admit(inst, r) {
                self.queue.remove(i);
                w.admit(inst, r, q);
            } else {
                i += 1;
            }
        }
    }
}

impl Scheduler for ServerlessLlm {
    fn on_arrival(&mut self, w: &mut World, idx: usize, q: &mut Qq) {
        let req = w.trace.requests[idx].id;
        let model = w.trace.requests[idx].model;
        // Join an instance already serving (or scaling to) this model.
        for i in 0..w.insts.len() {
            let serving = w.insts[i].current == Some(model) && w.insts[i].scale_target.is_none();
            let scaling_to = w.insts[i].scale_target == Some(model);
            if (serving || scaling_to) && w.can_admit(i, req) {
                w.admit(i, req, q);
                return;
            }
        }
        // An idle, empty instance can scale right away.
        if let Some(i) = (0..w.insts.len())
            .find(|&i| w.insts[i].is_empty() && w.insts[i].scale_target.is_none())
        {
            self.queue.push(req);
            self.refill(w, i, q);
            return;
        }
        self.queue.push(req);
    }

    fn on_idle(&mut self, w: &mut World, inst: usize, q: &mut Qq) {
        self.refill(w, inst, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_gpu::{GpuSpec, NodeSpec};
    use aegaeon_model::Zoo;
    use aegaeon_sim::{SimRng, SimTime};
    use aegaeon_workload::{LengthDist, SloSpec, TraceBuilder};

    fn cluster(gpus: u32) -> ClusterSpec {
        ClusterSpec::homogeneous(
            1,
            NodeSpec {
                gpus,
                gpu: GpuSpec::h800(),
                dram_bytes: 1 << 40,
                nic_bw: 25e9,
            },
        )
    }

    fn trace(n_models: u32, rate: f64, secs: f64, seed: u64) -> Trace {
        let mut rng = SimRng::seed_from_u64(seed);
        TraceBuilder::new(SimTime::from_secs_f64(secs), LengthDist::sharegpt())
            .uniform_models(&mut rng, n_models, rate)
            .build(&mut rng)
    }

    fn models(n: usize) -> Vec<ModelSpec> {
        Zoo::replicate(&Zoo::standard().market_band(), n)
    }

    #[test]
    fn single_model_serves_cleanly() {
        let cfg = SllmConfig::new(cluster(2));
        let t = trace(1, 0.3, 120.0, 1);
        let r = ServerlessLlm::run(&cfg, &models(1), &t);
        assert_eq!(r.completed, r.total_requests);
        let rep = r.attainment(SloSpec::paper_default());
        assert!(rep.ratio() > 0.95, "attainment {}", rep.ratio());
        assert!(r.switches <= 2, "one load per instance, got {}", r.switches);
    }

    #[test]
    fn request_level_scaling_suffers_hol_blocking() {
        // Many models on few GPUs: request-level scaling queues whole
        // requests behind each other.
        let cfg = SllmConfig::new(cluster(2));
        // E[m] = 10·(1 − e^{−0.4·T}) active models on 2 GPUs.
        let t = trace(10, 0.4, 200.0, 2);
        let r = ServerlessLlm::run(&cfg, &models(10), &t);
        let rep = r.attainment(SloSpec::paper_default());
        assert!(
            rep.ratio() < 0.9,
            "HOL blocking should hurt: {}",
            rep.ratio()
        );
        assert!(r.switches > 5);
    }

    #[test]
    fn audited_run_is_clean_and_identical() {
        let mut cfg = SllmConfig::new(cluster(2));
        let t = trace(3, 0.1, 120.0, 9);
        let plain = ServerlessLlm::run(&cfg, &models(3), &t);
        let (audited, report) = ServerlessLlm::run_audited(&cfg, &models(3), &t);
        assert!(report.ok(), "{report}");
        assert!(report.events_checked > 0);
        assert_eq!(plain.completed, audited.completed);
        let fa: Vec<_> = plain.outcomes.iter().map(|o| o.token_times.clone()).collect();
        let fb: Vec<_> = audited.outcomes.iter().map(|o| o.token_times.clone()).collect();
        assert_eq!(fa, fb, "auditor must not perturb the run");
        // The cfg.audit flag routes through the same auditor and panics on
        // violation; a clean run returns identical results.
        cfg.world.audit = true;
        let flagged = ServerlessLlm::run(&cfg, &models(3), &t);
        assert_eq!(flagged.completed, plain.completed);
    }

    #[test]
    fn sjf_changes_service_order() {
        // Load heavy enough that the global queue regularly holds several
        // models, so the ordering policy actually matters.
        let cfg = SllmConfig::new(cluster(1));
        let plus = SllmConfig::plus(cluster(1));
        let t = trace(8, 0.5, 150.0, 3);
        let a = ServerlessLlm::run(&cfg, &models(8), &t);
        let b = ServerlessLlm::run(&plus, &models(8), &t);
        // Different policies must actually behave differently: under SJF some
        // request is served earlier or later, shifting its first-token time.
        let fa: Vec<_> = a.outcomes.iter().map(|o| o.token_times.first().copied()).collect();
        let fb: Vec<_> = b.outcomes.iter().map(|o| o.token_times.first().copied()).collect();
        assert!(fa != fb || a.switches != b.switches);
    }
}
