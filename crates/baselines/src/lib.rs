//! Baseline serving systems the paper compares against (§7.1).
//!
//! * [`serverless`] — **ServerlessLLM**: request-level auto-scaling. One
//!   model per GPU at a time, a global FCFS queue, continuous batching
//!   within a model, optimized model loading (SLLM's own contribution) —
//!   but scaling happens only when an instance fully drains, which is
//!   exactly the head-of-line blocking §3.1 analyzes.
//!   **ServerlessLLM+** is the paper's extension: the global queue is
//!   ordered by oracle output length (Shortest Job First).
//! * [`muxserve`] — **MuxServe**: static spatial multiplexing. A placement
//!   optimizer packs at most two or three models per GPU under the memory
//!   constraint; colocated models share compute with an interference
//!   penalty; unplaced models cannot be served at all.
//! * [`dedicated`] — the strawman: one reserved instance per model
//!   (the production "before" of Figure 18).
//!
//! All baselines run on the same simulated fabric, latency models and
//! workloads as Aegaeon, so comparisons isolate the scheduling/scaling
//! policies.

pub mod dedicated;
pub mod engine_loop;
pub mod muxserve;
pub mod result;
pub mod serverless;

pub use dedicated::Dedicated;
pub use muxserve::{MuxServe, Placement};
pub use result::BaselineResult;
pub use serverless::{ServerlessLlm, SllmConfig};
