//! Shared serving machinery for the baseline systems.
//!
//! Baselines are unified (non-disaggregated) servers: each instance runs a
//! vLLM-style loop on its compute lane — pending prefills first, then one
//! decoding step for the whole batch — with continuous batching within the
//! resident model. System-specific behaviour (admission, what to do when an
//! instance drains, compute contention) plugs in through the [`Scheduler`]
//! trait.

use std::collections::VecDeque;

use aegaeon::audit::{AuditReport, AuditView, Auditor, InvariantAuditor, ReqAudit};
use aegaeon::deploy::{build_deploys, ModelDeploy};
use aegaeon::reqstate::ReqState;
use aegaeon_engine::{scale_up_plan, AutoscaleOpts, InitCosts, ScaleCost};
use aegaeon_gpu::{
    ClusterTopology, Completion, Fabric, FabricEvent, GpuId, LinkId, StreamId, StreamOp,
};
use aegaeon_metrics::RequestOutcome;
use aegaeon_model::{ModelId, ModelSpec};
use aegaeon_sim::{EventQueue, FxHashMap, Lift, SimDur, SimRng, SimTime, Timeline};
use aegaeon_telemetry::{CounterId, GaugeId, HistId, SpanId, SpanKind, Telemetry};
use aegaeon_workload::{RequestId, Trace};

use crate::result::BaselineResult;

/// Simulation events.
#[derive(Debug, Clone, PartialEq)]
pub enum BEv {
    /// Fabric event.
    Fabric(FabricEvent),
    /// Arrival of `trace.requests[idx]`.
    Arrive(u32),
    /// Periodic utilization sample.
    Sample,
}

/// Fabric completion tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BTag {
    /// One shard of a TP op.
    Part(u64),
    /// A prefill finished on an instance.
    Prefill {
        /// Instance index.
        inst: u32,
        /// The request.
        req: RequestId,
    },
    /// A decode step finished.
    Step {
        /// Instance index.
        inst: u32,
    },
    /// The last auto-scaling stage finished.
    Scale {
        /// Instance index.
        inst: u32,
    },
}

/// One serving instance (a TP group, or a MuxServe slot on a GPU).
#[derive(Debug)]
pub struct InstState {
    /// Member GPUs.
    pub gpus: Vec<GpuId>,
    /// Compute lanes, one per GPU (MuxServe slots use extra streams).
    pub lanes: Vec<StreamId>,
    /// Resident model.
    pub current: Option<ModelId>,
    /// Target of an in-flight scale (None when not scaling).
    pub scale_target: Option<ModelId>,
    scale_remaining: u32,
    /// Admitted requests awaiting prefill.
    pub prefill_q: VecDeque<RequestId>,
    /// Decoding batch.
    pub batch: Vec<RequestId>,
    /// An op is in flight on the lanes.
    pub busy: bool,
    /// Step/prefill duration multiplier (MuxServe compute sharing).
    pub contention: f64,
    /// Reserved KV tokens (oracle-final contexts of admitted requests).
    pub kv_reserved_tokens: u64,
    /// KV token capacity for the resident model (set at scale time).
    pub kv_cap_tokens: u64,
    /// Model switches performed.
    pub switches: u64,
}

impl InstState {
    /// Creates an idle instance over the given GPUs and compute lanes.
    pub fn new(gpus: Vec<GpuId>, lanes: Vec<StreamId>) -> InstState {
        InstState {
            gpus,
            lanes,
            current: None,
            scale_target: None,
            scale_remaining: 0,
            prefill_q: VecDeque::new(),
            batch: Vec::new(),
            busy: false,
            contention: 1.0,
            kv_reserved_tokens: 0,
            kv_cap_tokens: 0,
            switches: 0,
        }
    }

    /// True if the instance has no work at all.
    pub fn is_empty(&self) -> bool {
        self.prefill_q.is_empty() && self.batch.is_empty()
    }
}

/// System-specific policy hooks.
pub trait Scheduler {
    /// A request reached the system.
    fn on_arrival(&mut self, w: &mut World, idx: usize, q: &mut Qq);
    /// An instance has fully drained.
    fn on_idle(&mut self, w: &mut World, inst: usize, q: &mut Qq);
    /// An instance finished an op (optional bookkeeping).
    fn on_progress(&mut self, _w: &mut World, _inst: usize, _q: &mut Qq) {}
}

/// Event queue alias.
pub type Qq = EventQueue<BEv>;

/// World configuration shared by the baselines.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Cluster hardware.
    pub cluster: aegaeon_gpu::ClusterSpec,
    /// TP degree.
    pub tp: u32,
    /// Scale-plan optimization flags (what the baseline's loader achieves).
    pub opts: AutoscaleOpts,
    /// Component-init costs.
    pub init_costs: InitCosts,
    /// Usable VRAM fraction.
    pub vram_usable: f64,
    /// KV admission headroom (fraction of capacity usable for reservations).
    pub kv_fill: f64,
    /// Remote-registry bandwidth (always cached here; kept for parity).
    pub remote_bw: f64,
    /// Extra fixed cost per model switch (engine/process restart work the
    /// baseline performs that Aegaeon's component reuse removes, §5.1).
    pub extra_switch_cost: SimDur,
    /// Utilization sampling period.
    pub sample_period: SimDur,
    /// Extra time after the horizon before cutting the run.
    pub drain_window: SimDur,
    /// RNG seed.
    pub seed: u64,
    /// Run the always-on invariant auditor alongside the loop (observer
    /// only; results are bit-identical either way).
    pub audit: bool,
    /// Telemetry (request-lifecycle spans + sampled metrics). Observer
    /// only: results are bit-identical either way.
    pub telemetry: aegaeon_telemetry::TelemetrySpec,
}

impl WorldConfig {
    /// ServerlessLLM-style defaults on the paper testbed: warm containers,
    /// fast checkpoint loading (their contribution), no prefetching.
    pub fn sllm_default(cluster: aegaeon_gpu::ClusterSpec) -> WorldConfig {
        WorldConfig {
            cluster,
            tp: 1,
            opts: AutoscaleOpts {
                component_reuse: true,
                explicit_memory: true,
                prefetch: false,
                fine_sync: false,
            },
            init_costs: InitCosts::paper_default(),
            vram_usable: 0.9,
            kv_fill: 0.9,
            remote_bw: 5e9,
            // ServerlessLLM accelerates checkpoint loading but still
            // restarts the serving engine for the new model; Figure 7's
            // breakdown attributes seconds to VRAM GC, KV-cache host-memory
            // pinning and misc component init (2.5 + 4 + 2.3 s), stages the
            // §5.1 component-reuse design removes. We charge a moderate 6 s.
            extra_switch_cost: SimDur::from_secs(6),
            sample_period: SimDur::from_secs(1),
            drain_window: SimDur::from_secs(240),
            seed: 42,
            audit: false,
            telemetry: aegaeon_telemetry::TelemetrySpec::disabled(),
        }
    }
}

/// Pre-registered metric handles for the baseline loop (no string hashing
/// on the hot path).
#[derive(Debug, Clone, Copy)]
struct BTelIds {
    c_switches: CounterId,
    c_completed: CounterId,
    c_rejected: CounterId,
    c_events_dispatched: CounterId,
    c_audit_checks: CounterId,
    c_audit_violations: CounterId,
    g_prefill_queue_depth: GaugeId,
    g_decode_work: GaugeId,
    g_active_models: GaugeId,
    g_kv_reserved: GaugeId,
    h_batch_size: HistId,
}

impl BTelIds {
    fn register(reg: &mut aegaeon_telemetry::MetricsRegistry) -> BTelIds {
        BTelIds {
            c_switches: reg.counter("switches"),
            c_completed: reg.counter("completed_requests"),
            c_rejected: reg.counter("rejected_requests"),
            c_events_dispatched: reg.counter("events_dispatched"),
            c_audit_checks: reg.counter("audit_checks"),
            c_audit_violations: reg.counter("audit_violations"),
            g_prefill_queue_depth: reg.gauge("prefill_queue_depth"),
            g_decode_work: reg.gauge("decode_batch_requests"),
            g_active_models: reg.gauge("active_models"),
            g_kv_reserved: reg.gauge("kv_reserved_tokens"),
            h_batch_size: reg.histogram("batch_size", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]),
        }
    }
}

/// Per-request span handles (root + the currently open phase).
#[derive(Debug, Clone, Copy)]
struct BReqTel {
    root: SpanId,
    phase: SpanId,
}

impl BReqTel {
    const EMPTY: BReqTel = BReqTel {
        root: SpanId::NONE,
        phase: SpanId::NONE,
    };
}

/// The shared baseline world: instances over the fabric plus request state.
pub struct World {
    /// Configuration.
    pub cfg: WorldConfig,
    /// The fabric.
    pub fabric: Fabric<BTag>,
    /// Topology.
    pub topo: ClusterTopology,
    /// Model deployments.
    pub deploys: Vec<ModelDeploy>,
    /// Instances.
    pub insts: Vec<InstState>,
    /// Request runtime state.
    pub reqs: Vec<ReqState>,
    /// The trace.
    pub trace: Trace,
    /// RNG.
    pub rng: SimRng,
    ready: VecDeque<Completion<BTag>>,
    multis: FxHashMap<u64, (u32, BTag)>,
    next_multi: u64,
    usable_vram: u64,
    /// Completed requests.
    pub completed: usize,
    /// Requests rejected outright (unplaced models).
    pub rejected: usize,
    util_samples: Vec<(SimTime, Vec<f64>)>,
    sample_live: bool,
    arrivals_left: usize,
    /// Request-lifecycle spans and sampled metrics (observer only).
    pub tel: Telemetry,
    tm: BTelIds,
    req_tel: Vec<BReqTel>,
    /// Open switch span per instance (lazily sized: MuxServe rebuilds
    /// `insts` after construction).
    switch_spans: Vec<SpanId>,
}

impl World {
    /// Builds a world with one instance per TP group using each GPU's
    /// default stream as its lane.
    pub fn new(cfg: WorldConfig, models: &[ModelSpec], trace: Trace) -> World {
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let mut fabric: Fabric<BTag> = Fabric::new();
        let topo = ClusterTopology::build(&cfg.cluster, &mut fabric);
        let gpu_spec = cfg.cluster.nodes[0].gpu.clone();
        let deploys = build_deploys(models, &gpu_spec, cfg.tp, &mut rng);
        let usable_vram = (gpu_spec.vram_bytes as f64 * cfg.vram_usable) as u64;
        let gpu_ids: Vec<GpuId> = topo.gpu_ids().collect();
        let mut insts = Vec::new();
        for group in gpu_ids.chunks(cfg.tp as usize) {
            let lanes = group
                .iter()
                .map(|&g| topo.gpu(g).default_stream)
                .collect();
            insts.push(InstState {
                gpus: group.to_vec(),
                lanes,
                current: None,
                scale_target: None,
                scale_remaining: 0,
                prefill_q: VecDeque::new(),
                batch: Vec::new(),
                busy: false,
                contention: 1.0,
                kv_reserved_tokens: 0,
                kv_cap_tokens: 0,
                switches: 0,
            });
        }
        let reqs = trace
            .requests
            .iter()
            .map(|r| ReqState::new(r.arrival(), r.input_tokens, r.output_tokens))
            .collect();
        let arrivals_left = trace.len();
        let mut tel = Telemetry::new(&cfg.telemetry);
        let tm = BTelIds::register(&mut tel.metrics);
        let req_tel = if tel.is_enabled() {
            vec![BReqTel::EMPTY; trace.len()]
        } else {
            Vec::new()
        };
        World {
            cfg,
            fabric,
            topo,
            deploys,
            insts,
            reqs,
            trace,
            rng,
            ready: VecDeque::new(),
            multis: FxHashMap::default(),
            next_multi: 0,
            usable_vram,
            completed: 0,
            rejected: 0,
            util_samples: Vec::new(),
            sample_live: false,
            arrivals_left,
            tel,
            tm,
            req_tel,
            switch_spans: Vec::new(),
        }
    }

    // ----- Telemetry hooks (observer only; no-ops when disabled) --------

    fn tel_poll(&mut self, at: SimTime) {
        let m = &mut self.tel.metrics;
        if !m.is_enabled() {
            return;
        }
        let queue: usize = self.insts.iter().map(|i| i.prefill_q.len()).sum();
        let work: usize = self.insts.iter().map(|i| i.batch.len()).sum();
        let reserved: u64 = self.insts.iter().map(|i| i.kv_reserved_tokens).sum();
        let mut models: Vec<u32> = self
            .insts
            .iter()
            .filter_map(|i| i.current.map(|m| m.0))
            .collect();
        models.sort_unstable();
        models.dedup();
        m.set(self.tm.g_prefill_queue_depth, queue as f64);
        m.set(self.tm.g_decode_work, work as f64);
        m.set(self.tm.g_kv_reserved, reserved as f64);
        m.set(self.tm.g_active_models, models.len() as f64);
        m.sample(at);
    }

    fn tel_req_arrive(&mut self, req: RequestId, now: SimTime) {
        if !self.tel.is_enabled() {
            return;
        }
        let i = req.0 as usize;
        let model = self.trace.requests[i].model;
        let root = self.tel.spans.start(
            || format!("req{i}"),
            SpanKind::Request,
            now,
            SpanId::NONE,
            SpanId::NONE,
            || format!("req{i}:{model}"),
        );
        self.req_tel[i].root = root;
        self.req_tel[i].phase = self.tel.spans.start(
            || format!("req{i}"),
            SpanKind::QueueWait,
            now,
            root,
            SpanId::NONE,
            || "queue-wait",
        );
    }

    fn tel_begin_phase(&mut self, req: RequestId, kind: SpanKind, label: &'static str, now: SimTime) {
        if !self.tel.is_enabled() {
            return;
        }
        let i = req.0 as usize;
        let rt = self.req_tel[i];
        self.tel.spans.end(rt.phase, now);
        self.req_tel[i].phase = self.tel.spans.start(
            || format!("req{i}"),
            kind,
            now,
            rt.root,
            SpanId::NONE,
            || label,
        );
    }

    fn tel_req_done(&mut self, req: RequestId, now: SimTime) {
        if !self.tel.is_enabled() {
            return;
        }
        let i = req.0 as usize;
        let rt = std::mem::replace(&mut self.req_tel[i], BReqTel::EMPTY);
        self.tel.spans.end(rt.phase, now);
        self.tel.spans.end(rt.root, now);
    }

    /// Usable VRAM per GPU.
    pub fn usable_vram(&self) -> u64 {
        self.usable_vram
    }

    /// KV token capacity if `model` were resident alone, given `weights` of
    /// resident bytes on the GPU.
    pub fn kv_tokens_for(&self, model: ModelId, resident_weights: u64) -> u64 {
        let d = &self.deploys[model.0 as usize];
        let kv_bytes = self.usable_vram.saturating_sub(resident_weights);
        kv_bytes / d.kv_token_bytes.max(1)
    }

    /// Oracle-final context of a request (admission reservation).
    pub fn final_ctx(&self, req: RequestId) -> u64 {
        let r = &self.trace.requests[req.0 as usize];
        (r.input_tokens + r.output_tokens) as u64
    }

    /// True if `inst` can reserve KV space for `req`.
    pub fn can_admit(&self, inst: usize, req: RequestId) -> bool {
        let i = &self.insts[inst];
        let cap = (i.kv_cap_tokens as f64 * self.cfg.kv_fill) as u64;
        i.kv_reserved_tokens + self.final_ctx(req) <= cap
    }

    /// Admits `req` to `inst` (reserving KV) and kicks the loop.
    pub fn admit(&mut self, inst: usize, req: RequestId, q: &mut Qq) {
        let ctx = self.final_ctx(req);
        let i = &mut self.insts[inst];
        i.kv_reserved_tokens += ctx;
        i.prefill_q.push_back(req);
        self.kick(inst, q);
    }

    /// Starts scaling `inst` to `model`. KV capacity is set for the target.
    pub fn start_scale(&mut self, inst: usize, model: ModelId, q: &mut Qq) {
        debug_assert!(self.insts[inst].scale_target.is_none(), "already scaling");
        let d = &self.deploys[model.0 as usize];
        let mut plan = scale_up_plan(
            &self.cfg.opts,
            &self.cfg.init_costs,
            d.shard_bytes,
            false,
            true,
            self.cfg.remote_bw,
        );
        if !self.cfg.extra_switch_cost.is_zero() {
            plan.stages.push(aegaeon_engine::ScaleStage {
                kind: aegaeon_engine::StageKind::MiscInit,
                cost: ScaleCost::Fixed(self.cfg.extra_switch_cost),
            });
        }
        let lanes = self.insts[inst].lanes.clone();
        let gpus = self.insts[inst].gpus.clone();
        {
            let i = &mut self.insts[inst];
            i.scale_target = Some(model);
            i.scale_remaining = (plan.stages.len() * lanes.len()) as u32;
            i.switches += 1;
            i.busy = true;
            i.kv_cap_tokens = 0; // set on completion
        }
        self.tel.metrics.inc(self.tm.c_switches, 1);
        if self.tel.is_enabled() {
            if self.switch_spans.len() <= inst {
                self.switch_spans.resize(inst + 1, SpanId::NONE);
            }
            let now = q.now();
            let old = std::mem::replace(&mut self.switch_spans[inst], SpanId::NONE);
            self.tel.spans.end(old, now);
            self.switch_spans[inst] = self.tel.spans.start(
                || format!("inst{inst}"),
                SpanKind::Switch,
                now,
                SpanId::NONE,
                SpanId::NONE,
                || format!("S:{model}"),
            );
        }
        for (lane, g) in lanes.iter().zip(&gpus) {
            let h = self.topo.gpu(*g).clone();
            for st in &plan.stages {
                let tag = BTag::Scale { inst: inst as u32 };
                let op = match st.cost {
                    ScaleCost::Fixed(dur) => StreamOp::Compute { dur, tag },
                    ScaleCost::HostLoad { bytes, efficiency } => StreamOp::Copy {
                        link: h.h2d,
                        bytes: (bytes as f64 / efficiency) as u64,
                        tag,
                    },
                    ScaleCost::DeviceCopy { bytes } => StreamOp::Compute {
                        dur: SimDur::from_secs_f64(bytes as f64 / h.spec.device_copy_bw()),
                        tag,
                    },
                };
                self.submit(*lane, op, q);
            }
        }
    }

    fn submit(&mut self, lane: StreamId, op: StreamOp<BTag>, q: &mut Qq) {
        let cs = self.fabric.submit(lane, op, &mut Lift::new(q, BEv::Fabric));
        self.ready.extend(cs);
    }

    fn multi(&mut self, parts: u32, inner: BTag) -> BTag {
        if parts <= 1 {
            return inner;
        }
        let id = self.next_multi;
        self.next_multi += 1;
        self.multis.insert(id, (parts, inner));
        BTag::Part(id)
    }

    /// Runs the instance loop: prefill first, else a decode step.
    pub fn kick(&mut self, inst: usize, q: &mut Qq) {
        if self.insts[inst].busy || self.insts[inst].scale_target.is_some() {
            return;
        }
        let model = match self.insts[inst].current {
            Some(m) => m,
            None => return, // scheduler must scale first
        };
        if let Some(&req) = self.insts[inst].prefill_q.front() {
            self.insts[inst].prefill_q.pop_front();
            let input = self.reqs[req.0 as usize].input_tokens;
            let base = self.deploys[model.0 as usize]
                .perf
                .prefill_secs(&[input], &mut self.rng);
            let dur = base * self.insts[inst].contention;
            self.reqs[req.0 as usize].prefill_start = Some(q.now());
            self.tel_begin_phase(req, SpanKind::Prefill, "prefill", q.now());
            self.insts[inst].busy = true;
            let lanes = self.insts[inst].lanes.clone();
            let tag = self.multi(
                lanes.len() as u32,
                BTag::Prefill {
                    inst: inst as u32,
                    req,
                },
            );
            for lane in lanes {
                self.submit(lane, StreamOp::Compute { dur, tag: tag.clone() }, q);
            }
        } else if !self.insts[inst].batch.is_empty() {
            let batch = self.insts[inst].batch.clone();
            let ctx: u64 = batch
                .iter()
                .map(|r| self.reqs[r.0 as usize].ctx_tokens() as u64)
                .sum();
            let base = self.deploys[model.0 as usize]
                .perf
                .decode_secs(batch.len(), ctx, &mut self.rng);
            let dur = base * self.insts[inst].contention;
            self.tel.metrics.observe(self.tm.h_batch_size, batch.len() as f64);
            self.insts[inst].busy = true;
            let lanes = self.insts[inst].lanes.clone();
            let tag = self.multi(lanes.len() as u32, BTag::Step { inst: inst as u32 });
            for lane in lanes {
                self.submit(lane, StreamOp::Compute { dur, tag: tag.clone() }, q);
            }
        }
    }

    /// Drives the simulation with `sched` until the trace drains.
    ///
    /// # Panics
    ///
    /// With `cfg.audit` set, panics on any invariant violation, printing
    /// the full report (the violation reproduces from the config's seed).
    pub fn run<S: Scheduler>(self, sched: &mut S) -> BaselineResult {
        if self.cfg.audit {
            let seed = self.cfg.seed;
            let (result, report) = self.run_audited(sched);
            assert!(
                report.ok(),
                "baseline invariant violation (reproduce with seed={seed}):\n{report}"
            );
            result
        } else {
            self.run_inner(sched, None).0
        }
    }

    /// Runs with the standard invariant auditor installed, returning the
    /// audit report alongside the results.
    pub fn run_audited<S: Scheduler>(self, sched: &mut S) -> (BaselineResult, AuditReport) {
        let auditor: Box<dyn Auditor> = Box::new(InvariantAuditor::new());
        let (result, report) = self.run_inner(sched, Some(auditor));
        (result, report.expect("auditor was installed"))
    }

    fn run_inner<S: Scheduler>(
        mut self,
        sched: &mut S,
        mut auditor: Option<Box<dyn Auditor>>,
    ) -> (BaselineResult, Option<AuditReport>) {
        let mut q: Qq = EventQueue::new();
        for (i, r) in self.trace.requests.iter().enumerate() {
            q.schedule_at(r.arrival(), BEv::Arrive(i as u32));
        }
        let hard_stop = self.trace.horizon + self.cfg.drain_window;
        q.schedule_after(self.cfg.sample_period, BEv::Sample);
        self.sample_live = true;
        let cap: u64 = 400_000_000;
        while let Some((t, ev)) = q.pop() {
            if t > hard_stop || q.events_dispatched() > cap {
                break;
            }
            match ev {
                BEv::Fabric(fe) => {
                    let cs = self.fabric.advance(fe, &mut Lift::new(&mut q, BEv::Fabric));
                    self.ready.extend(cs);
                }
                BEv::Arrive(idx) => {
                    self.arrivals_left -= 1;
                    let rid = self.trace.requests[idx as usize].id;
                    self.tel_req_arrive(rid, q.now());
                    sched.on_arrival(&mut self, idx as usize, &mut q);
                }
                BEv::Sample => {
                    let busy: Vec<f64> = self
                        .topo
                        .gpu_ids()
                        .map(|g| {
                            self.fabric
                                .stream_compute_busy(self.topo.gpu(g).default_stream)
                                .as_secs_f64()
                        })
                        .collect();
                    self.util_samples.push((q.now(), busy));
                    if self.arrivals_left > 0 || self.completed < self.trace.len() {
                        q.schedule_after(self.cfg.sample_period, BEv::Sample);
                    }
                }
            }
            // Drain completions, collecting instances that fully emptied.
            while let Some(c) = self.ready.pop_front() {
                let Completion::Op { tag, .. } = c else { continue };
                match tag {
                    BTag::Part(id) => {
                        let done = {
                            let e = self.multis.get_mut(&id).expect("live multi");
                            e.0 -= 1;
                            e.0 == 0
                        };
                        if done {
                            let (_, inner) = self.multis.remove(&id).expect("live");
                            self.ready.push_front(Completion::Op {
                                stream: aegaeon_gpu::StreamId(0),
                                tag: inner,
                            });
                        }
                    }
                    BTag::Scale { inst } => {
                        let inst = inst as usize;
                        let done = {
                            let i = &mut self.insts[inst];
                            i.scale_remaining -= 1;
                            i.scale_remaining == 0
                        };
                        if done {
                            if let Some(s) = self.switch_spans.get_mut(inst) {
                                let span = std::mem::replace(s, SpanId::NONE);
                                self.tel.spans.end(span, q.now());
                            }
                            let model = self.insts[inst]
                                .scale_target
                                .take()
                                .expect("scaling target");
                            let shard = self.deploys[model.0 as usize].shard_bytes;
                            let cap = self.kv_tokens_for(model, shard);
                            let i = &mut self.insts[inst];
                            i.current = Some(model);
                            i.kv_cap_tokens = cap;
                            i.busy = false;
                            self.kick(inst, &mut q);
                            sched.on_progress(&mut self, inst, &mut q);
                        }
                    }
                    BTag::Prefill { inst, req } => {
                        let inst = inst as usize;
                        self.reqs[req.0 as usize].push_token(q.now());
                        self.reqs[req.0 as usize].prefill_end = Some(q.now());
                        let mut emptied = false;
                        {
                            let i = &mut self.insts[inst];
                            i.busy = false;
                            if self.reqs[req.0 as usize].is_done() {
                                // Single-token output: request complete.
                                i.kv_reserved_tokens = i
                                    .kv_reserved_tokens
                                    .saturating_sub(self.trace.requests[req.0 as usize].input_tokens as u64 + self.trace.requests[req.0 as usize].output_tokens as u64);
                                emptied = i.is_empty();
                            } else {
                                i.batch.push(req);
                            }
                        }
                        if self.reqs[req.0 as usize].is_done() {
                            self.completed += 1;
                            self.tel.metrics.inc(self.tm.c_completed, 1);
                            self.tel_req_done(req, q.now());
                        } else {
                            self.tel_begin_phase(
                                req,
                                SpanKind::DecodeRound,
                                "decode",
                                q.now(),
                            );
                        }
                        self.kick(inst, &mut q);
                        sched.on_progress(&mut self, inst, &mut q);
                        if emptied {
                            sched.on_idle(&mut self, inst, &mut q);
                        }
                    }
                    BTag::Step { inst } => {
                        let inst = inst as usize;
                        let now = q.now();
                        let batch = self.insts[inst].batch.clone();
                        let mut finished: Vec<RequestId> = Vec::new();
                        for req in batch {
                            let rs = &mut self.reqs[req.0 as usize];
                            rs.push_token(now);
                            if rs.is_done() {
                                finished.push(req);
                            }
                        }
                        {
                            let i = &mut self.insts[inst];
                            i.busy = false;
                            for req in &finished {
                                i.batch.retain(|r| r != req);
                            }
                        }
                        for req in &finished {
                            let ctx = self.final_ctx(*req);
                            self.insts[inst].kv_reserved_tokens = self.insts[inst]
                                .kv_reserved_tokens
                                .saturating_sub(ctx);
                            self.completed += 1;
                            self.tel.metrics.inc(self.tm.c_completed, 1);
                            self.tel_req_done(*req, now);
                        }
                        let emptied = self.insts[inst].is_empty();
                        self.kick(inst, &mut q);
                        sched.on_progress(&mut self, inst, &mut q);
                        if emptied {
                            sched.on_idle(&mut self, inst, &mut q);
                        }
                    }
                }
            }
            if let Some(a) = auditor.as_deref_mut() {
                a.after_event(q.now(), &self);
            }
            // Telemetry sampling happens here in the dispatch loop, never as
            // a queue event: the sample boundaries are derived from the
            // popped timestamp, so the run is bit-identical either way.
            while let Some(at) = self.tel.sample_due(t) {
                self.tel_poll(at);
            }
        }
        let report = auditor.map(|mut a| {
            a.at_finish(q.now(), &self);
            a.take_report()
        });
        if let Some(rep) = &report {
            self.tel
                .metrics
                .set_counter(self.tm.c_audit_checks, rep.events_checked);
            self.tel
                .metrics
                .set_counter(self.tm.c_audit_violations, rep.violations.len() as u64);
        }
        (self.finish(&q), report)
    }

    fn finish(mut self, q: &Qq) -> BaselineResult {
        let outcomes = self
            .trace
            .requests
            .iter()
            .map(|r| {
                let rs = &self.reqs[r.id.0 as usize];
                RequestOutcome {
                    id: r.id,
                    model: r.model,
                    arrival: rs.arrival,
                    token_times: rs.token_times.clone(),
                    target_tokens: r.output_tokens,
                }
            })
            .collect();
        let gpu_busy = self
            .topo
            .gpu_ids()
            .map(|g| {
                self.fabric
                    .stream_compute_busy(self.topo.gpu(g).default_stream)
                    .as_secs_f64()
            })
            .collect();
        self.tel
            .metrics
            .set_counter(self.tm.c_events_dispatched, q.events_dispatched());
        self.tel
            .metrics
            .set_counter(self.tm.c_rejected, self.rejected as u64);
        self.tel.finish(q.now());
        BaselineResult {
            outcomes,
            horizon: self.trace.horizon,
            end_time: q.now(),
            completed: self.completed,
            total_requests: self.trace.len(),
            rejected: self.rejected,
            switches: self.insts.iter().map(|i| i.switches).sum(),
            gpu_busy,
            util_samples: self.util_samples,
            telemetry: self.tel,
        }
    }
}

/// Read-only audit facade: the baselines share the same invariant suite as
/// Aegaeon (request conservation, token order, link conservation). KV here
/// is token-count reservations rather than block books, so the memory deep
/// check does not apply.
impl AuditView for World {
    fn completed_counter(&self) -> u64 {
        self.completed as u64
    }

    fn rejected_counter(&self) -> u64 {
        self.rejected as u64
    }

    fn request_count(&self) -> usize {
        self.reqs.len()
    }

    fn request(&self, i: usize) -> ReqAudit<'_> {
        let r = &self.reqs[i];
        ReqAudit {
            produced: r.produced,
            target: r.target_tokens,
            done: r.is_done(),
            token_times: &r.token_times,
        }
    }

    fn link_audit(&self) -> Option<String> {
        for l in 0..self.fabric.link_count() {
            if let Some(e) = self.fabric.link(LinkId(l as u32)).audit() {
                return Some(e);
            }
        }
        None
    }
}
