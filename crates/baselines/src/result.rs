//! Results common to all baseline runs.

use aegaeon_metrics::{attainment, AttainmentReport, RequestOutcome};
use aegaeon_sim::SimTime;
use aegaeon_workload::SloSpec;

/// Outcome of a baseline serving run.
#[derive(Debug)]
pub struct BaselineResult {
    /// Per-request outcomes.
    pub outcomes: Vec<RequestOutcome>,
    /// Workload horizon (attainment cutoff).
    pub horizon: SimTime,
    /// When the run ended.
    pub end_time: SimTime,
    /// Requests completed.
    pub completed: usize,
    /// Requests in the trace.
    pub total_requests: usize,
    /// Requests that could never be served (MuxServe's unplaced models).
    pub rejected: usize,
    /// Model switches performed.
    pub switches: u64,
    /// Compute-busy seconds per GPU.
    pub gpu_busy: Vec<f64>,
    /// Periodic samples of cumulative per-GPU compute-busy seconds.
    pub util_samples: Vec<(SimTime, Vec<f64>)>,
}

impl BaselineResult {
    /// Token-level SLO attainment under `slo`.
    pub fn attainment(&self, slo: SloSpec) -> AttainmentReport {
        attainment(&self.outcomes, slo, self.horizon)
    }

    /// Mean GPU compute utilization.
    pub fn mean_gpu_utilization(&self) -> f64 {
        if self.gpu_busy.is_empty() || self.end_time == SimTime::ZERO {
            return 0.0;
        }
        self.gpu_busy.iter().sum::<f64>()
            / (self.gpu_busy.len() as f64 * self.end_time.as_secs_f64())
    }
}
