//! Results common to all baseline runs.

use aegaeon_metrics::{attainment, AttainmentReport, RequestOutcome};
use aegaeon_sim::SimTime;
use aegaeon_workload::SloSpec;

/// Outcome of a baseline serving run.
#[derive(Debug)]
pub struct BaselineResult {
    /// Per-request outcomes.
    pub outcomes: Vec<RequestOutcome>,
    /// Workload horizon (attainment cutoff).
    pub horizon: SimTime,
    /// When the run ended.
    pub end_time: SimTime,
    /// Requests completed.
    pub completed: usize,
    /// Requests in the trace.
    pub total_requests: usize,
    /// Requests that could never be served (MuxServe's unplaced models).
    pub rejected: usize,
    /// Model switches performed.
    pub switches: u64,
    /// Compute-busy seconds per GPU.
    pub gpu_busy: Vec<f64>,
    /// Periodic samples of cumulative per-GPU compute-busy seconds.
    pub util_samples: Vec<(SimTime, Vec<f64>)>,
    /// Request-lifecycle spans and sampled metrics (when enabled).
    pub telemetry: aegaeon_telemetry::Telemetry,
}

impl BaselineResult {
    /// Token-level SLO attainment under `slo`.
    pub fn attainment(&self, slo: SloSpec) -> AttainmentReport {
        attainment(&self.outcomes, slo, self.horizon)
    }

    /// Mean GPU compute utilization.
    pub fn mean_gpu_utilization(&self) -> f64 {
        if self.gpu_busy.is_empty() || self.end_time == SimTime::ZERO {
            return 0.0;
        }
        self.gpu_busy.iter().sum::<f64>()
            / (self.gpu_busy.len() as f64 * self.end_time.as_secs_f64())
    }

    /// Order-sensitive hash over every behavioral field, excluding the
    /// observer-only `telemetry`. The differential telemetry test asserts
    /// this is bit-identical with telemetry on and off.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = aegaeon_sim::FxHasher::default();
        for o in &self.outcomes {
            o.id.0.hash(&mut h);
            o.model.0.hash(&mut h);
            o.arrival.as_nanos().hash(&mut h);
            o.target_tokens.hash(&mut h);
            for t in &o.token_times {
                t.as_nanos().hash(&mut h);
            }
        }
        self.horizon.as_nanos().hash(&mut h);
        self.end_time.as_nanos().hash(&mut h);
        self.completed.hash(&mut h);
        self.total_requests.hash(&mut h);
        self.rejected.hash(&mut h);
        self.switches.hash(&mut h);
        for v in &self.gpu_busy {
            v.to_bits().hash(&mut h);
        }
        for (t, busy) in &self.util_samples {
            t.as_nanos().hash(&mut h);
            for v in busy {
                v.to_bits().hash(&mut h);
            }
        }
        h.finish()
    }
}
