//! Dedicated instances: one reserved TP group per model (the strawman and
//! the production "before" of Figure 18).

use aegaeon_model::{ModelId, ModelSpec};
use aegaeon_workload::Trace;

use crate::engine_loop::{Qq, Scheduler, World, WorldConfig};
use crate::result::BaselineResult;

/// The dedicated-instance scheduler: instance `i` serves model `i % M`.
#[derive(Debug)]
pub struct Dedicated {
    queues: Vec<Vec<aegaeon_workload::RequestId>>,
    /// instance -> model
    assignment: Vec<ModelId>,
}

impl Dedicated {
    /// Runs dedicated serving; requires at least one instance per model.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer instances than models.
    pub fn run(cfg: &WorldConfig, models: &[ModelSpec], trace: &Trace) -> BaselineResult {
        let world = World::new(cfg.clone(), models, trace.clone());
        assert!(
            world.insts.len() >= models.len(),
            "dedicated serving needs one instance per model ({} < {})",
            world.insts.len(),
            models.len()
        );
        let assignment = (0..world.insts.len())
            .map(|i| ModelId((i % models.len()) as u32))
            .collect();
        Self::run_world(world, models.len(), assignment)
    }

    /// Runs with an explicit instance-to-model assignment (production
    /// replica counts from the capacity planner). The cluster must have
    /// exactly `assignment.len()` instances.
    ///
    /// # Panics
    ///
    /// Panics on an instance-count mismatch or an unassigned model.
    pub fn run_with_assignment(
        cfg: &WorldConfig,
        models: &[ModelSpec],
        trace: &Trace,
        assignment: Vec<ModelId>,
    ) -> BaselineResult {
        let world = World::new(cfg.clone(), models, trace.clone());
        assert_eq!(
            world.insts.len(),
            assignment.len(),
            "assignment must cover every instance"
        );
        for m in 0..models.len() as u32 {
            assert!(
                assignment.contains(&ModelId(m)),
                "model m{m} has no dedicated replica"
            );
        }
        Self::run_world(world, models.len(), assignment)
    }

    fn run_world(world: World, n_models: usize, assignment: Vec<ModelId>) -> BaselineResult {
        let mut sched = Dedicated {
            queues: vec![Vec::new(); n_models],
            assignment,
        };
        world.run(&mut sched)
    }

    fn instance_for(&self, w: &World, model: ModelId, req: aegaeon_workload::RequestId) -> Option<usize> {
        // Least-loaded replica of the model with admission capacity.
        (0..w.insts.len())
            .filter(|&i| self.assignment[i] == model)
            .filter(|&i| w.insts[i].current.is_some() || w.insts[i].scale_target.is_some())
            .filter(|&i| w.can_admit(i, req))
            .min_by_key(|&i| w.insts[i].batch.len() + w.insts[i].prefill_q.len())
    }
}

impl Scheduler for Dedicated {
    fn on_arrival(&mut self, w: &mut World, idx: usize, q: &mut Qq) {
        let req = w.trace.requests[idx].id;
        let model = w.trace.requests[idx].model;
        // Lazily load the model on its replicas at first use.
        for i in 0..w.insts.len() {
            if self.assignment[i] == model
                && w.insts[i].current.is_none()
                && w.insts[i].scale_target.is_none()
            {
                let shard = w.deploys[model.0 as usize].shard_bytes;
                w.insts[i].kv_cap_tokens = w.kv_tokens_for(model, shard);
                w.start_scale(i, model, q);
            }
        }
        match self.instance_for(w, model, req) {
            Some(i) => w.admit(i, req, q),
            None => self.queues[model.0 as usize].push(req),
        }
    }

    fn on_idle(&mut self, w: &mut World, inst: usize, q: &mut Qq) {
        let model = self.assignment[inst];
        let queue = &mut self.queues[model.0 as usize];
        let i = 0;
        while i < queue.len() {
            let req = queue[i];
            if w.can_admit(inst, req) {
                queue.remove(i);
                w.admit(inst, req, q);
            } else {
                break;
            }
        }
    }

    fn on_progress(&mut self, w: &mut World, inst: usize, q: &mut Qq) {
        // Capacity may have freed mid-run; top the batch up.
        self.on_idle(w, inst, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aegaeon_gpu::{ClusterSpec, GpuSpec, NodeSpec};
    use aegaeon_model::Zoo;
    use aegaeon_sim::{SimRng, SimTime};
    use aegaeon_workload::{LengthDist, SloSpec, TraceBuilder};

    fn cluster(gpus: u32) -> ClusterSpec {
        ClusterSpec::homogeneous(
            1,
            NodeSpec {
                gpus,
                gpu: GpuSpec::h800(),
                dram_bytes: 1 << 40,
                nic_bw: 25e9,
            },
        )
    }

    #[test]
    fn dedicated_attains_but_wastes_gpus() {
        let models = Zoo::replicate(&Zoo::standard().market_band(), 4);
        let mut rng = SimRng::seed_from_u64(1);
        let trace = TraceBuilder::new(SimTime::from_secs_f64(200.0), LengthDist::sharegpt())
            .uniform_models(&mut rng, 4, 0.05)
            .build(&mut rng);
        let cfg = WorldConfig::sllm_default(cluster(4));
        let r = Dedicated::run(&cfg, &models, &trace);
        assert_eq!(r.completed, r.total_requests);
        let rep = r.attainment(SloSpec::paper_default());
        assert!(rep.ratio() > 0.97, "attainment {}", rep.ratio());
        // Sporadic load: dedicated GPUs sit mostly idle (the §1 waste).
        assert!(
            r.mean_gpu_utilization() < 0.4,
            "utilization {}",
            r.mean_gpu_utilization()
        );
        assert_eq!(r.switches, 4, "exactly one load per model");
    }

    #[test]
    #[should_panic(expected = "one instance per model")]
    fn too_few_instances_panics() {
        let models = Zoo::replicate(&Zoo::standard().market_band(), 5);
        let mut rng = SimRng::seed_from_u64(1);
        let trace = TraceBuilder::new(SimTime::from_secs_f64(10.0), LengthDist::sharegpt())
            .uniform_models(&mut rng, 5, 0.05)
            .build(&mut rng);
        let cfg = WorldConfig::sllm_default(cluster(4));
        let _ = Dedicated::run(&cfg, &models, &trace);
    }
}
