//! Differential property tests: the indexed 4-ary [`EventQueue`] must be
//! observationally identical to the retained [`BinaryHeapQueue`] reference —
//! same pop order (stable FIFO for same-time ties), same clock — over
//! arbitrary interleavings of pushes and pops. Absolute-time pushes are
//! clamped to `now()` before scheduling: a genuinely stale push trips the
//! debug-build monotonic-stamp guard (covered by its own regression test),
//! so the scripts here only exercise valid schedules.

use proptest::prelude::*;

use aegaeon_sim::{BinaryHeapQueue, EventQueue, SimDur, SimTime, Timeline};

/// One scripted operation: `(kind, arg)`.
/// kind 0 → `schedule_after(arg ns)`; kind 1 → `schedule_at(max(arg ns, now))`
/// (raw targets are often in the past once the clock has advanced, so the
/// script clamps them to stay within the monotonic-stamp contract);
/// kind 2 → `pop`.
type Op = (u32, u64);

/// `pop` is inherent on each queue type, so the differential driver needs a
/// tiny adapter trait over both implementations.
trait PopQueue: Timeline<u64> {
    fn pop_ev(&mut self) -> Option<(SimTime, u64)>;
}

impl PopQueue for EventQueue<u64> {
    fn pop_ev(&mut self) -> Option<(SimTime, u64)> {
        self.pop()
    }
}

impl PopQueue for BinaryHeapQueue<u64> {
    fn pop_ev(&mut self) -> Option<(SimTime, u64)> {
        self.pop()
    }
}

fn apply<Q: PopQueue>(q: &mut Q, ops: &[Op]) -> Vec<(SimTime, u64)> {
    let mut popped = Vec::new();
    for (id, &(kind, arg)) in ops.iter().enumerate() {
        match kind {
            // Tiny delay range so same-time ties are common.
            0 => q.schedule_after(SimDur::from_nanos(arg % 8), id as u64),
            1 => {
                let at = SimTime::from_nanos(arg).max(q.now());
                q.schedule_at(at, id as u64);
            }
            _ => {
                if let Some(pe) = q.pop_ev() {
                    popped.push(pe);
                }
            }
        }
    }
    while let Some(pe) = q.pop_ev() {
        popped.push(pe);
    }
    popped
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary push/pop scripts produce bit-identical pop sequences on
    /// both queue implementations, including FIFO order for same-time
    /// events and clamping of past `schedule_at` targets.
    #[test]
    fn indexed_heap_matches_binary_heap_reference(
        ops in prop::collection::vec((0u32..3, 0u64..64), 1..250)
    ) {
        let mut fast: EventQueue<u64> = EventQueue::new();
        let mut reference: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let a = apply(&mut fast, &ops);
        let b = apply(&mut reference, &ops);
        prop_assert_eq!(a, b);
        prop_assert_eq!(fast.now(), reference.now());
    }

    /// Pure push-then-drain scripts (no interleaved pops) also agree, and
    /// the drained order is globally time-sorted.
    #[test]
    fn drain_order_is_sorted_and_matches_reference(
        delays in prop::collection::vec(0u64..16, 1..200)
    ) {
        let mut fast: EventQueue<u64> = EventQueue::new();
        let mut reference: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        for (id, &d) in delays.iter().enumerate() {
            fast.schedule_after(SimDur::from_nanos(d), id as u64);
            reference.schedule_after(SimDur::from_nanos(d), id as u64);
        }
        let mut a = Vec::new();
        while let Some(pe) = fast.pop() {
            a.push(pe);
        }
        let mut b = Vec::new();
        while let Some(pe) = reference.pop() {
            b.push(pe);
        }
        for w in a.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
        prop_assert_eq!(a, b);
    }
}
