//! Fair-share bandwidth links.
//!
//! Models an interconnect channel (one direction of a PCIe link, an NVLink
//! lane, a NIC) shared by concurrent transfers: `n` in-flight flows each
//! progress at `bandwidth / n`. Rates only change when a flow starts,
//! finishes or is cancelled, so settling progress at exactly those points
//! makes the piecewise-constant model exact.
//!
//! The link is event-agnostic: after every mutation the owner must call
//! [`FairLink::deadline`] and schedule a timer for the returned instant,
//! tagging it with the returned generation. When the timer fires, the owner
//! calls [`FairLink::expire`]; a stale generation is ignored.
//!
//! # Examples
//!
//! ```
//! use aegaeon_sim::{FairLink, SimTime};
//!
//! let mut link = FairLink::new("pcie-h2d", 32e9); // 32 GB/s
//! let t0 = SimTime::ZERO;
//! let f = link.start_flow(t0, 32_000_000_000); // 32 GB
//! let (eta, gen) = link.deadline(t0).unwrap();
//! assert!((eta.as_secs_f64() - 1.0).abs() < 1e-6);
//! let done = link.expire(eta, gen).unwrap();
//! assert_eq!(done, vec![f]);
//! ```

use crate::stamp::Stamp;
use crate::time::{SimDur, SimTime};

/// Identifies one in-flight transfer on a [`FairLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

#[derive(Debug)]
struct Flow {
    id: FlowId,
    bytes_left: f64,
}

/// A full-speed, fair-share bandwidth channel.
#[derive(Debug)]
pub struct FairLink {
    name: String,
    bw: f64,
    flows: Vec<Flow>,
    last_settle: SimTime,
    stamp: Stamp,
    next_flow: u64,
    delivered: f64,
    busy: SimDur,
}

/// Sub-byte slack tolerated when deciding that a flow has completed.
const EPS_BYTES: f64 = 1e-3;

impl FairLink {
    /// Creates a link with `bandwidth_bytes_per_sec` capacity.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not strictly positive.
    pub fn new(name: impl Into<String>, bandwidth_bytes_per_sec: f64) -> Self {
        assert!(
            bandwidth_bytes_per_sec > 0.0,
            "link bandwidth must be positive"
        );
        FairLink {
            name: name.into(),
            bw: bandwidth_bytes_per_sec,
            flows: Vec::new(),
            last_settle: SimTime::ZERO,
            stamp: Stamp::new(),
            next_flow: 0,
            delivered: 0.0,
            busy: SimDur::ZERO,
        }
    }

    /// The link's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nominal bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bw
    }

    /// Number of in-flight flows.
    pub fn in_flight(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes fully delivered so far.
    pub fn bytes_delivered(&self) -> f64 {
        self.delivered
    }

    /// Accumulated time during which at least one flow was active.
    pub fn busy_time(&self) -> SimDur {
        self.busy
    }

    /// Starts a transfer of `bytes` at time `now` and returns its id.
    ///
    /// The caller must refresh its completion timer via [`Self::deadline`].
    pub fn start_flow(&mut self, now: SimTime, bytes: u64) -> FlowId {
        self.settle(now);
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.push(Flow {
            id,
            bytes_left: (bytes.max(1)) as f64,
        });
        id
    }

    /// Aborts an in-flight transfer; returns true if it was present.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        self.settle(now);
        let before = self.flows.len();
        self.flows.retain(|f| f.id != id);
        self.flows.len() != before
    }

    /// Bytes still pending for `id`, if the flow is in flight.
    pub fn bytes_remaining(&self, id: FlowId) -> Option<u64> {
        self.flows
            .iter()
            .find(|f| f.id == id)
            .map(|f| f.bytes_left.max(0.0).round() as u64)
    }

    /// The instant at which the earliest in-flight flow completes, plus the
    /// generation with which the corresponding timer must be tagged.
    ///
    /// Every call invalidates previously issued generations, so only the
    /// most recent timer is live.
    pub fn deadline(&mut self, now: SimTime) -> Option<(SimTime, u64)> {
        self.settle(now);
        let gen = self.stamp.bump();
        if self.flows.is_empty() {
            return None;
        }
        let rate = self.bw / self.flows.len() as f64;
        let min_left = self
            .flows
            .iter()
            .map(|f| f.bytes_left)
            .fold(f64::INFINITY, f64::min);
        // Ceil to the next nanosecond so that `expire` always finds at least
        // one flow at (or below) zero bytes, guaranteeing progress.
        let dt_ns = ((min_left.max(0.0) / rate) * 1e9).ceil() as u64;
        Some((now + SimDur::from_nanos(dt_ns), gen))
    }

    /// Handles a completion timer with generation `gen` firing at `now`.
    ///
    /// Returns `Some(flows that finished)` for a live timer; the caller must
    /// then refresh its timer via [`Self::deadline`]. Returns `None` for a
    /// stale generation, in which case the link is untouched and the caller
    /// must *not* refresh (a live timer is already pending).
    pub fn expire(&mut self, now: SimTime, gen: u64) -> Option<Vec<FlowId>> {
        if !self.stamp.is_current(gen) {
            return None;
        }
        self.settle(now);
        let mut done = Vec::new();
        self.flows.retain(|f| {
            if f.bytes_left <= EPS_BYTES {
                done.push(f.id);
                false
            } else {
                true
            }
        });
        Some(done)
    }

    /// Advances all in-flight flows to `now` at the current fair-share rate.
    fn settle(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_settle);
        self.last_settle = self.last_settle.max(now);
        if dt.is_zero() || self.flows.is_empty() {
            return;
        }
        self.busy += dt;
        let rate = self.bw / self.flows.len() as f64;
        let progressed = rate * dt.as_secs_f64();
        for f in &mut self.flows {
            let p = progressed.min(f.bytes_left);
            f.bytes_left -= p;
            self.delivered += p;
        }
    }

    /// The time a transfer of `bytes` would take if it were alone on the link.
    pub fn solo_duration(&self, bytes: u64) -> SimDur {
        SimDur::from_secs_f64(bytes as f64 / self.bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(link: &mut FairLink, mut now: SimTime) -> Vec<(SimTime, FlowId)> {
        let mut out = Vec::new();
        while let Some((eta, gen)) = link.deadline(now) {
            now = eta;
            for id in link.expire(now, gen).expect("freshly issued generation") {
                out.push((now, id));
            }
        }
        out
    }

    #[test]
    fn solo_flow_takes_bytes_over_bandwidth() {
        let mut link = FairLink::new("l", 1e9);
        let f = link.start_flow(SimTime::ZERO, 500_000_000);
        let done = drain(&mut link, SimTime::ZERO);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, f);
        assert!((done[0].0.as_secs_f64() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn two_equal_flows_share_fairly() {
        let mut link = FairLink::new("l", 1e9);
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        let done = drain(&mut link, SimTime::ZERO);
        // Each gets 0.5 GB/s, so both finish at t = 2 s.
        assert_eq!(done.len(), 2);
        for (t, _) in &done {
            assert!((t.as_secs_f64() - 2.0).abs() < 1e-6, "finished at {t}");
        }
    }

    #[test]
    fn late_joiner_slows_first_flow() {
        let mut link = FairLink::new("l", 1e9);
        // Flow A: 1 GB at t=0. Alone until t=0.5 (0.5 GB done), then shares.
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        let t_half = SimTime::from_secs_f64(0.5);
        link.start_flow(t_half, 250_000_000);
        // From t=0.5: A has 0.5 GB left at 0.5 GB/s; B has 0.25 GB at 0.5 GB/s.
        // B finishes at t=1.0; then A has 0.25 GB left at full rate -> t=1.25.
        let done = drain(&mut link, t_half);
        assert_eq!(done.len(), 2);
        assert!((done[0].0.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((done[1].0.as_secs_f64() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn cancel_removes_flow_and_speeds_up_rest() {
        let mut link = FairLink::new("l", 1e9);
        let a = link.start_flow(SimTime::ZERO, 1_000_000_000);
        let _b = link.start_flow(SimTime::ZERO, 1_000_000_000);
        let t = SimTime::from_secs_f64(0.5); // each has 0.75 GB left
        assert!(link.cancel_flow(t, a));
        assert!(!link.cancel_flow(t, a));
        let done = drain(&mut link, t);
        assert_eq!(done.len(), 1);
        // b: 0.75 GB left at full 1 GB/s from t=0.5 -> 1.25 s.
        assert!((done[0].0.as_secs_f64() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn stale_generation_is_ignored() {
        let mut link = FairLink::new("l", 1e9);
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        let (eta1, gen1) = link.deadline(SimTime::ZERO).unwrap();
        // A second flow invalidates the first timer.
        link.start_flow(SimTime::from_secs_f64(0.1), 1_000_000_000);
        let (_, _gen2) = link.deadline(SimTime::from_secs_f64(0.1)).unwrap();
        assert_eq!(link.expire(eta1, gen1), None);
        assert_eq!(link.in_flight(), 2);
    }

    #[test]
    fn conservation_of_bytes() {
        let mut link = FairLink::new("l", 7.5e8);
        let mut now = SimTime::ZERO;
        let mut total = 0u64;
        for i in 0..20u64 {
            let bytes = (i + 1) * 10_000_000;
            total += bytes;
            link.start_flow(now, bytes);
            now += SimDur::from_millis(13);
        }
        let done = drain(&mut link, now);
        assert_eq!(done.len(), 20);
        assert!(
            (link.bytes_delivered() - total as f64).abs() < 1.0,
            "delivered {} expected {}",
            link.bytes_delivered(),
            total
        );
        // Total time must be at least total/bw.
        let t_min = total as f64 / link.bandwidth();
        let t_end = done.last().unwrap().0.as_secs_f64();
        assert!(t_end >= t_min - 1e-6);
    }

    #[test]
    fn busy_time_tracks_occupancy() {
        let mut link = FairLink::new("l", 1e9);
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        let done = drain(&mut link, SimTime::ZERO);
        let end = done[0].0;
        assert_eq!(link.busy_time().as_secs_f64(), end.as_secs_f64());
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut link = FairLink::new("l", 1e9);
        link.start_flow(SimTime::ZERO, 0);
        let done = drain(&mut link, SimTime::ZERO);
        assert_eq!(done.len(), 1);
        assert!(done[0].0.as_secs_f64() < 1e-6);
    }
}
