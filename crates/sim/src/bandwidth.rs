//! Fair-share bandwidth links.
//!
//! Models an interconnect channel (one direction of a PCIe link, an NVLink
//! lane, a NIC) shared by concurrent transfers: `n` in-flight flows each
//! progress at `bandwidth / n`. Rates only change when a flow starts,
//! finishes or is cancelled, so settling progress at exactly those points
//! makes the piecewise-constant model exact.
//!
//! The link is event-agnostic: after every mutation the owner must call
//! [`FairLink::deadline`] and schedule a timer for the returned instant,
//! tagging it with the returned generation. When the timer fires, the owner
//! calls [`FairLink::expire`]; a stale generation is ignored.
//!
//! # Examples
//!
//! ```
//! use aegaeon_sim::{FairLink, SimTime};
//!
//! let mut link = FairLink::new("pcie-h2d", 32e9); // 32 GB/s
//! let t0 = SimTime::ZERO;
//! let f = link.start_flow(t0, 32_000_000_000); // 32 GB
//! let (eta, gen) = link.deadline(t0).unwrap();
//! assert!((eta.as_secs_f64() - 1.0).abs() < 1e-6);
//! let done = link.expire(eta, gen).unwrap();
//! assert_eq!(done, vec![f]);
//! ```

use crate::stamp::Stamp;
use crate::time::{SimDur, SimTime};

/// Identifies one in-flight transfer on a [`FairLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

#[derive(Debug)]
struct Flow {
    id: FlowId,
    bytes_left: f64,
}

/// A full-speed, fair-share bandwidth channel.
#[derive(Debug)]
pub struct FairLink {
    name: String,
    bw: f64,
    nominal_bw: f64,
    flows: Vec<Flow>,
    last_settle: SimTime,
    stamp: Stamp,
    next_flow: u64,
    started: f64,
    delivered: f64,
    busy: SimDur,
}

/// Sub-byte slack tolerated when deciding that a flow has completed.
const EPS_BYTES: f64 = 1e-3;

impl FairLink {
    /// Creates a link with `bandwidth_bytes_per_sec` capacity.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not strictly positive.
    pub fn new(name: impl Into<String>, bandwidth_bytes_per_sec: f64) -> Self {
        assert!(
            bandwidth_bytes_per_sec > 0.0,
            "link bandwidth must be positive"
        );
        FairLink {
            name: name.into(),
            bw: bandwidth_bytes_per_sec,
            nominal_bw: bandwidth_bytes_per_sec,
            flows: Vec::new(),
            last_settle: SimTime::ZERO,
            stamp: Stamp::new(),
            next_flow: 0,
            started: 0.0,
            delivered: 0.0,
            busy: SimDur::ZERO,
        }
    }

    /// The link's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current (possibly degraded) bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bw
    }

    /// Full-speed bandwidth as configured at construction time.
    pub fn nominal_bandwidth(&self) -> f64 {
        self.nominal_bw
    }

    /// Changes the link's effective bandwidth at `now` (fault injection:
    /// transient degradation and recovery).
    ///
    /// Progress up to `now` is settled at the old rate first, so the
    /// piecewise-constant model stays exact. The caller owns timer refresh:
    /// it must call [`Self::deadline`] afterwards so the completion timer is
    /// reissued at the new rate (any previously scheduled timer becomes
    /// stale via the generation stamp).
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not strictly positive.
    pub fn set_bandwidth(&mut self, now: SimTime, bandwidth_bytes_per_sec: f64) {
        assert!(
            bandwidth_bytes_per_sec > 0.0,
            "link bandwidth must be positive"
        );
        self.settle(now);
        self.bw = bandwidth_bytes_per_sec;
    }

    /// Restores the link to its full construction-time bandwidth at `now`.
    ///
    /// Same timer-refresh contract as [`Self::set_bandwidth`].
    pub fn restore_bandwidth(&mut self, now: SimTime) {
        self.settle(now);
        self.bw = self.nominal_bw;
    }

    /// Number of in-flight flows.
    pub fn in_flight(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes fully delivered so far.
    pub fn bytes_delivered(&self) -> f64 {
        self.delivered
    }

    /// Total bytes accepted by [`Self::start_flow`] so far, minus bytes that
    /// left with a cancelled flow. Conserved quantity: at any settle point,
    /// `bytes_started == bytes_delivered + Σ bytes_remaining`.
    pub fn bytes_started(&self) -> f64 {
        self.started
    }

    /// Sum of bytes still pending across all in-flight flows.
    pub fn bytes_in_flight(&self) -> f64 {
        self.flows.iter().map(|f| f.bytes_left.max(0.0)).sum()
    }

    /// Checks the link's conservation invariants; returns a description of
    /// the first violation, or `None` when the books balance.
    ///
    /// Invariants: delivered + in-flight bytes equal accepted bytes (within
    /// float slack scaled to the traffic volume), and delivered bytes never
    /// exceed what the nominal bandwidth could move in the accumulated busy
    /// time.
    pub fn audit(&self) -> Option<String> {
        let accounted = self.delivered + self.bytes_in_flight();
        let slack = 1.0 + self.started * 1e-9;
        if (accounted - self.started).abs() > slack {
            return Some(format!(
                "link {}: started {} bytes but delivered+pending = {}",
                self.name, self.started, accounted
            ));
        }
        // Degradation only lowers throughput, so nominal bandwidth bounds it.
        let max_deliverable = self.nominal_bw * self.busy.as_secs_f64();
        if self.delivered > max_deliverable + slack {
            return Some(format!(
                "link {}: delivered {} bytes exceeds capacity {} over busy time {}",
                self.name,
                self.delivered,
                max_deliverable,
                self.busy.as_secs_f64()
            ));
        }
        None
    }

    /// Accumulated time during which at least one flow was active.
    pub fn busy_time(&self) -> SimDur {
        self.busy
    }

    /// Starts a transfer of `bytes` at time `now` and returns its id.
    ///
    /// The caller must refresh its completion timer via [`Self::deadline`].
    pub fn start_flow(&mut self, now: SimTime, bytes: u64) -> FlowId {
        self.settle(now);
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        let bytes = (bytes.max(1)) as f64;
        self.started += bytes;
        self.flows.push(Flow {
            id,
            bytes_left: bytes,
        });
        id
    }

    /// Aborts an in-flight transfer; returns true if it was present.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        self.settle(now);
        let before = self.flows.len();
        let mut dropped = 0.0;
        self.flows.retain(|f| {
            if f.id == id {
                dropped += f.bytes_left.max(0.0);
                false
            } else {
                true
            }
        });
        self.started -= dropped;
        self.flows.len() != before
    }

    /// Bytes still pending for `id`, if the flow is in flight.
    pub fn bytes_remaining(&self, id: FlowId) -> Option<u64> {
        self.flows
            .iter()
            .find(|f| f.id == id)
            .map(|f| f.bytes_left.max(0.0).round() as u64)
    }

    /// The instant at which the earliest in-flight flow completes, plus the
    /// generation with which the corresponding timer must be tagged.
    ///
    /// Every call invalidates previously issued generations, so only the
    /// most recent timer is live.
    pub fn deadline(&mut self, now: SimTime) -> Option<(SimTime, u64)> {
        self.settle(now);
        let gen = self.stamp.bump();
        if self.flows.is_empty() {
            return None;
        }
        let rate = self.bw / self.flows.len() as f64;
        let min_left = self
            .flows
            .iter()
            .map(|f| f.bytes_left)
            .fold(f64::INFINITY, f64::min);
        // Ceil to the next nanosecond so that `expire` always finds at least
        // one flow at (or below) zero bytes, guaranteeing progress.
        let dt_ns = ((min_left.max(0.0) / rate) * 1e9).ceil() as u64;
        Some((now + SimDur::from_nanos(dt_ns), gen))
    }

    /// Handles a completion timer with generation `gen` firing at `now`.
    ///
    /// Returns `Some(flows that finished)` for a live timer; the caller must
    /// then refresh its timer via [`Self::deadline`]. Returns `None` for a
    /// stale generation, in which case the link is untouched and the caller
    /// must *not* refresh (a live timer is already pending).
    pub fn expire(&mut self, now: SimTime, gen: u64) -> Option<Vec<FlowId>> {
        if !self.stamp.is_current(gen) {
            return None;
        }
        self.settle(now);
        let mut done = Vec::new();
        let mut residue = 0.0;
        self.flows.retain(|f| {
            if f.bytes_left <= EPS_BYTES {
                done.push(f.id);
                residue += f.bytes_left.max(0.0);
                false
            } else {
                true
            }
        });
        // Count the sub-byte completion slack as delivered so the
        // conservation books stay exact across many flows.
        self.delivered += residue;
        Some(done)
    }

    /// Advances all in-flight flows to `now` at the current fair-share rate.
    fn settle(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_settle);
        self.last_settle = self.last_settle.max(now);
        if dt.is_zero() || self.flows.is_empty() {
            return;
        }
        self.busy += dt;
        let rate = self.bw / self.flows.len() as f64;
        let progressed = rate * dt.as_secs_f64();
        for f in &mut self.flows {
            let p = progressed.min(f.bytes_left);
            f.bytes_left -= p;
            self.delivered += p;
        }
    }

    /// The time a transfer of `bytes` would take if it were alone on the link.
    pub fn solo_duration(&self, bytes: u64) -> SimDur {
        SimDur::from_secs_f64(bytes as f64 / self.bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(link: &mut FairLink, mut now: SimTime) -> Vec<(SimTime, FlowId)> {
        let mut out = Vec::new();
        while let Some((eta, gen)) = link.deadline(now) {
            now = eta;
            for id in link.expire(now, gen).expect("freshly issued generation") {
                out.push((now, id));
            }
        }
        out
    }

    #[test]
    fn solo_flow_takes_bytes_over_bandwidth() {
        let mut link = FairLink::new("l", 1e9);
        let f = link.start_flow(SimTime::ZERO, 500_000_000);
        let done = drain(&mut link, SimTime::ZERO);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, f);
        assert!((done[0].0.as_secs_f64() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn two_equal_flows_share_fairly() {
        let mut link = FairLink::new("l", 1e9);
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        let done = drain(&mut link, SimTime::ZERO);
        // Each gets 0.5 GB/s, so both finish at t = 2 s.
        assert_eq!(done.len(), 2);
        for (t, _) in &done {
            assert!((t.as_secs_f64() - 2.0).abs() < 1e-6, "finished at {t}");
        }
    }

    #[test]
    fn late_joiner_slows_first_flow() {
        let mut link = FairLink::new("l", 1e9);
        // Flow A: 1 GB at t=0. Alone until t=0.5 (0.5 GB done), then shares.
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        let t_half = SimTime::from_secs_f64(0.5);
        link.start_flow(t_half, 250_000_000);
        // From t=0.5: A has 0.5 GB left at 0.5 GB/s; B has 0.25 GB at 0.5 GB/s.
        // B finishes at t=1.0; then A has 0.25 GB left at full rate -> t=1.25.
        let done = drain(&mut link, t_half);
        assert_eq!(done.len(), 2);
        assert!((done[0].0.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((done[1].0.as_secs_f64() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn cancel_removes_flow_and_speeds_up_rest() {
        let mut link = FairLink::new("l", 1e9);
        let a = link.start_flow(SimTime::ZERO, 1_000_000_000);
        let _b = link.start_flow(SimTime::ZERO, 1_000_000_000);
        let t = SimTime::from_secs_f64(0.5); // each has 0.75 GB left
        assert!(link.cancel_flow(t, a));
        assert!(!link.cancel_flow(t, a));
        let done = drain(&mut link, t);
        assert_eq!(done.len(), 1);
        // b: 0.75 GB left at full 1 GB/s from t=0.5 -> 1.25 s.
        assert!((done[0].0.as_secs_f64() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn stale_generation_is_ignored() {
        let mut link = FairLink::new("l", 1e9);
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        let (eta1, gen1) = link.deadline(SimTime::ZERO).unwrap();
        // A second flow invalidates the first timer.
        link.start_flow(SimTime::from_secs_f64(0.1), 1_000_000_000);
        let (_, _gen2) = link.deadline(SimTime::from_secs_f64(0.1)).unwrap();
        assert_eq!(link.expire(eta1, gen1), None);
        assert_eq!(link.in_flight(), 2);
    }

    #[test]
    fn conservation_of_bytes() {
        let mut link = FairLink::new("l", 7.5e8);
        let mut now = SimTime::ZERO;
        let mut total = 0u64;
        for i in 0..20u64 {
            let bytes = (i + 1) * 10_000_000;
            total += bytes;
            link.start_flow(now, bytes);
            now += SimDur::from_millis(13);
        }
        let done = drain(&mut link, now);
        assert_eq!(done.len(), 20);
        assert!(
            (link.bytes_delivered() - total as f64).abs() < 1.0,
            "delivered {} expected {}",
            link.bytes_delivered(),
            total
        );
        // Total time must be at least total/bw.
        let t_min = total as f64 / link.bandwidth();
        let t_end = done.last().unwrap().0.as_secs_f64();
        assert!(t_end >= t_min - 1e-6);
    }

    #[test]
    fn busy_time_tracks_occupancy() {
        let mut link = FairLink::new("l", 1e9);
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        let done = drain(&mut link, SimTime::ZERO);
        let end = done[0].0;
        assert_eq!(link.busy_time().as_secs_f64(), end.as_secs_f64());
    }

    #[test]
    fn degradation_slows_and_restore_recovers() {
        let mut link = FairLink::new("l", 1e9);
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        // Halve the bandwidth at t=0.5 (0.5 GB already done).
        let t_half = SimTime::from_secs_f64(0.5);
        link.set_bandwidth(t_half, 5e8);
        assert_eq!(link.bandwidth(), 5e8);
        assert_eq!(link.nominal_bandwidth(), 1e9);
        // Restore at t=1.0: 0.25 GB moved during the degraded window.
        let t_one = SimTime::from_secs_f64(1.0);
        link.restore_bandwidth(t_one);
        // Remaining 0.25 GB at full rate -> finishes at t=1.25.
        let done = drain(&mut link, t_one);
        assert_eq!(done.len(), 1);
        assert!((done[0].0.as_secs_f64() - 1.25).abs() < 1e-6);
        assert!(link.audit().is_none(), "{:?}", link.audit());
    }

    #[test]
    fn degradation_reissues_deadline_generation() {
        let mut link = FairLink::new("l", 1e9);
        link.start_flow(SimTime::ZERO, 1_000_000_000);
        let (eta1, gen1) = link.deadline(SimTime::ZERO).unwrap();
        assert!((eta1.as_secs_f64() - 1.0).abs() < 1e-6);
        let t = SimTime::from_secs_f64(0.5);
        link.set_bandwidth(t, 2.5e8);
        let (eta2, gen2) = link.deadline(t).unwrap();
        // Old timer is stale; the new one reflects the degraded rate.
        assert_eq!(link.expire(eta1, gen1), None);
        assert!((eta2.as_secs_f64() - 2.5).abs() < 1e-6);
        let done = link.expire(eta2, gen2).unwrap();
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn audit_balances_with_cancels_and_degradation() {
        let mut link = FairLink::new("l", 2e9);
        let mut now = SimTime::ZERO;
        let mut ids = Vec::new();
        for i in 0..12u64 {
            ids.push(link.start_flow(now, (i + 1) * 5_000_000));
            now += SimDur::from_millis(7);
            if i % 3 == 0 {
                link.set_bandwidth(now, 2e9 / (1.0 + i as f64));
            }
            if i % 4 == 2 {
                link.cancel_flow(now, ids[i as usize / 2]);
            }
            assert!(link.audit().is_none(), "{:?}", link.audit());
        }
        link.restore_bandwidth(now);
        drain(&mut link, now);
        assert!(link.audit().is_none(), "{:?}", link.audit());
        assert!(link.bytes_in_flight() == 0.0);
        assert!((link.bytes_delivered() - link.bytes_started()).abs() < 1.0);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut link = FairLink::new("l", 1e9);
        link.start_flow(SimTime::ZERO, 0);
        let done = drain(&mut link, SimTime::ZERO);
        assert_eq!(done.len(), 1);
        assert!(done[0].0.as_secs_f64() < 1e-6);
    }
}
