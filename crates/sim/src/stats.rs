//! Small online statistics helpers shared across crates.

/// Welford's online mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use aegaeon_sim::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.5);
/// assert_eq!(w.count(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + d * d * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert!((w.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_is_sane() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn merge_of_two_empties_stays_empty() {
        let mut a = Welford::new();
        a.merge(&Welford::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), f64::INFINITY);
        assert_eq!(a.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn merge_empty_into_populated_is_identity() {
        let mut a = Welford::new();
        for x in [1.0, 2.0, 3.0] {
            a.push(x);
        }
        let before = (a.count(), a.mean(), a.variance(), a.min(), a.max());
        a.merge(&Welford::new());
        assert_eq!(
            (a.count(), a.mean(), a.variance(), a.min(), a.max()),
            before
        );
    }

    #[test]
    fn merge_populated_into_empty_copies_everything() {
        let mut src = Welford::new();
        for x in [4.0, 6.0, 11.0] {
            src.push(x);
        }
        let mut a = Welford::new();
        a.merge(&src);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), src.mean());
        assert_eq!(a.variance(), src.variance());
        assert_eq!(a.min(), 4.0);
        assert_eq!(a.max(), 11.0);
    }

    #[test]
    fn merge_single_samples_matches_push_order_independent() {
        // Two singleton accumulators merged either way agree with a plain
        // two-sample push (the d²·n·m/n-total cross term's base case).
        let mut a = Welford::new();
        a.push(3.0);
        let mut b = Welford::new();
        b.push(9.0);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut whole = Welford::new();
        whole.push(3.0);
        whole.push(9.0);
        for w in [&ab, &ba] {
            assert_eq!(w.count(), 2);
            assert!((w.mean() - whole.mean()).abs() < 1e-12);
            assert!((w.variance() - whole.variance()).abs() < 1e-12);
            assert_eq!(w.min(), 3.0);
            assert_eq!(w.max(), 9.0);
        }
    }
}
