//! Fast, deterministic hashing for simulator hot paths.
//!
//! `std`'s default `SipHash`-with-`RandomState` is DoS-resistant but costly
//! for the small integer and newtype keys the simulator hashes millions of
//! times per run, and its per-process random seed makes iteration order vary
//! run-to-run. [`FxHasher`] implements the rustc `FxHash` word-at-a-time
//! multiply-rotate scheme: a handful of cycles per key, and fully
//! deterministic so simulations replay identically.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHash` function: per input word,
/// `hash = (hash.rotate_left(5) ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add_word(u64::from_ne_bytes(word.try_into().expect("8 bytes")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add_word(u32::from_ne_bytes(word.try_into().expect("4 bytes")) as u64);
            bytes = rest;
        }
        for &b in bytes {
            self.add_word(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"lane"), hash_of(&"lane"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hashes: std::collections::HashSet<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000, "sequential keys must not collide");
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));

        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn mixed_width_writes_differ_from_wide_write() {
        // Sanity: the hasher consumes all bytes of a string, not just a prefix.
        assert_ne!(hash_of(&"abcdefgh"), hash_of(&"abcdefgi"));
        assert_ne!(hash_of(&"abcdefghi"), hash_of(&"abcdefgh"));
    }
}
