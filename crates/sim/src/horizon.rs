//! Conservative-lookahead window arithmetic for sharded parallel DES.
//!
//! A sharded run partitions one simulation into per-shard event queues that
//! advance in bulk-synchronous windows. The safety argument is the classic
//! null-message one (Chandy–Misra–Bryant, without the per-link message
//! traffic): if every cross-shard interaction raises the receiver's
//! timestamp by at least `lookahead`, then once every shard has processed
//! all events strictly before some barrier time `B`, any message a shard
//! can still emit carries a receive stamp `>= B' = min(next_due) +
//! lookahead`. All shards may therefore advance to `B' - 1ns` in parallel
//! without ever receiving a message in their past — no rollback, and the
//! event order inside each shard is identical to a serial execution of the
//! same windows.
//!
//! [`GrantClock`] encapsulates exactly that computation so the coordinator
//! and its tests share one definition of the window boundary.

use crate::time::{SimDur, SimTime};

/// One conservative synchronization window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantWindow {
    /// The horizon every shard is granted: shards may process events with
    /// stamps *strictly below* this instant.
    pub grant: SimTime,
    /// Inclusive stepping limit (`grant` minus one nanosecond): passing
    /// this to an inclusive `step_until` realizes the strict window, so a
    /// boundary event stamped exactly at `grant` — the earliest stamp a
    /// cross-shard message can carry — is never popped before the exchange.
    pub limit: SimTime,
}

/// Computes conservative grant windows from shard progress reports.
#[derive(Debug, Clone, Copy)]
pub struct GrantClock {
    lookahead: SimDur,
}

impl GrantClock {
    /// A clock with the given lookahead — the minimum timestamp increment
    /// of any cross-shard message. Clamped to at least one nanosecond so a
    /// window always admits the earliest due event and the loop progresses.
    pub fn new(lookahead: SimDur) -> GrantClock {
        GrantClock {
            lookahead: lookahead.max(SimDur::from_nanos(1)),
        }
    }

    /// The effective (clamped) lookahead.
    pub fn lookahead(&self) -> SimDur {
        self.lookahead
    }

    /// The next window given each live shard's earliest pending event time
    /// (`None` for drained or halted shards). Returns `None` when no shard
    /// has work, i.e. the run is over.
    pub fn next_window<I>(&self, next_due: I) -> Option<GrantWindow>
    where
        I: IntoIterator<Item = Option<SimTime>>,
    {
        let due = next_due.into_iter().flatten().min()?;
        let grant = due + self.lookahead;
        Some(GrantWindow {
            grant,
            limit: SimTime::from_nanos(grant.as_nanos().saturating_sub(1)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn grant_is_min_due_plus_lookahead() {
        let clock = GrantClock::new(SimDur::from_nanos(100));
        let w = clock
            .next_window([Some(t(50)), None, Some(t(30)), Some(t(500))])
            .unwrap();
        assert_eq!(w.grant, t(130));
        assert_eq!(w.limit, t(129), "window is strict: boundary excluded");
    }

    #[test]
    fn all_drained_means_done() {
        let clock = GrantClock::new(SimDur::from_nanos(100));
        assert_eq!(clock.next_window([None, None]), None);
        assert_eq!(clock.next_window(std::iter::empty()), None);
    }

    #[test]
    fn zero_lookahead_is_clamped_for_progress() {
        let clock = GrantClock::new(SimDur::ZERO);
        assert_eq!(clock.lookahead(), SimDur::from_nanos(1));
        let w = clock.next_window([Some(t(10))]).unwrap();
        // The earliest due event itself is always admitted.
        assert_eq!(w.limit, t(10));
    }

    #[test]
    fn window_always_admits_the_earliest_event() {
        for la in [1u64, 7, 1_000, 2_000_000_000] {
            let clock = GrantClock::new(SimDur::from_nanos(la));
            let w = clock.next_window([Some(t(42))]).unwrap();
            assert!(w.limit >= t(42), "lookahead {la}");
            assert!(w.grant > t(42), "lookahead {la}");
        }
    }
}
